//! Random traffic generation entirely on the data plane (§5.1, Fig. 13):
//! the editor draws header-field values from normal and exponential
//! distributions using the two-table inverse-transform method, since the
//! hardware RNG primitive is uniform-only (and power-of-two-bounded).
//!
//! The example validates the generated values with Q-Q statistics against
//! the analytic distributions — the automated version of Fig. 13's plots.
//!
//! Run with: `cargo run --release --example random_traffic`

use ht_stats::{max_diagonal_deviation, qq_points, Distribution, Ecdf, Summary};
use hypertester::asic::fields;
use hypertester::asic::time::ms;
use hypertester::asic::{LinkSpec, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

fn run_case(name: &str, src: &str, dist: Distribution) {
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    let templates = tester.template_copies(0, 32);

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let sink = world.add_device(Box::new(Sink::new("sink").capturing(vec![fields::UDP_DPORT])));
    world.link((sw, 0), (sink, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);
    world.run_until(ms(2));

    let samples: Vec<f64> =
        world.device::<Sink>(sink).captured.iter().map(|(_, _, v)| v[0] as f64).collect();
    let s = Summary::new(&samples).expect("samples");
    let qq = qq_points(&samples, &dist);
    let dev = max_diagonal_deviation(&qq, &dist);
    let ks = Ecdf::new(&samples).unwrap().ks_statistic(&dist);

    println!("{name}: {} samples", samples.len());
    println!("  sample mean/stddev : {:.1} / {:.1}", s.mean(), s.stddev());
    println!("  dist   mean        : {:.1}", dist.mean());
    println!("  Q-Q max deviation  : {dev:.4} (×IQR, trimmed 1% tails)");
    println!("  KS statistic       : {ks:.4}");
    assert!(samples.len() > 50_000);
    assert!(dev < 0.1, "Q-Q deviation too large: {dev}");
    println!("  OK: matches the target distribution\n");
}

fn main() {
    run_case(
        "normal(30000, 2000) on udp.dport",
        r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(dport, random(normal, 30000, 2000, 14))
"#,
        Distribution::Normal { mean: 30000.0, std_dev: 2000.0 },
    );
    run_case(
        "exponential(mean 4000) on udp.dport",
        r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(dport, random(exp, 4000, 14))
"#,
        Distribution::Exponential { rate: 1.0 / 4000.0 },
    );
    println!("OK: on-ASIC inverse-transform random generation reproduces Fig. 13");
}
