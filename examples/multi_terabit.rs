//! Multi-terabit generation: one 1U programmable switch as a 3.2 Tbps
//! tester (§2.3: "occupying 1U for 3.2Tbps and 2U for 6.5Tbps", with a
//! port intensity no server farm can match).
//!
//! One trigger, 32 × 100 Gbps ports: the mcast engine fans each template
//! fire out to every port, so the accelerator capacity is spent once and
//! multiplied by the replicator.
//!
//! Run with: `cargo run --release --example multi_terabit`

use ht_packet::wire::{gbps, line_rate_pps};
use hypertester::asic::time::us;
use hypertester::asic::{LinkSpec, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

const PORTS: u16 = 32;
const FRAME: usize = 256;

fn main() {
    let port_list: Vec<String> = (0..PORTS).map(|p| p.to_string()).collect();
    let src = format!(
        "T1 = trigger().set([dip, sip, proto], [10.0.0.2, 10.0.0.1, udp])\n\
         .set(pkt_len, {FRAME}).set(port, [{}])",
        port_list.join(", ")
    );
    let task = compile(&parse(&src).expect("parse")).expect("compile");
    let mut tester = build(
        &task,
        &TesterConfig::builder().ports(PORTS).speed(Gbps(100)).build().expect("config"),
    )
    .expect("build");
    let copies = tester.copies_for_line_rate(0, gbps(100));
    let templates = tester.template_copies(0, copies);
    println!("one trigger, {copies} template copies, fanned out to {PORTS} × 100G ports");

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let sink = world.add_device(Box::new(Sink::new("sinks")));
    for p in 0..PORTS {
        world.link((sw, p), (sink, p), LinkSpec::new());
    }
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);

    // Warm-up past the injection ramp, then a 300 µs window.
    world.run_until(us(500));
    world.device_mut::<Sink>(sink).reset();
    world.run_until(us(800));

    let s: &Sink = world.device(sink);
    let per_port_line = line_rate_pps(FRAME, gbps(100));
    let total_pps: f64 = (0..PORTS).map(|p| s.ports[&p].pps()).sum();
    let total_tbps = total_pps * ((FRAME + 20) * 8) as f64 / 1e12;
    let slowest = (0..PORTS).map(|p| s.ports[&p].pps()).fold(f64::INFINITY, f64::min);

    println!("aggregate: {:.2} Gpps, {total_tbps:.2} Tbps L1", total_pps / 1e9);
    println!(
        "slowest port: {:.2} Mpps ({:.1}% of line rate)",
        slowest / 1e6,
        100.0 * slowest / per_port_line
    );
    println!("packets simulated in the window: {}", s.total_frames());

    assert!(total_tbps > 3.15, "expected ≈3.2 Tbps, got {total_tbps:.2}");
    assert!(slowest / per_port_line > 0.99, "every port must hold line rate");
    println!("OK: 3.2 Tbps from a single simulated 1U switch");
}
