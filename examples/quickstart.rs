//! Quickstart: write a testing task in the NTAPI DSL, compile it, program a
//! simulated switch, blast a sink at 100 Gbps line rate, and read the
//! statistics back — the whole HyperTester loop in ~50 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use ht_packet::wire::{gbps, line_rate_pps};
use hypertester::asic::time::{ms, to_secs_f64};
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, global_value, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

fn main() {
    // 1. A testing task in the paper's NTAPI (Table 3: throughput testing).
    let src = r#"
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [10.0.0.2, 10.0.0.1, udp, 1, 1])
    .set([loop, pkt_len], [0, 64])
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
"#;

    // 2. Compile (validation, false-positive precompute, P4 generation).
    let task = compile(&parse(src).expect("parse")).expect("compile");
    println!("compiled {} template(s), {} quer(ies)", task.templates.len(), task.queries.len());

    // 3. Program a switch with one 100 Gbps port and build the templates.
    let mut tester =
        build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    // 89 recirculating copies of the 64-byte template saturate 100 Gbps.
    let copies = tester.copies_for_line_rate(0, gbps(100));
    let templates = tester.template_copies(0, copies);
    println!("injecting {copies} template copies");

    // 4. Wire the testbed: tester port 0 → measurement sink.
    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let sink = world.add_device(Box::new(Sink::new("sink")));
    world.link((sw, 0), (sink, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);

    // 5. Run 2 ms of simulated time; skip the injection ramp, then measure.
    world.run_until(ms(1));
    world.device_mut::<Sink>(sink).reset();
    let t0 = world.now();
    world.run_until(ms(3));
    let elapsed = to_secs_f64(world.now() - t0);

    // 6. Read the results.
    let s: &Sink = world.device(sink);
    let pps = s.ports[&0].pps();
    let gbit = s.ports[&0].l2_bps() / 1e9;
    println!("sink measured  : {:.2} Mpps, {gbit:.1} Gbps L2 over {elapsed:.3} s", pps / 1e6);
    println!("line rate      : {:.2} Mpps", line_rate_pps(64, gbps(100)) / 1e6);

    let sw_ref: &Switch = world.device(sw);
    let sent = global_value(sw_ref, &tester.handles.queries["Q1"]);
    println!(
        "Q1 (sent bytes): {sent} — matches MAC counter: {}",
        sent == sw_ref.counters.tx_frames * 64
    );

    assert!((pps - line_rate_pps(64, gbps(100))).abs() / pps < 0.02, "not at line rate");
    println!("OK: line-rate generation verified");
}
