//! SYN-flood attack emulation (§2.3, §7.5, Table 8): generate 64-byte SYN
//! packets with randomized sources across four 100 Gbps ports and estimate
//! how many distributed attack agents the tester impersonates.
//!
//! Run with: `cargo run --release --example syn_flood`

use ht_packet::wire::gbps;
use hypertester::asic::time::ms;
use hypertester::asic::{LinkSpec, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

/// One distributed agent is assumed to source 1 Mbps of SYN traffic
/// (the paper's assumption, from A10's DDoS testing white paper).
const AGENT_BPS: f64 = 1e6;

fn main() {
    let src = r#"
T1 = trigger().set([dip, dport, proto, flag, window], [10.0.0.80, 80, tcp, SYN, 8192])
    .set(pkt_len, 64)
    .set(sip, random(uniform, 16777216, 33554432, 24))
    .set(sport, range(1024, 65535, 1))
    .set(port, [0, 1, 2, 3])
"#;
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(4).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    let copies = tester.copies_for_line_rate(0, gbps(100));
    let templates = tester.template_copies(0, copies);

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let victim = world.add_device(Box::new(Sink::new("victim").capturing(vec![
        hypertester::asic::fields::IPV4_SRC,
        hypertester::asic::fields::TCP_FLAGS,
    ])));
    for p in 0..4 {
        world.link((sw, p), (victim, p), LinkSpec::new());
    }
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);

    // Warm-up (injection ramp), then a 1 ms measurement window.
    world.run_until(ms(1));
    world.device_mut::<Sink>(victim).reset();
    world.run_until(ms(2));

    let v: &Sink = world.device(victim);
    let total_pps: f64 = (0..4).map(|p| v.ports[&p].pps()).sum();
    let total_gbps: f64 = (0..4).map(|p| v.ports[&p].l2_bps()).sum::<f64>() / 1e9;
    let l1_gbps = total_pps * (64.0 + 20.0) * 8.0 / 1e9;
    let agents = l1_gbps * 1e9 / AGENT_BPS;

    // Every packet is a SYN; sources are spread by the randomizer.
    let all_syn = v.captured.iter().all(|(_, _, f)| f[1] == 0x02);
    let distinct_sources: std::collections::HashSet<u64> =
        v.captured.iter().map(|(_, _, f)| f[0]).collect();

    println!("SYN flood over 4 × 100 Gbps (1 ms window):");
    println!(
        "  SYN rate            : {:.0} Mpps ({total_gbps:.0} Gbps L2, {l1_gbps:.0} Gbps L1)",
        total_pps / 1e6
    );
    println!("  emulated agents     : {:.2e} (at 1 Mbps per agent)", agents);
    println!("  all packets are SYN : {all_syn}");
    println!("  distinct source IPs : {}", distinct_sources.len());
    println!();
    println!("Table 8 extrapolation to a 6.5 Tbps switch at 80% load:");
    let est_tbps = 6.5 * 0.8;
    let est_pps = est_tbps * 1e12 / ((64.0 + 20.0) * 8.0);
    println!(
        "  throughput: {est_tbps:.1} Tbps, SYN packets: {:.0} Mpps, agents: {:.1e}",
        est_pps / 1e6,
        est_tbps * 1e12 / AGENT_BPS
    );

    assert!(total_pps > 590e6, "expected ≈595 Mpps, got {total_pps}");
    assert!(all_syn);
    assert!(distinct_sources.len() > 1000);
    println!("OK: 4-port line-rate SYN flood with randomized sources");
}
