//! Delay testing (§7.5, Fig. 18): measure a device's forwarding delay with
//! different timestamping paths and compare their accuracy.
//!
//! The DUT has a *known* forwarding delay, so we can quantify each
//! method's measurement error directly:
//! * hardware timestamps (MAC/NIC) — the reference;
//! * HyperTester's P4-pipeline timestamps — a small constant off;
//! * MoonGen's CPU timestamps — microseconds off ("deviates … by over 3×").
//!
//! Run with: `cargo run --release --example delay_testing`

use ht_packet::wire::gbps;
use ht_stats::Summary;
use hypertester::asic::time::{ms, to_ns_f64};
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::baseline::ratectl::{timestamp_error, TimestampMode};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::{Forwarder, Sink};
use hypertester::ht::{build, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The DUT forwards port 0 → port 1 with a 600 ns pipeline delay.
    const DUT_DELAY_NS: f64 = 600.0;

    let src = r#"
T1 = trigger().set([dip, sip, proto, dport, sport], [10.9.0.2, 10.9.0.1, udp, 7, 7])
    .set([pkt_len, interval], [128, 10us])
"#;
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    tester.switch.trace.tx = true; // record hardware departure stamps
    let templates = tester.template_copies(0, 8);

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let dut = world.add_device(Box::new(Forwarder::new("dut", 600_000).route(0, 1, gbps(100))));
    let sink = world.add_device(Box::new(Sink::new("probe-rx").logging_arrivals()));
    world.link((sw, 0), (dut, 0), LinkSpec::new());
    world.link((dut, 1), (sink, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);
    world.run_until(ms(10));

    // Pair up departures (tester MAC) with arrivals (after the DUT).
    let sw_ref: &Switch = world.device(sw);
    let tx: Vec<u64> = sw_ref.log.tx.iter().map(|r| r.at).collect();
    let rx = &world.device::<Sink>(sink).arrivals[&0];
    let n = tx.len().min(rx.len());
    assert!(n > 500, "need probes, got {n}");

    let mut rng = StdRng::seed_from_u64(42);
    let mut series: Vec<(&str, TimestampMode, Vec<f64>)> = vec![
        ("HW timestamps (HT-HW / MG-HW)", TimestampMode::Hardware, vec![]),
        ("HyperTester-SW (P4 pipeline)", TimestampMode::HyperTesterPipeline, vec![]),
        ("MoonGen-SW (CPU)", TimestampMode::MoonGenCpu, vec![]),
    ];
    for i in 0..n {
        // True one-way delay from the MAC to the far side of the DUT; each
        // method perturbs both endpoints with its timestamping error.
        let truth = rx[i].saturating_sub(tx[i]);
        for (_, mode, out) in series.iter_mut() {
            let d = truth + timestamp_error(*mode, &mut rng) + timestamp_error(*mode, &mut rng);
            out.push(to_ns_f64(d));
        }
    }

    // The wire-level truth includes the DUT's serialization of the 128-byte
    // frame, so the reference is a bit above the configured pipeline delay.
    let truth_ns =
        Summary::new(&(0..n).map(|i| to_ns_f64(rx[i] - tx[i])).collect::<Vec<_>>()).unwrap();
    println!(
        "true forwarding delay: mean {:.0} ns (DUT pipeline {DUT_DELAY_NS} ns + wire)",
        truth_ns.mean()
    );
    println!();
    println!("{:<32} {:>10} {:>10} {:>10}", "method", "mean ns", "p50 ns", "stddev");
    let mut means = Vec::new();
    for (label, _, samples) in &series {
        let s = Summary::new(samples).unwrap();
        println!("{label:<32} {:>10.0} {:>10.0} {:>10.1}", s.mean(), s.median(), s.stddev());
        means.push(s.mean());
    }

    let hw_excess = means[0] - truth_ns.mean();
    let mg_excess = means[2] - truth_ns.mean();
    println!();
    println!("measurement inflation: HW +{hw_excess:.0} ns, MoonGen-SW +{mg_excess:.0} ns");
    assert!(means[0] < means[1] && means[1] < means[2], "Fig. 18 ordering violated");
    assert!(
        mg_excess > 3.0 * (hw_excess + (means[1] - truth_ns.mean())),
        "MoonGen-SW must deviate by over 3x (Fig. 18)"
    );
    println!("OK: smaller measured delay = better accuracy; MoonGen-SW off by >3x");
}
