//! IMIX traffic generation: several triggers with different frame sizes
//! and rates coexist in one task — each trigger owns a template packet, a
//! rate timer and a sent-traffic query, sharing the accelerator and the
//! mcast engine.
//!
//! (HyperTester cannot vary a packet's length in the pipeline — §5.3 — so
//! a size *mix* is exactly what multiple templates are for.  One practical
//! subtlety the example demonstrates: a template's timer is only sampled
//! when the template loops past it, so fire gaps quantize to multiples of
//! the loop RTT — intervals well above the ~570 ns RTT keep that error in
//! the low percent.)
//!
//! Run with: `cargo run --release --example imix`

use hypertester::asic::time::ms;
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, global_value, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

fn main() {
    // The classic simple IMIX in packet counts ≈ 7:4:1 for 64/576/1500 B.
    // Rates: 100 kpps : 57 kpps : 14.3 kpps.
    let src = r#"
T1 = trigger().set([dip, sip, proto, dport], [10.0.0.2, 10.0.0.1, udp, 64])
    .set([pkt_len, interval], [64, 10us])
T2 = trigger().set([dip, sip, proto, dport], [10.0.0.2, 10.0.0.1, udp, 576])
    .set([pkt_len, interval], [576, 17500ns])
T3 = trigger().set([dip, sip, proto, dport], [10.0.0.2, 10.0.0.1, udp, 1500])
    .set([pkt_len, interval], [1500, 70us])
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query(T2).map(p -> (pkt_len)).reduce(func=sum)
Q3 = query(T3).map(p -> (pkt_len)).reduce(func=sum)
"#;
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    let mut templates = Vec::new();
    for i in 0..3 {
        // One circulating copy per trigger: intervals are far above the
        // loop RTT, so a single copy samples each timer often enough.
        templates.extend(tester.template_copies(i, 1));
    }

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let sink = world.add_device(Box::new(
        Sink::new("sink").capturing(vec![hypertester::asic::fields::PKT_LEN]),
    ));
    world.link((sw, 0), (sink, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);
    world.run_until(ms(100));

    // Per-size counts at the sink.
    let s: &Sink = world.device(sink);
    let mut by_size = std::collections::HashMap::new();
    for (_, _, v) in &s.captured {
        *by_size.entry(v[0]).or_insert(0u64) += 1;
    }
    let n64 = by_size.get(&64).copied().unwrap_or(0) as f64;
    let n576 = by_size.get(&576).copied().unwrap_or(0) as f64;
    let n1500 = by_size.get(&1500).copied().unwrap_or(0) as f64;
    println!("sink packet mix over 100 ms:");
    println!("    64 B: {n64:>8.0}  ({:.1} kpps)", n64 / 100.0);
    println!("   576 B: {n576:>8.0}  ({:.1} kpps)", n576 / 100.0);
    println!("  1500 B: {n1500:>8.0}  ({:.1} kpps)", n1500 / 100.0);
    println!("  L2 load: {:.2} Gbps", s.ports[&0].l2_bps() / 1e9);

    // The configured ratios hold: 10 µs / 17.5 µs / 70 µs → 7 : 4 : 1,
    // with a few percent of RTT-quantization on each timer.
    assert!((n64 / n1500 - 7.0).abs() < 0.3, "64:1500 ratio {}", n64 / n1500);
    assert!((n576 / n1500 - 4.0).abs() < 0.3, "576:1500 ratio {}", n576 / n1500);

    // Per-trigger queries account every byte each template sent.
    let sw_ref: &Switch = world.device(sw);
    for (q, size) in [("Q1", 64u64), ("Q2", 576), ("Q3", 1500)] {
        let bytes = global_value(sw_ref, &tester.handles.queries[q]);
        let sunk = by_size.get(&size).copied().unwrap_or(0) * size;
        assert!(bytes >= sunk && bytes - sunk <= 4 * size, "{q}: query {bytes} vs sink {sunk}");
        println!("  {q} (sent bytes @{size} B): {bytes}");
    }
    println!("OK: three templates coexist at their configured rates and sizes");
}
