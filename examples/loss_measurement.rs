//! Packet-loss measurement — one of the paper's motivating operator tasks
//! (§1: "network operators can use network testers for measurement of
//! latency or packet loss").
//!
//! The task counts on both sides of a lossy device: a sent-traffic query at
//! egress and a received-traffic query at ingress.  Their difference *is*
//! the loss — no sampling, no estimation — and it must match the fault
//! injector's ground truth exactly (up to in-flight packets).
//!
//! Run with: `cargo run --release --example loss_measurement`

use ht_packet::wire::gbps;
use hypertester::asic::time::ms;
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Forwarder;
use hypertester::ht::{build, global_value, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

fn main() {
    let src = r#"
T1 = trigger().set([dip, sip, proto, dport, sport], [10.3.0.2, 10.3.0.1, udp, 5, 5])
    .set([pkt_len, interval], [128, 2us])
Q1 = query(T1).reduce(func=count)
Q2 = query().reduce(func=count)
"#;
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    let templates = tester.template_copies(0, 8);

    // Tester → (lossy link, 2% drops) → DUT → (clean link) → tester.
    let mut world = World::builder().seed(2024).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let dut = world.add_device(Box::new(Forwarder::new("dut", 500_000).route(0, 1, gbps(100))));
    world.link((sw, 0), (dut, 0), LinkSpec::new().loss(0.02));
    world.link((dut, 1), (sw, 1), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);
    world.run_until(ms(100));

    let sw_ref: &Switch = world.device(sw);
    let sent = global_value(sw_ref, &tester.handles.queries["Q1"]);
    let received = global_value(sw_ref, &tester.handles.queries["Q2"]);
    let measured_loss = sent - received;
    let true_drops = world.stats.link_drops;

    println!("sent (Q1)          : {sent}");
    println!("received (Q2)      : {received}");
    println!(
        "measured loss      : {measured_loss} ({:.3}%)",
        100.0 * measured_loss as f64 / sent as f64
    );
    println!("injected drops     : {true_drops}");

    assert!(sent > 40_000, "sent {sent}");
    // Exact up to packets in flight at the cutoff.
    let in_flight = measured_loss.abs_diff(true_drops);
    assert!(in_flight <= 3, "loss {measured_loss} vs drops {true_drops}");
    let rate = measured_loss as f64 / sent as f64;
    assert!((rate - 0.02).abs() < 0.005, "loss rate {rate}");
    println!("OK: measured loss equals injected drops (±in-flight)");
}
