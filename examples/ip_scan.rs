//! Internet-wide scanning, ZMap-style (§2.3): sweep a destination range
//! with TCP SYN probes, capture SYN+ACK responders with a query, and count
//! distinct live hosts with the false-positive-free counter engine.
//!
//! A subset of the scanned hosts "exist" (a responder device answers for
//! them); the scan must report exactly that subset — no false positives,
//! which is the point of §5.2's exact key matching.
//!
//! Run with: `cargo run --release --example ip_scan`

use ht_packet::tcp::TcpFlags;
use hypertester::asic::phv::fields;
use hypertester::asic::sim::{Device, Outbox};
use hypertester::asic::time::{ms, SimTime};
use hypertester::asic::{LinkSpec, SimPacket, Switch, World};
use hypertester::cpu::SwitchCpu;
use hypertester::ht::{build, distinct_count, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};
use std::any::Any;

/// Answers SYNs for every 7th address of the scanned range.
struct SparseResponders {
    answered: std::collections::HashSet<u32>,
    fields: hypertester::asic::FieldTable,
}

impl Device for SparseResponders {
    fn name(&self) -> &str {
        "sparse-hosts"
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
        let dst = pkt.phv.get(fields::IPV4_DST) as u32;
        let flags = TcpFlags(pkt.phv.get(fields::TCP_FLAGS) as u8);
        if !flags.contains(TcpFlags::SYN) || !dst.is_multiple_of(7) {
            return; // host does not exist / not a probe
        }
        self.answered.insert(dst);
        // Stateless SYN+ACK, tuple mirrored.
        let mut phv = self.fields.new_phv();
        phv.set(&self.fields, fields::PKT_LEN, 64);
        phv.set(&self.fields, fields::IPV4_VALID, 1);
        phv.set(&self.fields, fields::TCP_VALID, 1);
        phv.set(&self.fields, fields::IPV4_SRC, u64::from(dst));
        phv.set(&self.fields, fields::IPV4_DST, pkt.phv.get(fields::IPV4_SRC));
        phv.set(&self.fields, fields::TCP_SPORT, pkt.phv.get(fields::TCP_DPORT));
        phv.set(&self.fields, fields::TCP_DPORT, pkt.phv.get(fields::TCP_SPORT));
        phv.set(&self.fields, fields::TCP_FLAGS, u64::from(TcpFlags::SYN_ACK.0));
        phv.set(&self.fields, fields::TCP_ACK, pkt.phv.get(fields::TCP_SEQ) + 1);
        out.emit(port, SimPacket { phv, body: None, uid: pkt.uid }, now + 500_000);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    // Scan 10.1.0.1 … 10.1.15.254 (4094 hosts), one pass.
    let src = r#"
T1 = trigger().set([sip, dport, proto, flag, seq_no], [10.0.0.1, 80, tcp, SYN, 1])
    .set(dip, range(10.1.0.1, 10.1.15.254, 1))
    .set([loop, interval], [1, 1us])
Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys=[sip])
"#;
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().expect("config"))
            .expect("build");
    let templates = tester.template_copies(0, 8);

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let hosts = world.add_device(Box::new(SparseResponders {
        answered: Default::default(),
        fields: hypertester::asic::FieldTable::new(),
    }));
    world.link((sw, 0), (hosts, 0), LinkSpec::new().delay(1_000_000));
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);
    world.run_until(ms(20));

    let live_truth = world.device::<SparseResponders>(hosts).answered.len() as u64;
    let sw_ref: &Switch = world.device(sw);
    let q1 = &tester.handles.queries["Q1"];
    let live_scanned = distinct_count(sw_ref, q1);
    let fp_entries = q1.query.fp.as_ref().map(|f| f.entries.len()).unwrap_or(0);
    let space = q1.query.fp.as_ref().map(|f| f.space_size).unwrap_or(0);

    println!("IP scan of 4094 addresses:");
    println!("  live hosts (ground truth)    : {live_truth}");
    println!("  live hosts (scan, distinct)  : {live_scanned}");
    println!("  enumerated header space      : {space}");
    println!("  exact-key-matching entries   : {fp_entries}");

    assert_eq!(live_scanned, live_truth, "scan must be exact — no false positives");
    println!("OK: scan result is exact (false-positive-free)");
}
