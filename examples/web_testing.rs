//! Web testing (§5.4 of the paper): emulate HTTP clients with *stateless
//! connections* — the tester holds zero per-connection state; every packet
//! it sends is derived from a packet it received, through the trigger FIFO
//! between receiver and sender.
//!
//! The task opens connections with SYNs, completes handshakes from the
//! captured SYN+ACKs, sends HTTP requests, and monitors the server with an
//! agnostic statistics query — the full Table 4 pattern.
//!
//! Run with: `cargo run --release --example web_testing`

use hypertester::asic::time::{ms, us};
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::TcpResponder;
use hypertester::ht::{build, global_value, Gbps, TesterConfig};
use hypertester::ntapi::{compile, parse};

fn main() {
    // Table 4, condensed: T1 opens, Q1 captures SYN+ACKs, T2 ACKs, T3
    // requests the page, Q4/T6 release, Q5 monitors the server.
    let src = r#"
T1 = trigger().set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sport, range(1024, 2047, 1)).set(interval, 10us)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1).set([dip, sip], [Q1.sip, Q1.dip])
    .set([dport, sport], [Q1.sport, Q1.dport])
    .set([flag, seq_no, ack_no], [ACK, Q1.ack_no, Q1.seq_no + 1])
T3 = trigger(Q1).set([dip, sip], [Q1.sip, Q1.dip])
    .set([dport, sport], [Q1.sport, Q1.dport])
    .set([flag, seq_no, ack_no], [PSH+ACK, Q1.ack_no, Q1.seq_no + 1])
    .set(payload, "GET index.html")
Q4 = query().filter(tcp_flag == FIN)
T6 = trigger(Q4).set([dip, sip], [Q4.sip, Q4.dip])
    .set([dport, sport], [Q4.sport, Q4.dport])
    .set([flag, ack_no], [FIN+ACK, Q4.seq_no + 1])
Q5 = query().filter(tcp_flag == SYN+ACK).reduce(func=count)
"#;
    let task = compile(&parse(src).expect("parse")).expect("compile");
    let mut tester =
        build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().expect("config"))
            .expect("build");

    // The SYN opener needs a few copies for its 100 kconn/s rate; the
    // stateless responders need enough loop bandwidth to keep up.
    let mut templates = tester.template_copies(0, 4);
    for t in 1..task.templates.len() {
        templates.extend(tester.template_copies(t, 4));
    }

    let mut world = World::builder().seed(1).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let server = world.add_device(Box::new(TcpResponder::new("http-server", us(2))));
    world.link((sw, 0), (server, 0), LinkSpec::new().delay(us(1)));
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);

    world.run_until(ms(20));

    let srv: &TcpResponder = world.device(server);
    println!("HTTP server observed over 20 ms:");
    println!("  SYNs (connections opened) : {}", srv.stats.syns);
    println!("  handshake ACKs            : {}", srv.stats.acks);
    println!("  HTTP requests             : {}", srv.stats.requests);
    println!("  data segments served      : {}", srv.stats.data_sent);
    println!("  connection rate           : {:.0} conn/s", srv.stats.syns as f64 / 0.020);

    let sw_ref: &Switch = world.device(sw);
    let syn_acks = global_value(sw_ref, &tester.handles.queries["Q5"]);
    println!("Q5 (answered connections)  : {syn_acks}");

    assert!(srv.stats.syns > 1000);
    assert!(srv.stats.acks as f64 > 0.85 * srv.stats.syns as f64);
    assert!(srv.stats.requests as f64 > 0.85 * srv.stats.syns as f64);
    // The last SYN+ACK may still be in flight at the cutoff.
    assert!(srv.stats.syns - syn_acks <= 2, "Q5 {syn_acks} vs SYNs {}", srv.stats.syns);
    println!("OK: stateless connections completed handshakes without any per-connection state");
}
