//! # HyperTester — high-performance network testing on a simulated
//! # programmable switch
//!
//! This is the facade crate of the workspace: it re-exports every subsystem
//! of the HyperTester reproduction (CoNEXT '19) and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and the per-experiment index.

#![forbid(unsafe_code)]

pub use ht_asic as asic;
pub use ht_baseline as baseline;
pub use ht_bench as bench;
/// The HyperTester core (HTPS + HTPR + tester assembly).
///
/// Named `ht` rather than `core` so downstream `use` paths never shadow the
/// standard library's `core` crate.
pub use ht_core as ht;
pub use ht_cpu as cpu;
pub use ht_dut as dut;
pub use ht_harness as harness;
pub use ht_ir as ir;
pub use ht_lint as lint;
pub use ht_ntapi as ntapi;
pub use ht_packet as packet;
pub use ht_stats as stats;

/// Convenience prelude bringing the most common types of the public API into
/// scope: `use hypertester::prelude::*;`.
pub mod prelude {
    pub use ht_asic::time::{ms, ns, secs, us};
    pub use ht_core::prelude::*;
    pub use ht_ntapi::prelude::*;
}
