//! `htctl` — the HyperTester command line.
//!
//! ```text
//! htctl compile [--json] [--dump-ir[=PASS]] <task.nt>
//!                                         validate a task; print the summary,
//!                                         or the IR module after the named
//!                                         lowering pass (default: all passes)
//! htctl lint [--json] <task.nt>           static verification; exit 1 on
//!                                         error diagnostics
//! htctl analyze [--json] [--dump-facts=PASS] <task.nt>
//!                                         abstract-interpretation report:
//!                                         fixpoint stats, certified no-wrap
//!                                         registers, and the full lint
//!                                         findings; `--dump-facts` prints
//!                                         one fact view (value, liveness,
//!                                         reachability, salu-range)
//! htctl fuzz [--cases N] [--seed S] [--corpus DIR] [--json]
//!                                         grammar-driven differential fuzz
//!                                         of the analysis pipeline; exit 1
//!                                         and write minimized
//!                                         counterexamples on any violation
//! htctl p4 <task.nt>                      emit the generated P4 program
//! htctl loc <task.nt>                     NTAPI vs generated-P4 line counts
//! htctl run [--json] <task.nt> [--ports N] [--speed GBPS] [--duration MS]
//!           [--copies N] [--sim-threads N] [--exec interp|compiled|vector]
//!                                         run against a sink testbed and
//!                                         print throughput + query results
//! htctl bench [--smoke] [--workers N] [--sim-threads N] [--json] [--out FILE]
//!             [--baseline FILE] [--fail-threshold PCT] [--md FILE]
//!             [--filter SUBSTR] [--list] [--exec interp|compiled|vector] [--profile]
//!                                         run the experiment suite on the
//!                                         parallel harness; write BENCH.json
//! ```
//!
//! Every subcommand follows the same exit-code contract: `0` success, `1`
//! failures (diagnostics, failed checks, regressions, IO), `2` usage
//! errors.
//!
//! Argument parsing is hand-rolled (the workspace keeps its dependency set
//! to the simulation essentials).

use hypertester::asic::time::ms;
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::bench::fuzz;
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, query_result, BuildError, Gbps, QueryResult, TesterConfig};
use hypertester::ir::report_json;
use hypertester::lint::{
    analyze_switch, dump_facts, json_escape, proven_nowrap_regs, Diagnostic, LintReport,
    FACT_PASSES,
};
use hypertester::ntapi::{
    codegen, compile, loc, lower_with, pass_names, resolve_file, CompileOptions, CompiledTask,
    NtapiError, Program, ResolveFailure,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  htctl compile [--json] [--dump-ir[=PASS]] [-I DIR] [--param K=V] <task.nt>\n  \
         htctl lint [--json] [-I DIR] [--param K=V] <task.nt>\n  \
         htctl analyze [--json] [--dump-facts=PASS] [-I DIR] [--param K=V] <task.nt>\n  \
         htctl fuzz [--cases N] [--seed S] [--corpus DIR] [--json]\n  \
         htctl p4 <task.nt>\n  htctl loc <task.nt>\n  \
         htctl run [--json] <task.nt> [--ports N] [--speed GBPS] [--duration MS] [--copies N]\n              \
         [--sim-threads N] [--exec interp|compiled|vector]\n  \
         htctl bench [--smoke] [--workers N] [--sim-threads N] [--json] [--out FILE]\n              \
         [--baseline FILE] [--fail-threshold PCT] [--md FILE] [--filter SUBSTR] [--list]\n              \
         [--exec interp|compiled|vector] [--profile]"
    );
    ExitCode::from(2)
}

/// The front-end configuration shared by every `.nt`-consuming
/// subcommand: the `-I` module search path and `--param NAME=VALUE`
/// overrides.
#[derive(Default, Clone)]
struct Fe {
    search: Vec<PathBuf>,
    params: Vec<(String, String)>,
}

impl Fe {
    /// Resolves the task file (imports, params, templates) into a flat
    /// program.  Resolve failures render with `file:line:col` and a
    /// caret-underlined snippet.
    fn load_program(&self, path: &str) -> Result<Program, String> {
        resolve_file(path, &self.search, &self.params).map_err(|e| e.to_string())
    }

    fn load(&self, path: &str) -> Result<(String, CompiledTask), String> {
        let prog = self.load_program(path)?;
        let src = prog.source.clone().unwrap_or_default();
        let task = compile(&prog).map_err(|e| render_reject(&prog, &e))?;
        Ok((src, task))
    }

    /// Consumes a `-I`/`--param` flag with its value; `false` when the
    /// flag is not a front-end flag or its value is malformed/missing.
    fn take_flag(&mut self, flag: &str, val: Option<&String>) -> bool {
        match (flag, val) {
            ("-I", Some(dir)) => {
                self.search.push(PathBuf::from(dir));
                true
            }
            ("--param", Some(kv)) => match kv.split_once('=') {
                Some((k, v)) if !k.is_empty() => {
                    self.params.push((k.to_string(), v.to_string()));
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }
}

/// Renders a compile-time rejection, pointing at the blamed source span
/// when the program retains one.
fn render_reject(prog: &Program, e: &NtapiError) -> String {
    match e.blame_span(prog) {
        Some(sp) if sp.snippet.is_empty() => {
            format!("task rejected: {e}\n  --> {}", sp.render())
        }
        Some(sp) => format!("task rejected: {e}\n  --> {}\n{}", sp.render(), sp.snippet),
        None => format!("task rejected: {e}"),
    }
}

/// A resolve failure as a uniform `LintReport` diagnostic (for `htctl
/// lint`/`analyze`, whose outputs are diagnostic lists).
fn resolve_diag(failure: &ResolveFailure) -> Diagnostic {
    let mut d = Diagnostic::error(
        failure.error.rule,
        "task",
        failure.error.message.clone(),
        failure.error.hint.clone(),
    );
    if let Some(f) = failure.sources.file(failure.error.span.file) {
        d = d.with_span(hypertester::ir::SourceSpan {
            file: f.name.clone(),
            line: failure.error.span.line,
            col: failure.error.span.col,
            snippet: failure.sources.snippet(failure.error.span).unwrap_or_default(),
        });
    }
    d
}

fn template_kind(t: &hypertester::ntapi::compile::TemplateSpec) -> String {
    match (&t.source_query, t.interval, &t.interval_dist) {
        (Some(q), _, _) => format!("stateless (fires on {q})"),
        (None, Some(iv), _) => format!("interval {} ns", iv / 1000),
        (None, None, Some(_)) => "random interval".into(),
        (None, None, None) => "line rate".into(),
    }
}

fn cmd_compile(fe: &Fe, path: &str, json: bool) -> Result<(), String> {
    let (_, task) = fe.load(path)?;
    if json {
        let templates: Vec<String> = task
            .templates
            .iter()
            .map(|t| {
                format!(
                    "{{\"id\":{},\"trigger\":\"{}\",\"frame_len\":{},\"ports\":{:?},\
                     \"edits\":{},\"kind\":\"{}\"}}",
                    t.id,
                    json_escape(&t.trigger_name),
                    t.frame_len,
                    t.ports,
                    t.edits.len(),
                    json_escape(&template_kind(t))
                )
            })
            .collect();
        let queries: Vec<String> = task
            .queries
            .iter()
            .map(|q| {
                format!(
                    "{{\"name\":\"{}\",\"kind\":\"{}\"}}",
                    json_escape(&q.name),
                    json_escape(&format!("{:?}", q.kind))
                )
            })
            .collect();
        let warnings: Vec<String> = task.warnings.iter().map(Diagnostic::to_json).collect();
        println!(
            "{{\"file\":\"{}\",\"ok\":true,\"templates\":[{}],\"queries\":[{}],\"warnings\":[{}]}}",
            json_escape(path),
            templates.join(","),
            queries.join(","),
            warnings.join(",")
        );
        return Ok(());
    }
    println!("task OK: {} trigger(s), {} quer(ies)", task.templates.len(), task.queries.len());
    for w in &task.warnings {
        println!("  {w}");
    }
    for t in &task.templates {
        println!(
            "  template {:>2} {:<4} {:>5} B, ports {:?}, {} edit(s), {}",
            t.id,
            t.trigger_name,
            t.frame_len,
            t.ports,
            t.edits.len(),
            template_kind(t)
        );
    }
    for q in &task.queries {
        let fp =
            q.fp.as_ref()
                .map(|f| {
                    format!(", {} exact-match entries over {} keys", f.entries.len(), f.space_size)
                })
                .unwrap_or_default();
        println!("  query {:<4} {:?}{fp}", q.name, q.kind);
    }
    Ok(())
}

/// Prints the IR module as lowered up to `stop_after` (all passes when
/// `None`), as deterministic text or JSON.
fn cmd_dump_ir(fe: &Fe, path: &str, json: bool, stop_after: Option<&str>) -> Result<(), String> {
    let prog = fe.load_program(path)?;
    let (module, trace, _) = lower_with(&prog, CompileOptions::default(), stop_after)
        .map_err(|e| render_reject(&prog, &e))?;
    let last = trace.runs.last().map(|r| r.name).unwrap_or("");
    if json {
        println!(
            "{{\"file\":\"{}\",\"ok\":true,\"pass\":\"{}\",\"ir\":{}}}",
            json_escape(path),
            json_escape(last),
            module.to_json()
        );
    } else {
        println!("# IR after pass {last}");
        print!("{}", module.to_text());
    }
    Ok(())
}

/// Builds the findings for one task file: task-level warnings from the
/// compiler, plus the program-level passes over the built switch.  A
/// compile or build failure that is *not* a lint rejection is reported as a
/// single `compile-error` diagnostic so the output stays uniform.
fn lint_findings(fe: &Fe, path: &str) -> Result<LintReport, String> {
    let mut report = LintReport::new();
    let prog = match resolve_file(path, &fe.search, &fe.params) {
        Ok(p) => p,
        Err(failure) => {
            report.push(resolve_diag(&failure));
            return Ok(report);
        }
    };
    let task = match compile(&prog) {
        Ok(t) => t,
        Err(NtapiError::Lint(diags)) => {
            report.diagnostics.extend(diags);
            return Ok(report);
        }
        Err(e) => {
            let mut d = Diagnostic::error("compile-error", path, e.to_string(), "");
            if let Some(sp) = e.blame_span(&prog) {
                d = d.with_span(sp);
            }
            report.push(d);
            return Ok(report);
        }
    };
    report.diagnostics.extend(task.warnings.clone());
    // Build the pipeline program on a switch with enough ports for the
    // task's replication sets, then run the program-level passes.
    let ports =
        task.templates.iter().flat_map(|t| t.ports.iter().copied()).max().map_or(1, |p| p + 1);
    let config =
        TesterConfig::builder().ports(ports).speed(Gbps(100)).build().map_err(|e| e.to_string())?;
    match build(&task, &config) {
        // The build already ran the program passes once; reuse its report.
        Ok(tester) => report.merge(tester.lint),
        Err(BuildError::Lint(diags)) => report.diagnostics.extend(diags),
        Err(e) => report.push(Diagnostic::error("compile-error", path, e.to_string(), "")),
    }
    Ok(report)
}

fn cmd_lint(fe: &Fe, path: &str, json: bool) -> Result<bool, String> {
    let report = lint_findings(fe, path)?;
    if json {
        println!("{}", report_json(path, &report));
    } else {
        println!("{path}: {report}");
    }
    Ok(report.has_errors())
}

/// Builds the task's switch program, sized like [`lint_findings`], for the
/// analysis-only views.
fn build_switch(fe: &Fe, path: &str) -> Result<Switch, String> {
    let (_, task) = fe.load(path)?;
    let ports =
        task.templates.iter().flat_map(|t| t.ports.iter().copied()).max().map_or(1, |p| p + 1);
    let config =
        TesterConfig::builder().ports(ports).speed(Gbps(100)).build().map_err(|e| e.to_string())?;
    let tester = build(&task, &config).map_err(|e| e.to_string())?;
    Ok(tester.switch)
}

/// `htctl analyze`: the dataflow-analysis view of a task.  `--dump-facts`
/// prints one deterministic fact table; otherwise prints fixpoint stats,
/// certified no-wrap registers, and the full lint report (`--json` shares
/// the `htctl lint --json` serializer).
fn cmd_analyze(fe: &Fe, path: &str, json: bool, dump: Option<&str>) -> Result<bool, String> {
    if let Some(pass) = dump {
        let sw = build_switch(fe, path)?;
        return match dump_facts(&sw, pass) {
            Some(text) => {
                print!("{text}");
                Ok(false)
            }
            None => Err(format!(
                "unknown fact pass: {pass} (expected one of {})",
                FACT_PASSES.join(", ")
            )),
        };
    }
    let report = lint_findings(fe, path)?;
    if json {
        println!("{}", report_json(path, &report));
        return Ok(report.has_errors());
    }
    // On a build failure the diagnostics below already explain why.
    if let Ok(sw) = build_switch(fe, path) {
        match analyze_switch(&sw) {
            Some(a) => {
                let (vi, li) = a.iterations();
                println!(
                    "{path}: fixpoint in {vi} value / {li} liveness iteration(s){}",
                    if a.has_back_edge() { " (recirculation back edge, widened)" } else { "" }
                );
                let names: Vec<&str> =
                    proven_nowrap_regs(&sw).iter().map(|&r| sw.regs.array(r).name()).collect();
                println!(
                    "{path}: certified no-wrap registers: {}",
                    if names.is_empty() { "(none)".into() } else { names.join(", ") }
                );
            }
            None => println!("{path}: analysis diverged; syntactic passes only"),
        }
    }
    println!("{path}: {report}");
    Ok(report.has_errors())
}

/// `htctl fuzz`: runs the grammar-driven differential campaign and writes
/// minimized counterexamples into the corpus directory.  Exit 1 on any
/// violation.
fn cmd_fuzz(cases: u64, seed: u64, corpus: Option<&str>, json: bool) -> Result<bool, String> {
    let report = fuzz::run_fuzz(cases, seed);
    let mut written: Vec<String> = Vec::new();
    if let Some(dir) = corpus {
        for f in &report.failures {
            let path = fuzz::write_corpus_entry(std::path::Path::new(dir), f)
                .map_err(|e| format!("{dir}: {e}"))?;
            written.push(path.display().to_string());
        }
    }
    if json {
        let failures: Vec<String> = report
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"case\":{},\"invariant\":\"{}\",\"detail\":\"{}\",\"minimized\":\"{}\"}}",
                    f.case_index,
                    f.violation.invariant,
                    json_escape(&f.violation.detail),
                    json_escape(&f.minimized.to_line())
                )
            })
            .collect();
        println!(
            "{{\"cases\":{},\"seed\":{},\"accepted\":{},\"rejected\":{},\"failures\":[{}]}}",
            report.cases,
            seed,
            report.accepted,
            report.rejected,
            failures.join(",")
        );
    } else {
        println!(
            "fuzz: {} case(s), seed {}: {} accepted, {} rejected, {} counterexample(s)",
            report.cases,
            seed,
            report.accepted,
            report.rejected,
            report.failures.len()
        );
        for (i, f) in report.failures.iter().enumerate() {
            println!(
                "  [{}] case {} invariant {}: {}",
                i + 1,
                f.case_index,
                f.violation.invariant,
                f.violation.detail
            );
            println!("      minimized: {}", f.minimized.to_line());
            if let Some(p) = written.get(i) {
                println!("      written to {p}");
            }
        }
    }
    Ok(!report.failures.is_empty())
}

fn cmd_p4(path: &str) -> Result<(), String> {
    let (_, task) = Fe::default().load(path)?;
    print!("{}", codegen::generate_p4(&task));
    Ok(())
}

fn cmd_loc(path: &str) -> Result<(), String> {
    let (src, task) = Fe::default().load(path)?;
    let p4 = codegen::generate_p4(&task);
    println!("NTAPI: {} LoC", loc::count_loc(&src));
    println!("P4   : {} LoC (generated)", loc::count_loc(&p4));
    Ok(())
}

struct RunOpts {
    ports: u16,
    speed_gbps: u64,
    duration_ms: u64,
    copies: Option<usize>,
    sim_threads: usize,
    exec: hypertester::asic::ExecMode,
    json: bool,
}

fn cmd_run(path: &str, opts: RunOpts) -> Result<(), String> {
    // `build()` compiles the pipelines when the process default says so.
    hypertester::asic::exec::set_default_mode(opts.exec);
    let (_, task) = Fe::default().load(path)?;
    let config = TesterConfig::builder()
        .ports(opts.ports)
        .speed(Gbps(opts.speed_gbps))
        .build()
        .map_err(|e| e.to_string())?;
    let mut tester = build(&task, &config).map_err(|e| e.to_string())?;
    let speed_bps = Gbps(opts.speed_gbps).bps();
    let mut templates = Vec::new();
    for i in 0..tester.templates.len() {
        let copies = opts.copies.unwrap_or_else(|| tester.copies_for_line_rate(i, speed_bps));
        templates.extend(tester.template_copies(i, copies));
    }
    if !opts.json {
        println!(
            "running {} template packet(s) on {} × {} G for {} ms…",
            templates.len(),
            opts.ports,
            opts.speed_gbps,
            opts.duration_ms
        );
    }

    // `Auto` draws engines from the pool `--sim-threads` funded; the
    // single-switch topology here contracts to one group, so the serial
    // fallback applies and results are identical regardless of the flag.
    hypertester::asic::parallel::budget::configure(opts.sim_threads.saturating_sub(1));
    let mut world =
        World::builder().seed(1).partitions(hypertester::asic::SimThreads::Auto).build().unwrap();
    let sw = world.add_device(Box::new(tester.switch));
    let sink = world.add_device(Box::new(Sink::new("sink")));
    for p in 0..opts.ports {
        world.link((sw, p), (sink, p), LinkSpec::new());
    }
    SwitchCpu::new().inject_templates(&mut world, sw, templates, 0);
    world.run_until(ms(opts.duration_ms));

    let s: &Sink = world.device(sink);
    let sw_ref: &Switch = world.device(sw);

    if opts.json {
        let ports: Vec<String> = (0..opts.ports)
            .map(|p| {
                let st = s.ports.get(&p).cloned().unwrap_or_default();
                format!(
                    "{{\"port\":{p},\"frames\":{},\"mpps\":{:.4},\"l2_gbps\":{:.4}}}",
                    st.frames,
                    st.pps() / 1e6,
                    st.l2_bps() / 1e9
                )
            })
            .collect();
        let mut queries = Vec::new();
        let mut names: Vec<&String> = tester.handles.queries.keys().collect();
        names.sort();
        for name in names {
            let h = &tester.handles.queries[name];
            let value = match query_result(sw_ref, h, None) {
                QueryResult::Global(v) => format!("{{\"kind\":\"global\",\"value\":{v}}}"),
                QueryResult::Distinct(d) => format!("{{\"kind\":\"distinct\",\"value\":{d}}}"),
                QueryResult::Keyed(m) => format!("{{\"kind\":\"keyed\",\"keys\":{}}}", m.len()),
            };
            queries.push(format!("{{\"name\":\"{}\",\"result\":{value}}}", json_escape(name)));
        }
        println!(
            "{{\"file\":\"{}\",\"ok\":true,\"ports\":[{}],\"queries\":[{}],\
             \"counters\":{{\"rx\":{},\"tx\":{},\"recirculations\":{},\
             \"ingress_drops\":{},\"egress_drops\":{}}}}}",
            json_escape(path),
            ports.join(","),
            queries.join(","),
            sw_ref.counters.rx_frames,
            sw_ref.counters.tx_frames,
            sw_ref.counters.recirculations,
            sw_ref.counters.ingress_drops,
            sw_ref.counters.egress_drops
        );
        return Ok(());
    }

    println!("\nper-port throughput:");
    for p in 0..opts.ports {
        if let Some(st) = s.ports.get(&p) {
            println!(
                "  port {p}: {:>10} frames, {:>8.2} Mpps, {:>7.2} Gbps L2",
                st.frames,
                st.pps() / 1e6,
                st.l2_bps() / 1e9
            );
        } else {
            println!("  port {p}: idle");
        }
    }

    if !tester.handles.queries.is_empty() {
        println!("\nquery results:");
        let mut names: Vec<&String> = tester.handles.queries.keys().collect();
        names.sort();
        for name in names {
            let h = &tester.handles.queries[name];
            match query_result(sw_ref, h, None) {
                QueryResult::Global(v) => println!("  {name}: {v}"),
                QueryResult::Distinct(d) => println!("  {name}: {d} distinct keys"),
                QueryResult::Keyed(m) => println!("  {name}: {} keys", m.len()),
            }
        }
    }
    println!(
        "\nswitch counters: rx {} tx {} recirc {} drops {}/{}",
        sw_ref.counters.rx_frames,
        sw_ref.counters.tx_frames,
        sw_ref.counters.recirculations,
        sw_ref.counters.ingress_drops,
        sw_ref.counters.egress_drops
    );
    Ok(())
}

/// Maps a command result to the exit-code contract, emitting errors as a
/// JSON object on stdout when `--json` was requested.
fn finish(result: Result<(), String>, path: &str, json: bool) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if json {
                println!(
                    "{{\"file\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(path),
                    json_escape(&e)
                );
            } else {
                eprintln!("error: {e}");
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };

    if cmd == "bench" {
        return ExitCode::from(
            u8::try_from(hypertester::harness::cli::bench_cli(
                rest,
                hypertester::bench::suite::all(),
            ))
            .unwrap_or(1),
        );
    }

    if cmd == "lint" {
        let mut fe = Fe::default();
        let mut json = false;
        let mut path: Option<&String> = None;
        let mut it = rest.iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--json" => json = true,
                flag @ ("-I" | "--param") => {
                    if !fe.take_flag(flag, it.next()) {
                        return usage();
                    }
                }
                other if other.starts_with('-') => return usage(),
                _ if path.is_some() => return usage(),
                _ => path = Some(tok),
            }
        }
        let Some(path) = path else {
            return usage();
        };
        return match cmd_lint(&fe, path, json) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "analyze" {
        let mut fe = Fe::default();
        let mut json = false;
        let mut dump: Option<String> = None;
        let mut path: Option<&String> = None;
        let mut it = rest.iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--json" => json = true,
                flag @ ("-I" | "--param") => {
                    if !fe.take_flag(flag, it.next()) {
                        return usage();
                    }
                }
                other if other.starts_with("--dump-facts=") => {
                    dump = Some(other["--dump-facts=".len()..].to_string());
                }
                other if other.starts_with('-') => return usage(),
                _ if path.is_some() => return usage(),
                _ => path = Some(tok),
            }
        }
        let Some(path) = path else {
            return usage();
        };
        return match cmd_analyze(&fe, path, json, dump.as_deref()) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "fuzz" {
        let mut cases = 200u64;
        let mut seed = 1u64;
        let mut corpus: Option<String> = None;
        let mut json = false;
        let mut it = rest.iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--json" => json = true,
                flag @ ("--cases" | "--seed" | "--corpus") => {
                    let Some(val) = it.next() else {
                        eprintln!("missing value for {flag}");
                        return usage();
                    };
                    match flag {
                        "--corpus" => corpus = Some(val.clone()),
                        _ => {
                            let Ok(v) = val.parse::<u64>() else {
                                eprintln!("bad value for {flag}: {val}");
                                return usage();
                            };
                            if flag == "--cases" {
                                cases = v;
                            } else {
                                seed = v;
                            }
                        }
                    }
                }
                other => {
                    eprintln!("bad flag: {other}");
                    return usage();
                }
            }
        }
        return match cmd_fuzz(cases, seed, corpus.as_deref(), json) {
            Ok(false) => ExitCode::SUCCESS,
            Ok(true) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "compile" {
        let mut fe = Fe::default();
        let mut json = false;
        let mut dump_ir: Option<Option<String>> = None;
        let mut path: Option<&String> = None;
        let mut it = rest.iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--json" => json = true,
                "--dump-ir" => dump_ir = Some(None),
                flag @ ("-I" | "--param") => {
                    if !fe.take_flag(flag, it.next()) {
                        return usage();
                    }
                }
                other if other.starts_with("--dump-ir=") => {
                    let pass = &other["--dump-ir=".len()..];
                    if !pass_names().contains(&pass) {
                        eprintln!(
                            "unknown pass: {pass} (expected one of {})",
                            pass_names().join(", ")
                        );
                        return usage();
                    }
                    dump_ir = Some(Some(pass.to_string()));
                }
                other if other.starts_with('-') => return usage(),
                _ if path.is_some() => return usage(),
                _ => path = Some(tok),
            }
        }
        let Some(path) = path else {
            return usage();
        };
        return match dump_ir {
            Some(stop) => finish(cmd_dump_ir(&fe, path, json, stop.as_deref()), path, json),
            None => finish(cmd_compile(&fe, path, json), path, json),
        };
    }

    if cmd == "run" {
        let mut opts = RunOpts {
            ports: 1,
            speed_gbps: 100,
            duration_ms: 2,
            copies: None,
            sim_threads: 1,
            exec: hypertester::asic::ExecMode::default(),
            json: false,
        };
        let mut path: Option<&String> = None;
        let mut it = rest.iter();
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--json" => opts.json = true,
                "--exec" => {
                    let val = it.next().map(String::as_str);
                    let Some(m) = val.and_then(hypertester::asic::ExecMode::parse) else {
                        eprintln!(
                            "bad flag/value: --exec {val:?} (expected interp|compiled|vector)"
                        );
                        return usage();
                    };
                    opts.exec = m;
                }
                flag @ ("--ports" | "--speed" | "--duration" | "--copies" | "--sim-threads") => {
                    let val = it.next().map(String::as_str);
                    let Some(v) = val.and_then(|v| v.parse::<u64>().ok()) else {
                        eprintln!("bad flag/value: {flag} {val:?}");
                        return usage();
                    };
                    match flag {
                        "--ports" => opts.ports = v as u16,
                        "--speed" => opts.speed_gbps = v,
                        "--duration" => opts.duration_ms = v,
                        "--sim-threads" => {
                            if v == 0 {
                                eprintln!("--sim-threads must be at least 1");
                                return usage();
                            }
                            opts.sim_threads = v as usize;
                        }
                        _ => opts.copies = Some(v as usize),
                    }
                }
                other if other.starts_with("--") => {
                    eprintln!("bad flag: {other}");
                    return usage();
                }
                _ if path.is_some() => return usage(),
                _ => path = Some(tok),
            }
        }
        let Some(path) = path else {
            return usage();
        };
        let json = opts.json;
        return finish(cmd_run(path, opts), path, json);
    }

    let Some(path) = rest.first() else {
        return usage();
    };

    match cmd {
        "p4" => finish(cmd_p4(path), path, false),
        "loc" => finish(cmd_loc(path), path, false),
        _ => usage(),
    }
}
