//! Minimal shim for the subset of the `criterion` 0.5 API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched.  This stand-in keeps benches compiling and runnable: each
//! `bench_function` runs its body `sample_size` times, times it with
//! `std::time::Instant`, and prints a single mean-per-iteration line.  There
//! is no warm-up tuning, outlier analysis, or report generation.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Units for reporting throughput alongside timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a closure over a fixed number of iterations.
pub struct Bencher {
    iterations: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed pass to touch caches/lazy state.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.last_ns_per_iter = elapsed / self.iterations as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark body runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_one(self.sample_size, &name.into(), None, f);
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let label = format!("{}/{}", self.name, name.into());
        run_one(self.criterion.sample_size, &label, self.throughput, f);
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    iterations: u64,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { iterations, last_ns_per_iter: 0.0 };
    f(&mut bencher);
    let ns = bencher.last_ns_per_iter;
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 * 1e9 / ns;
            println!("{label:<48} {ns:>12.1} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let rate = n as f64 * 1e9 / ns;
            println!("{label:<48} {ns:>12.1} ns/iter {rate:>14.0} B/s");
        }
        _ => println!("{label:<48} {ns:>12.1} ns/iter"),
    }
}

/// Declares a benchmark group function, mirroring both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(list_form, sample_bench);
    criterion_group! {
        name = config_form;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn groups_run() {
        list_form();
        config_form();
    }
}
