//! Minimal shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this vendored stand-in implements exactly what the workspace
//! needs: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! and a deterministic `rngs::StdRng` (SplitMix64).  It is *not* a
//! cryptographic or statistically rigorous generator — it exists so that
//! seeded simulations and tests run deterministically offline.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Converts the top 53 bits of a word into a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
///
/// The blanket `SampleRange` impls below are generic over `T`, mirroring the
/// real crate so that integer-literal inference in call sites like
/// `base + rng.gen_range(0..60_000)` resolves the same way.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; panics when the range is empty.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics when the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $uty as u128;
                let draw = rng.next_u64() as u128 % span;
                lo.wrapping_add(draw as $ty)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $uty as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                lo.wrapping_add(draw as $ty)
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Ranges that can produce a uniformly sampled value of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    ///
    /// Panics when the range is empty, mirroring the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniform over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniform over `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of RNGs from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64) standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
