//! Minimal shim for the subset of the `proptest` 1.x API this workspace uses.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched.  This vendored stand-in keeps the same source-level API for the
//! patterns the workspace's tests rely on — the `proptest!` macro, `any`,
//! range/tuple/collection/sample strategies, `prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros — but generates cases with a simple
//! deterministic PRNG and performs **no shrinking**.  Each test function gets
//! a seed derived from its fully qualified name, so failures are reproducible
//! across runs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Generates strings matching the tiny regex subset `[class]{lo,hi}`
    /// (character classes with ranges and `\n`/`\t`/`\r`/`\\` escapes).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
            let len = rng.gen_range(lo..=hi);
            (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
        }
    }

    /// Parses `[members]{lo,hi}` into (alphabet, lo, hi); `None` when the
    /// pattern falls outside the supported subset.
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, counts) = rest.split_once(']')?;

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let member = match c {
                '\\' => match chars.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                },
                other => other,
            };
            if chars.peek() == Some(&'-') {
                chars.next();
                let end = chars.next()?;
                for code in (member as u32)..=(end as u32) {
                    alphabet.push(char::from_u32(code)?);
                }
            } else {
                alphabet.push(member);
            }
        }
        if alphabet.is_empty() {
            return None;
        }

        let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<A> {
        pub(crate) _marker: PhantomData<A>,
    }

    impl<A: crate::arbitrary::Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Any;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value from `rng`.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$ty>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> Self {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.gen::<u8>();
            }
            out
        }
    }

    /// Returns the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any { _marker: PhantomData }
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    ///
    /// Like the real crate, the size argument is taken as `Into<SizeRange>` so
    /// that bare integer-literal ranges (`1..200`) infer as `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty collection size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`]; `size` may be a `usize` or a range (`0..40`).
    pub fn vec<S, L>(element: S, size: L) -> VecStrategy<S>
    where
        S: Strategy,
        L: Into<SizeRange>,
    {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`HashSetStrategy`]; duplicates are redrawn.
    pub fn hash_set<S, L>(element: S, size: L) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        L: Into<SizeRange>,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // A sparse element domain may be unable to fill `n` distinct
            // values; bail out after a generous number of redraws rather
            // than looping forever.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(100) + 1000 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy that picks uniformly from a fixed list.
    pub struct Select<T> {
        values: Vec<T>,
    }

    /// Builds a [`Select`] over `values` (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }
}

/// Test-runner configuration and case outcomes.
pub mod test_runner {
    /// Per-`proptest!` configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is redrawn, not failed.
        Reject(String),
        /// A `prop_assert*!` failed; the whole property fails.
        Fail(String),
    }
}

/// Derives a per-test RNG from the test's fully qualified name (FNV-1a), so
/// runs are deterministic and independent of execution order.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Differences from the real crate: no shrinking, and cases are drawn from a
/// deterministic per-test seed rather than an entropy source.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        __rejected += 1;
                        let __budget = __config.cases.saturating_mul(16).max(1024);
                        if __rejected > __budget {
                            panic!(
                                "{}: too many rejected cases ({}), last: {}",
                                stringify!($name), __rejected, __why
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__why),
                    ) => {
                        panic!(
                            "{}: property failed on case {}: {}",
                            stringify!($name), __accepted, __why
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// `assert!` analogue that fails the current property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` analogue that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `assert_ne!` analogue that fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Vetoes the current case (it is redrawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the real prelude's `prop` module shorthand.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5u32..6), c in 0u8..=3) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(c <= 3);
        }

        #[test]
        fn collections_and_maps(
            v in prop::collection::vec(any::<u8>(), 2..5),
            s in prop::collection::hash_set(0u64..1000, 1..10),
            word in prop::sample::select(vec!["a", "b"]),
            text in "[a-c]{2,4}",
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(!s.is_empty() && s.len() < 10);
            prop_assert!(word == "a" || word == "b");
            prop_assert!(text.len() >= 2 && text.len() <= 4);
            prop_assert!(text.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// `prop_assume!` rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x was {}", x);
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (0u64..4).prop_map(|v| v * 10);
        let mut rng = crate::__seed_rng("prop_map_applies");
        for _ in 0..50 {
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(v % 10 == 0 && v < 40);
        }
    }
}
