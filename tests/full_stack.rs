//! Cross-crate integration tests: the full HyperTester stack over
//! multi-device testbeds, including the paper's two-switch topology
//! (Fig. 8), fault injection, and task-rejection paths.

use ht_packet::wire::gbps;
use hypertester::asic::action::{ActionSet, PrimitiveOp};
use hypertester::asic::phv::fields;
use hypertester::asic::table::{MatchKind, Table};
use hypertester::asic::time::ms;
use hypertester::asic::{LinkSpec, Switch, World};
use hypertester::cpu::SwitchCpu;
use hypertester::dut::Sink;
use hypertester::ht::{build, distinct_count, global_value, Gbps, TesterConfig};
use hypertester::ntapi::{compile, compile_with, parse, CompileOptions, NtapiError};

/// Tester → second (Tofino-like) switch under test → back to the tester:
/// the Fig. 8 topology, with the DUT being another `ht-asic` switch
/// programmed as a plain forwarder.
#[test]
fn two_switch_testbed_fig8() {
    let src = r#"
T1 = trigger().set([dip, sip, proto, dport, sport], [10.0.0.2, 10.0.0.1, udp, 9, 9])
    .set([pkt_len, interval], [256, 1us])
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut tester =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().expect("config"))
            .unwrap();
    let templates = tester.template_copies(0, 8);

    // The DUT: a second programmable switch forwarding port 0 → port 1.
    let mut dut = Switch::new("tofino-dut", 2);
    dut.add_port(0, gbps(100));
    dut.add_port(1, gbps(100));
    let fwd = Table::new(
        "l2_fwd",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new("to1", vec![PrimitiveOp::SetEgressPort(1)]),
    );
    dut.ingress.push_table(fwd);

    let mut w = World::builder().seed(1).build().unwrap();
    let t = w.add_device(Box::new(tester.switch));
    let d = w.add_device(Box::new(dut));
    w.link((t, 0), (d, 0), LinkSpec::new().delay(1_000_000)); // 1 µs cable
    w.link((d, 1), (t, 1), LinkSpec::new().delay(1_000_000));
    SwitchCpu::new().inject_templates(&mut w, t, templates, 0);
    w.run_until(ms(5));

    let tester_sw: &Switch = w.device(t);
    let sent = global_value(tester_sw, &tester.handles.queries["Q1"]);
    let received = global_value(tester_sw, &tester.handles.queries["Q2"]);
    assert!(sent > 0);
    // Everything sent comes back through the DUT (minus in-flight).
    assert!(received > 0 && sent - received < 10 * 256, "sent {sent} received {received}");

    let dut_sw: &Switch = w.device(d);
    assert_eq!(dut_sw.counters.tx_frames, dut_sw.counters.rx_frames);
}

/// Fault injection: on a lossy link, the receive-side query counts exactly
/// the packets that survived — the query engine never under- or
/// over-counts what it actually saw.
#[test]
fn lossy_link_counts_survivors_exactly() {
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(sport, range(7000, 7031, 1)).set(interval, 5us)
Q1 = query().distinct(keys=[sport])
Q2 = query().reduce(func=count)
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut tester =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().expect("config"))
            .unwrap();
    let templates = tester.template_copies(0, 8);

    let mut w = World::builder().seed(99).build().unwrap();
    let t = w.add_device(Box::new(tester.switch));
    // Port 0 loops back into port 1 over a 30%-lossy link.
    w.link((t, 0), (t, 1), LinkSpec::new().loss(0.3));
    SwitchCpu::new().inject_templates(&mut w, t, templates, 0);
    w.run_until(ms(20));

    let sw: &Switch = w.device(t);
    let received = global_value(sw, &tester.handles.queries["Q2"]);
    let tx = sw.counters.tx_frames;
    let drops = w.stats.link_drops;
    // Conservation: transmitted = received + dropped (± in flight).
    assert!(drops > 0, "lossy link dropped nothing");
    assert!(tx - (received + drops) < 5, "tx {tx} rx {received} drops {drops}");
    // All 32 flows still observed (loss is random, rate is ample).
    assert_eq!(distinct_count(sw, &tester.handles.queries["Q1"]), 32);
}

/// §6.1's loopback-port capacity extension: a task with more templates
/// than one recirculation loop holds compiles only with extra loops, and
/// actually runs with the extra port in loopback mode.
#[test]
fn loopback_ports_extend_accelerator_capacity() {
    let mut prog = hypertester::ntapi::Program::default();
    for i in 0..120 {
        prog.triggers.push(
            hypertester::ntapi::prelude::trigger(&format!("T{i}"))
                .dip("10.0.0.2")
                .proto_udp()
                .dport(1)
                .interval_us(100)
                .build(),
        );
    }
    // One loop: rejected.
    assert!(matches!(compile(&prog), Err(NtapiError::AcceleratorOverflow { .. })));
    // Two loops (one loopback port): accepted and runnable.
    let opts = CompileOptions { recirc_loops: 2, stage_budget: 1000, ..Default::default() };
    let task = compile_with(&prog, opts).unwrap();
    let cfg = TesterConfig::builder()
        .ports(4)
        .speed(Gbps(100))
        .loopback_ports([3])
        .build()
        .expect("config");
    let mut tester = build(&task, &cfg).unwrap();
    let templates: Vec<_> =
        (0..task.templates.len()).flat_map(|i| tester.template_copies(i, 1)).collect();

    let mut w = World::builder().seed(1).build().unwrap();
    let t = w.add_device(Box::new(tester.switch));
    let sk = w.add_device(Box::new(Sink::new("sink")));
    w.link((t, 0), (sk, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut w, t, templates, 0);
    w.run_until(ms(3));
    // All 120 triggers generate (100 µs interval → ≥1 packet each).
    let frames = w.device::<Sink>(sk).total_frames();
    assert!(frames >= 120, "only {frames} frames from 120 triggers");
}

/// The generated P4 and the DSL LoC relation holds across all four
/// Table 5 applications end to end.
#[test]
fn ntapi_vs_p4_loc_for_all_apps() {
    let apps: [(&str, &str); 4] = [
        (
            "throughput",
            r#"
T1 = trigger().set([dip, sip, proto, dport, sport], [10.0.0.2, 10.0.0.1, udp, 1, 1])
    .set([loop, pkt_len], [0, 64])
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
"#,
        ),
        (
            "delay",
            r#"
T1 = trigger().set([dip, sip, proto, dport, sport], [10.9.0.2, 10.9.0.1, udp, 7, 7])
    .set([pkt_len, interval], [128, 10us])
Q1 = query(T1).reduce(func=count)
Q2 = query().reduce(func=count)
"#,
        ),
        (
            "ip_scan",
            r#"
T1 = trigger().set([sip, dport, proto, flag, seq_no], [10.0.0.1, 80, tcp, SYN, 1])
    .set(dip, range(10.1.0.1, 10.1.15.254, 1)).set([loop, interval], [1, 1us])
Q1 = query().filter(tcp_flag == SYN+ACK).distinct(keys=[sip])
"#,
        ),
        (
            "syn_flood",
            r#"
T1 = trigger().set([dip, dport, proto, flag], [10.0.0.80, 80, tcp, SYN])
    .set(sip, random(uniform, 16777216, 33554432, 24))
    .set(sport, range(1024, 65535, 1)).set(port, [0, 1, 2, 3])
"#,
        ),
    ];
    for (name, src) in apps {
        let prog = parse(src).unwrap();
        let task = compile(&prog).unwrap();
        let p4 = hypertester::ntapi::codegen::generate_p4(&task);
        let ntapi_loc = prog.loc().unwrap();
        let p4_loc = hypertester::ntapi::loc::count_loc(&p4);
        assert!(ntapi_loc <= 12, "{name}: NTAPI {ntapi_loc} LoC");
        // §7.1: "the LoC of NTAPI is over one order of magnitude lower".
        assert!(p4_loc >= 10 * ntapi_loc, "{name}: P4 {p4_loc} vs NTAPI {ntapi_loc}");
        // And the code-size reduction vs MoonGen Lua is at least 74.4 %.
        let lua_loc = match name {
            "throughput" => {
                hypertester::baseline::lua::lua_loc(hypertester::baseline::lua::THROUGHPUT)
            }
            "delay" => hypertester::baseline::lua::lua_loc(hypertester::baseline::lua::DELAY),
            "ip_scan" => hypertester::baseline::lua::lua_loc(hypertester::baseline::lua::IP_SCAN),
            _ => hypertester::baseline::lua::lua_loc(hypertester::baseline::lua::SYN_FLOOD),
        };
        let reduction = 1.0 - ntapi_loc as f64 / lua_loc as f64;
        assert!(reduction > 0.744, "{name}: reduction {:.1}%", reduction * 100.0);
    }
}

/// Task rejection (§6.1): all documented error classes reach the user as
/// typed errors, end to end from DSL text.
#[test]
fn rejection_paths() {
    type ErrCheck = fn(&NtapiError) -> bool;
    let cases: [(&str, ErrCheck); 4] = [
        ("T1 = trigger().set(dport, 70000)", |e| matches!(e, NtapiError::ValueOutOfRange { .. })),
        ("T1 = trigger().set(sport, range(9, 1, 1))", |e| matches!(e, NtapiError::BadRange { .. })),
        ("T1 = trigger(Qx).set(dport, 80)", |e| matches!(e, NtapiError::UnknownQuery(_))),
        ("Q1 = query(Tx).reduce(func=sum)", |e| matches!(e, NtapiError::UnknownTrigger(_))),
    ];
    for (src, check) in cases {
        let err = compile(&parse(src).unwrap()).unwrap_err();
        assert!(check(&err), "{src} → {err}");
    }
}
