//! Corpus replay and the recirculation differential-digest pin.
//!
//! Every `.case` file under `tests/fuzz_corpus/` is a past (or seeded)
//! counterexample of the fuzz oracle; replaying them must never surface a
//! violation again.  The differential test pins satellite invariant C on a
//! shipped task that recirculates: the `analysis-annotation` pass must not
//! change a single simulated byte.

use hypertester::bench::fuzz::{differential_digest, replay_corpus, CaseOutcome};
use hypertester::ntapi::resolve_file;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus")
}

#[test]
fn corpus_replays_clean() {
    let results = replay_corpus(&corpus_dir()).expect("corpus directory readable");
    assert!(!results.is_empty(), "corpus should hold at least the seed cases");
    for (name, outcome) in &results {
        assert!(!matches!(outcome, CaseOutcome::Violated(_)), "{name} violated again: {outcome:?}");
    }
}

#[test]
fn seed_minimal_is_accepted_and_bad_dport_rejected() {
    let results = replay_corpus(&corpus_dir()).expect("corpus directory readable");
    let outcome = |n: &str| {
        results
            .iter()
            .find(|(name, _)| name == n)
            .unwrap_or_else(|| panic!("{n} missing from corpus"))
            .1
            .clone()
    };
    assert_eq!(outcome("seed-minimal.case"), CaseOutcome::Accepted);
    assert_eq!(outcome("seed-bad-dport.case"), CaseOutcome::Rejected);
}

#[test]
fn analysis_annotation_preserves_recirculating_digest() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tasks/scan.nt");
    let prog = resolve_file(&path, &[], &[]).expect("resolve scan.nt");
    let d = differential_digest(&prog).expect("scan.nt builds on the fuzz testbed");
    assert!(
        d.recirculations >= 2,
        "fixture must recirculate at least twice, saw {}",
        d.recirculations
    );
    assert_eq!(d.full, d.prefix, "analysis-annotation changed the simulated byte stream");
}
