//! Smoke tests for the `htctl` command line.

use std::process::Command;

fn htctl(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_htctl")).args(args).output().expect("spawn htctl");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn task_path(name: &str) -> String {
    format!("{}/tasks/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn compile_reports_task_structure() {
    let (stdout, _, ok) = htctl(&["compile", &task_path("syn_flood.nt")]);
    assert!(ok);
    assert!(stdout.contains("task OK: 1 trigger(s), 0 quer(ies)"), "{stdout}");
    assert!(stdout.contains("ports [0, 1, 2, 3]"));
    assert!(stdout.contains("2 edit(s)"));
}

#[test]
fn compile_scan_shows_fp_precompute() {
    let (stdout, _, ok) = htctl(&["compile", &task_path("scan.nt")]);
    assert!(ok);
    assert!(stdout.contains("exact-match entries"), "{stdout}");
}

#[test]
fn p4_emits_a_program() {
    let (stdout, _, ok) = htctl(&["p4", &task_path("throughput.nt")]);
    assert!(ok);
    assert!(stdout.contains("control ingress"));
    assert!(stdout.contains("table accelerator"));
}

#[test]
fn loc_counts_both_sides() {
    let (stdout, _, ok) = htctl(&["loc", &task_path("throughput.nt")]);
    assert!(ok);
    assert!(stdout.contains("NTAPI:"));
    assert!(stdout.contains("P4   :"));
}

#[test]
fn run_prints_throughput_and_queries() {
    let (stdout, _, ok) = htctl(&["run", &task_path("throughput.nt"), "--duration", "1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("per-port throughput"));
    assert!(stdout.contains("query results"));
    assert!(stdout.contains("Q1:"));
}

#[test]
fn rejected_task_exits_nonzero_with_message() {
    let dir = std::env::temp_dir().join("htctl-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.nt");
    std::fs::write(&bad, "T1 = trigger().set(dport, 99999)").unwrap();
    let (_, stderr, ok) = htctl(&["compile", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("task rejected"), "{stderr}");
    assert!(stderr.contains("99999"));
}

#[test]
fn missing_args_show_usage() {
    let (_, stderr, ok) = htctl(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn lint_accepts_all_shipped_tasks() {
    for name in ["scan.nt", "syn_flood.nt", "throughput.nt"] {
        let (stdout, stderr, ok) = htctl(&["lint", &task_path(name)]);
        assert!(ok, "{name}: {stdout}{stderr}");
        assert!(stdout.contains("0 error(s)"), "{name}: {stdout}");
    }
}

#[test]
fn lint_json_has_the_documented_shape() {
    let (stdout, _, ok) = htctl(&["lint", "--json", &task_path("throughput.nt")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"file\":"), "{stdout}");
    assert!(stdout.contains("\"diagnostics\":["), "{stdout}");
    assert!(stdout.contains("\"errors\":0"), "{stdout}");
    assert!(stdout.contains("\"warnings\":"), "{stdout}");
}

#[test]
fn lint_rejects_a_shadowed_edit_with_exit_one() {
    let dir = std::env::temp_dir().join("htctl-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("shadowed.nt");
    // Two edits of the same field: the second silently overwrites the
    // first, which the task-level lint flags as an error.
    std::fs::write(&bad, "T1 = trigger().set(sport, range(1, 9, 1)).set(sport, [7, 8])\n").unwrap();
    let (stdout, _, ok) = htctl(&["lint", bad.to_str().unwrap()]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("edit-shadowed"), "{stdout}");

    let (json_out, _, json_ok) = htctl(&["lint", "--json", bad.to_str().unwrap()]);
    assert!(!json_ok);
    assert!(json_out.contains("\"rule\":\"edit-shadowed\""), "{json_out}");
    assert!(json_out.contains("\"severity\":\"error\""), "{json_out}");
}

#[test]
fn lint_without_a_path_shows_usage() {
    let (_, stderr, ok) = htctl(&["lint", "--json"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn unreadable_file_is_an_error() {
    let (_, stderr, ok) = htctl(&["compile", "/nonexistent/task.nt"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
}

fn htctl_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_htctl")).args(args).output().expect("spawn htctl");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn compile_json_reports_templates_and_queries() {
    let (stdout, _, ok) = htctl(&["compile", "--json", &task_path("throughput.nt")]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
    assert!(stdout.contains("\"templates\":["), "{stdout}");
    assert!(stdout.contains("\"queries\":["), "{stdout}");
    assert!(stdout.contains("\"frame_len\":"), "{stdout}");
}

#[test]
fn compile_json_failure_is_exit_one_with_error_object() {
    let dir = std::env::temp_dir().join("htctl-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad_json.nt");
    std::fs::write(&bad, "T1 = trigger().set(dport, 99999)").unwrap();
    let (stdout, _, code) = htctl_code(&["compile", "--json", bad.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
    assert!(stdout.contains("\"error\":"), "{stdout}");
}

#[test]
fn run_json_emits_ports_queries_and_counters() {
    let (stdout, _, ok) = htctl(&["run", "--json", &task_path("throughput.nt"), "--duration", "1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"ports\":[{\"port\":0"), "{stdout}");
    assert!(stdout.contains("\"queries\":["), "{stdout}");
    assert!(stdout.contains("\"counters\":{"), "{stdout}");
    // No human progress text may pollute the JSON stream.
    assert!(!stdout.contains("running"), "{stdout}");
}

#[test]
fn usage_errors_exit_two_everywhere() {
    let (_, _, none) = htctl_code(&[]);
    let (_, _, compile) = htctl_code(&["compile"]);
    let (_, _, bench) = htctl_code(&["bench", "--bogus"]);
    assert_eq!((none, compile, bench), (2, 2, 2));
}

#[test]
fn bench_lists_the_suite() {
    let (stdout, _, ok) = htctl(&["bench", "--list"]);
    assert!(ok, "{stdout}");
    for name in ["table5_loc", "fig14_accelerator", "ablation_cuckoo", "hotpath_queue_arena"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn bench_smoke_filter_emits_bench_json() {
    let (stdout, _, ok) =
        htctl(&["bench", "--smoke", "--workers", "2", "--json", "--filter", "table5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"schema\": 1"), "{stdout}");
    assert!(stdout.contains("\"scale\": \"smoke\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"table5_loc\""), "{stdout}");
    assert!(stdout.contains("\"digest\":"), "{stdout}");
}

#[test]
fn compile_surfaces_task_warnings() {
    let dir = std::env::temp_dir().join("htctl-test");
    std::fs::create_dir_all(&dir).unwrap();
    let warn = dir.join("warn.nt");
    std::fs::write(
        &warn,
        "T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)\n\
         \x20   .set(interval, 2ns)",
    )
    .unwrap();
    let path = warn.to_str().unwrap();
    let (stdout, _, ok) = htctl(&["compile", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("warning[timer-rate-infeasible]"), "{stdout}");
    let (stdout, _, ok) = htctl(&["compile", "--json", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"warnings\":[{\"rule\":\"timer-rate-infeasible\""), "{stdout}");
}

#[test]
fn analyze_reports_fixpoint_and_certified_registers() {
    let (stdout, _, ok) = htctl(&["analyze", &task_path("scan.nt")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fixpoint in"), "{stdout}");
    assert!(stdout.contains("recirculation back edge, widened"), "{stdout}");
    assert!(stdout.contains("certified no-wrap registers:"), "{stdout}");
}

#[test]
fn analyze_json_shares_the_lint_schema() {
    let path = task_path("syn_flood.nt");
    let (analyze, _, ok_a) = htctl(&["analyze", "--json", &path]);
    let (lint, _, ok_l) = htctl(&["lint", "--json", &path]);
    assert!(ok_a && ok_l);
    // One serializer (ht_ir::report_json) feeds both subcommands: on a
    // clean task the objects are byte-identical.
    assert_eq!(analyze, lint);
    assert!(analyze.contains("\"diagnostics\":["), "{analyze}");
}

#[test]
fn analyze_dumps_each_fact_pass() {
    for (pass, needle) in [
        ("value", "field intervals"),
        ("liveness", "fields live"),
        ("reachability", "reachability"),
        ("salu-range", "never to wrap"),
    ] {
        let (stdout, _, ok) =
            htctl(&["analyze", &format!("--dump-facts={pass}"), &task_path("scan.nt")]);
        assert!(ok, "pass {pass}: {stdout}");
        assert!(stdout.to_lowercase().contains(needle), "pass {pass}: {stdout}");
    }
    let (_, stderr, code) = htctl_code(&["analyze", "--dump-facts=bogus", &task_path("scan.nt")]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown fact pass"), "{stderr}");
}

#[test]
fn fuzz_fixed_seed_campaign_is_clean_and_deterministic() {
    let (a, _, ok_a) = htctl(&["fuzz", "--cases", "60", "--seed", "7"]);
    let (b, _, ok_b) = htctl(&["fuzz", "--cases", "60", "--seed", "7"]);
    assert!(ok_a && ok_b, "{a}");
    assert_eq!(a, b, "campaign must be deterministic per seed");
    assert!(a.contains("0 counterexample(s)"), "{a}");
}

#[test]
fn fuzz_json_reports_the_case_mix() {
    let (stdout, _, ok) = htctl(&["fuzz", "--cases", "40", "--seed", "3", "--json"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"cases\":40"), "{stdout}");
    assert!(stdout.contains("\"seed\":3"), "{stdout}");
    assert!(stdout.contains("\"failures\":[]"), "{stdout}");
}

#[test]
fn bench_list_shows_analysis_facts_column() {
    let (stdout, _, ok) = htctl(&["bench", "--list"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("facts"), "{stdout}");
    assert!(stdout.contains("fuzz_throughput"), "{stdout}");
    let ratectl = stdout.lines().find(|l| l.starts_with("fig11_ratectl_40g")).unwrap();
    assert!(ratectl.contains("yes"), "{ratectl}");
    let cost = stdout.lines().find(|l| l.starts_with("table6_cost")).unwrap();
    assert!(!cost.contains("yes"), "{cost}");
}
