//! Invariant-E/F pins: the compiled threaded-code executor and the
//! lane-batched vector executor must both match the per-stage
//! interpreter byte-for-byte — same simulation digest, same register
//! wrap log, same keyed-query flows — on every shipped task, every
//! stored fuzz counterexample, and randomized sweeps over the fuzz
//! grammar.

use hypertester::bench::fuzz::{exec_differential, gen_spec, SplitMix64, TaskSpec};
use hypertester::ntapi::resolve_file;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

#[test]
fn every_shipped_task_runs_identically_under_all_executors() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(root().join("tasks"))
        .expect("tasks directory readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "nt"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 3, "expected the shipped task files, saw {}", paths.len());
    for path in paths {
        let prog =
            resolve_file(&path, &[], &[]).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let d = exec_differential(&prog)
            .unwrap_or_else(|| panic!("{}: does not build on the fuzz testbed", path.display()));
        assert!(
            d.agree(),
            "{}: compiled {:#018x}/{:?} wraps/{:?} flows, vector {:#018x}/{:?} wraps/{:?} \
             flows vs interp {:#018x}/{:?} wraps/{:?} flows",
            path.display(),
            d.compiled,
            d.wrap_events.1,
            d.compiled_flows,
            d.vector,
            d.wrap_events.2,
            d.vector_flows,
            d.interp,
            d.wrap_events.0,
            d.interp_flows,
        );
    }
}

#[test]
fn every_corpus_case_runs_identically_under_all_executors() {
    let dir = root().join("tests/fuzz_corpus");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "corpus should hold at least the seed cases");
    for path in names {
        let body = std::fs::read_to_string(&path).expect("corpus entry readable");
        let line = body
            .lines()
            .find(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .unwrap_or_default();
        let Some(spec) = TaskSpec::parse(line) else {
            panic!("{}: unparseable corpus entry", path.display());
        };
        // Statically rejected cases have no simulation to compare; modular
        // specs that fail resolution likewise.
        let prog = if spec.modular {
            match spec.resolve_modular() {
                Ok(p) => p,
                Err(_) => continue,
            }
        } else {
            spec.to_program()
        };
        if let Some(d) = exec_differential(&prog) {
            assert!(
                d.agree(),
                "{}: compiled {:#018x}, vector {:#018x} vs interp {:#018x}",
                path.display(),
                d.compiled,
                d.vector,
                d.interp,
            );
        }
    }
}

#[test]
fn randomized_grammar_specs_agree_under_all_executors() {
    // Property sweep: every accepted draw from the fuzz grammar must run
    // identically under all three executors.  The modular/resolver axis
    // is covered by the fuzz oracle itself (invariants E and F in
    // `check_spec`); here we sweep the builder renderings for breadth.
    let mut rng = SplitMix64::new(0xE);
    let mut agreed = 0usize;
    for _ in 0..60 {
        let spec = gen_spec(&mut rng);
        let Some(d) = exec_differential(&spec.to_program()) else {
            continue;
        };
        assert!(
            d.agree(),
            "{}: compiled {:#018x}, vector {:#018x} vs interp {:#018x}",
            spec.to_line(),
            d.compiled,
            d.vector,
            d.interp,
        );
        agreed += 1;
    }
    assert!(agreed >= 10, "sweep too vacuous: only {agreed} accepted specs");
}

#[test]
fn vector_sweep_covers_both_planned_and_fallback_ingresses() {
    // A second, differently-seeded sweep focused on invariant F: the
    // digest equality above holds whether the vector planner accepted
    // the ingress (lane-batched execution) or rejected it (compiled
    // fallback inside the vector-mode run).  Count both paths so the
    // sweep cannot silently degenerate into fallback-only coverage.
    let mut rng = SplitMix64::new(0xF);
    let (mut planned, mut fallback) = (0usize, 0usize);
    for _ in 0..40 {
        let spec = gen_spec(&mut rng);
        let Some(d) = exec_differential(&spec.to_program()) else {
            continue;
        };
        assert!(
            d.agree(),
            "{}: vector {:#018x} vs interp {:#018x}",
            spec.to_line(),
            d.vector,
            d.interp,
        );
        if d.vector_planned {
            planned += 1;
        } else {
            fallback += 1;
        }
    }
    assert!(
        planned >= 3 && fallback >= 3,
        "sweep too one-sided: {planned} lane-batched vs {fallback} fallback specs"
    );
}
