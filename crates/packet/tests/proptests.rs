//! Property-based tests: every frame the builder can produce parses back to
//! the same field values with valid checksums — the invariant that template
//! packets injected by the switch CPU are always well-formed.

use ht_packet::ethernet::{EtherType, Frame};
use ht_packet::ipv4::{self, Protocol};
use ht_packet::tcp::{self, TcpFlags};
use ht_packet::{checksum, udp, EthernetAddress, Ipv4Address, PacketBuilder};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = EthernetAddress> {
    any::<[u8; 6]>().prop_map(EthernetAddress)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Address> {
    any::<[u8; 4]>().prop_map(Ipv4Address)
}

proptest! {
    #[test]
    fn udp_frames_round_trip(
        src_mac in arb_mac(), dst_mac in arb_mac(),
        src_ip in arb_ip(), dst_ip in arb_ip(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..600),
        frame_len in 0usize..1500,
    ) {
        let frame = PacketBuilder::new()
            .eth(src_mac, dst_mac)
            .ipv4(src_ip, dst_ip)
            .udp(sport, dport)
            .payload(&payload)
            .frame_len(frame_len)
            .build();
        prop_assert!(frame.len() >= 64);

        let eth = Frame::new_checked(&frame[..]).unwrap();
        prop_assert_eq!(eth.src(), src_mac);
        prop_assert_eq!(eth.dst(), dst_mac);
        prop_assert_eq!(eth.ethertype(), EtherType::Ipv4);

        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(ip.src(), src_ip);
        prop_assert_eq!(ip.dst(), dst_ip);
        prop_assert_eq!(ip.protocol(), Protocol::Udp);

        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        prop_assert_eq!(u.src_port(), sport);
        prop_assert_eq!(u.dst_port(), dport);
        prop_assert_eq!(u.payload(), &payload[..]);
        prop_assert!(u.verify_checksum(src_ip.0, dst_ip.0));
    }

    #[test]
    fn tcp_frames_round_trip(
        src_ip in arb_ip(), dst_ip in arb_ip(),
        sport in any::<u16>(), dport in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        raw_flags in 0u8..0x40,
        payload in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let flags = TcpFlags(raw_flags);
        let frame = PacketBuilder::new()
            .ipv4(src_ip, dst_ip)
            .tcp(sport, dport, seq, ack, flags)
            .payload(&payload)
            .build();

        let eth = Frame::new_checked(&frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        prop_assert_eq!(ip.protocol(), Protocol::Tcp);

        let t = tcp::Packet::new_checked(ip.payload()).unwrap();
        prop_assert_eq!(t.src_port(), sport);
        prop_assert_eq!(t.dst_port(), dport);
        prop_assert_eq!(t.seq_no(), seq);
        prop_assert_eq!(t.ack_no(), ack);
        prop_assert_eq!(t.flags(), flags);
        prop_assert_eq!(t.payload(), &payload[..]);
        prop_assert!(t.verify_checksum(src_ip.0, dst_ip.0));
    }

    /// Inserting a checksum computed over data makes re-checksumming fold to
    /// zero — the verification identity all three protocols rely on.
    #[test]
    fn checksum_identity(mut data in prop::collection::vec(any::<u8>(), 2..300)) {
        data[0] = 0;
        data[1] = 0;
        let c = checksum::checksum(&data);
        data[0..2].copy_from_slice(&c.to_be_bytes());
        prop_assert_eq!(checksum::checksum(&data), 0);
    }

    /// Flipping any single bit of a checksummed IPv4 header is detected.
    #[test]
    fn ipv4_checksum_detects_any_bit_flip(
        src_ip in arb_ip(), dst_ip in arb_ip(), bit in 0usize..(20 * 8),
    ) {
        let frame = PacketBuilder::new()
            .ipv4(src_ip, dst_ip)
            .udp(1, 1)
            .build();
        let mut hdr = frame[14..34].to_vec();
        hdr[bit / 8] ^= 1 << (bit % 8);
        // One's-complement sums cannot be fooled by a single bit flip.
        prop_assert_ne!(checksum::checksum(&hdr), 0);
    }

    /// MAC and IP address scalar conversions round-trip.
    #[test]
    fn address_conversions_round_trip(mac in arb_mac(), ip in arb_ip()) {
        prop_assert_eq!(EthernetAddress::from_u64(mac.to_u64()), mac);
        prop_assert_eq!(Ipv4Address::from_u32(ip.to_u32()), ip);
    }
}
