//! The Internet one's-complement checksum (RFC 1071), shared by the IPv4,
//! TCP and UDP headers.

/// Sums 16-bit big-endian words of `data` into a one's-complement
/// accumulator.  An odd trailing byte is padded with a zero byte on the
/// right, per RFC 1071.
pub fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds the accumulator and complements it into the final checksum value.
pub fn finish(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Checksum of a standalone byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum_words(0, data))
}

/// The IPv4 pseudo-header contribution used by the TCP and UDP checksums:
/// source address, destination address, zero+protocol, and L4 length.
pub fn pseudo_header(src: [u8; 4], dst: [u8; 4], protocol: u8, l4_len: u16) -> u32 {
    let mut acc = 0;
    acc = sum_words(acc, &src);
    acc = sum_words(acc, &dst);
    acc += u32::from(protocol);
    acc += u32::from(l4_len);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The example bytes from RFC 1071 §3: checksum of
        // 00 01 f2 03 f4 f5 f6 f7 is the complement of ddf2 → 220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
        assert_eq!(checksum(&[0xff, 0xff, 0x01]), finish(0xffff + 0x0100));
    }

    #[test]
    fn empty_data_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verification_of_valid_data_yields_zero() {
        // Inserting the computed checksum makes the total sum fold to zero.
        let mut data = vec![
            0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00, 0x0a, 0x00,
            0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
        ];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn pseudo_header_contributes_protocol_and_length() {
        let acc = pseudo_header([10, 0, 0, 1], [10, 0, 0, 2], 17, 8);
        let no_l4 = pseudo_header([10, 0, 0, 1], [10, 0, 0, 2], 17, 0);
        assert_eq!(acc - no_l4, 8);
    }
}
