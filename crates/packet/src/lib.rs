//! Wire formats for the HyperTester reproduction.
//!
//! Typed, allocation-free views over byte buffers in the style of
//! `smoltcp`: a `Packet<T: AsRef<[u8]>>` wraps a buffer and exposes getters;
//! with `T: AsMut<[u8]>` it also exposes setters.  On top of the views,
//! [`builder::PacketBuilder`] assembles complete test frames
//! (Ethernet/IPv4/{TCP,UDP}/payload) with correct lengths and checksums —
//! the job the switch CPU performs when it crafts *template packets*.
//!
//! Modules:
//! * [`ethernet`] — Ethernet II frames and [`EthernetAddress`].
//! * [`ipv4`] — IPv4 headers (no options) and [`Ipv4Address`].
//! * [`tcp`] — TCP headers and [`tcp::TcpFlags`].
//! * [`udp`] — UDP headers.
//! * [`checksum`] — the Internet one's-complement checksum.
//! * [`builder`] — whole-frame construction.
//! * [`wire`] — line-rate arithmetic (frame overhead, wire times, pps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod ipv4;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use builder::PacketBuilder;
pub use ethernet::EthernetAddress;
pub use ipv4::Ipv4Address;

/// Errors produced when interpreting bytes as a protocol header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header (or the length a header
    /// field claims).
    Truncated,
    /// A version/IHL/length field holds a value the parser does not support.
    Malformed,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "buffer too short for header"),
            ParseError::Malformed => write!(f, "malformed header field"),
        }
    }
}

impl std::error::Error for ParseError {}
