//! UDP headers.

use crate::{checksum, ParseError};

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

/// A view over a UDP datagram.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer, checking the header fits and the length field is
    /// consistent with the buffer.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([b[4], b[5]]));
        if len < HEADER_LEN || len > b.len() {
            return Err(ParseError::Truncated);
        }
        Ok(Packet { buffer })
    }

    /// Wraps a buffer without validation.  For writers that are about to
    /// initialize every field; the caller must guarantee the buffer is at
    /// least [`HEADER_LEN`] bytes.
    pub fn new_unchecked(buffer: T) -> Self {
        debug_assert!(buffer.as_ref().len() >= HEADER_LEN);
        Packet { buffer }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// The datagram payload.
    pub fn payload(&self) -> &[u8] {
        let len = usize::from(self.len_field());
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verifies the checksum given the pseudo-header addresses.  A zero
    /// checksum field means "not computed" and verifies trivially, per
    /// RFC 768.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = usize::from(self.len_field());
        let b = &self.buffer.as_ref()[..len];
        let acc = checksum::pseudo_header(src, dst, 17, len as u16);
        checksum::finish(checksum::sum_words(acc, b)) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Recomputes and stores the checksum given the pseudo-header addresses.
    /// A computed value of zero is transmitted as `0xffff`, per RFC 768.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.buffer.as_mut()[6..8].copy_from_slice(&[0, 0]);
        let len = usize::from(self.len_field());
        let b = &self.buffer.as_ref()[..len];
        let acc = checksum::pseudo_header(src, dst, 17, len as u16);
        let c = checksum::finish(checksum::sum_words(acc, b));
        let c = if c == 0 { 0xffff } else { c };
        self.buffer.as_mut()[6..8].copy_from_slice(&c.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [192, 168, 0, 1];
    const DST: [u8; 4] = [192, 168, 0, 2];

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 12];
        b[8..].copy_from_slice(b"ping");
        {
            let mut p = Packet { buffer: &mut b[..] };
            p.set_src_port(5000);
            p.set_dst_port(53);
            p.set_len_field(12);
            p.fill_checksum(SRC, DST);
        }
        b
    }

    #[test]
    fn build_and_parse_round_trip() {
        let b = sample();
        let p = Packet::new_checked(&b[..]).unwrap();
        assert_eq!(p.src_port(), 5000);
        assert_eq!(p.dst_port(), 53);
        assert_eq!(p.len_field(), 12);
        assert_eq!(p.payload(), b"ping");
        assert!(p.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_verifies_trivially() {
        let mut b = sample();
        b[6..8].copy_from_slice(&[0, 0]);
        let p = Packet::new_checked(&b[..]).unwrap();
        assert!(p.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_fails_verification() {
        let mut b = sample();
        b[9] ^= 0x01;
        let p = Packet::new_checked(&b[..]).unwrap();
        assert!(!p.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut b = sample();
        b[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Truncated);
        b[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Truncated);
    }
}
