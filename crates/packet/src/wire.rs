//! Line-rate arithmetic shared by the switch model and the baselines.
//!
//! Conventions used throughout the reproduction:
//!
//! * **Frame length** includes the Ethernet header and the 4-byte FCS — a
//!   "64-byte packet" in the paper's figures is a minimum-size Ethernet
//!   frame.  Buffers built by [`crate::PacketBuilder`] are padded to this
//!   length (the FCS region is zeros; nothing parses it).
//! * **Per-frame wire occupancy** adds the 8-byte preamble/SFD and the
//!   12-byte inter-frame gap: `frame_len + 20` bytes.  This yields the
//!   canonical 148.8 Mpps for 64-byte frames at 100 Gbps — and therefore the
//!   595 Mpps over four ports reported in the paper's Table 8.
//! * Time is measured in integer **picoseconds**, the base unit of the
//!   discrete-event simulator (one bit at 100 Gbps is exactly 10 ps).

/// Preamble/SFD (8 B) plus minimum inter-frame gap (12 B).
pub const FRAME_OVERHEAD_BYTES: u64 = 20;

/// Minimum Ethernet frame length (including FCS).
pub const MIN_FRAME_LEN: usize = 64;

/// Maximum standard Ethernet frame length (including FCS).
pub const MAX_FRAME_LEN: usize = 1518;

/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// Time one frame occupies the wire, in picoseconds, at `rate_bps`.
///
/// # Panics
/// Panics when `rate_bps` is zero.
pub fn wire_time_ps(frame_len: usize, rate_bps: u64) -> u64 {
    assert!(rate_bps > 0, "link rate must be positive");
    let bits = (frame_len as u64 + FRAME_OVERHEAD_BYTES) * 8;
    ((bits as u128 * PS_PER_SEC as u128) / rate_bps as u128) as u64
}

/// Line-rate packet throughput for back-to-back frames of `frame_len`.
pub fn line_rate_pps(frame_len: usize, rate_bps: u64) -> f64 {
    rate_bps as f64 / (((frame_len as u64 + FRAME_OVERHEAD_BYTES) * 8) as f64)
}

/// Layer-2 throughput in bits/s for a packet rate: counts the frame bytes
/// (what the paper's throughput figures report).
pub fn l2_rate_bps(frame_len: usize, pps: f64) -> f64 {
    pps * (frame_len * 8) as f64
}

/// Layer-1 throughput in bits/s for a packet rate: counts frame bytes plus
/// preamble and inter-frame gap (what saturates the physical link).
pub fn l1_rate_bps(frame_len: usize, pps: f64) -> f64 {
    pps * ((frame_len as u64 + FRAME_OVERHEAD_BYTES) * 8) as f64
}

/// Convenience: gigabits per second → bits per second.
pub const fn gbps(g: u64) -> u64 {
    g * 1_000_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_at_100g_takes_6720_ps() {
        assert_eq!(wire_time_ps(64, gbps(100)), 6720);
    }

    #[test]
    fn full_frame_at_10g_takes_1230400_ps() {
        // (1518 + 20) * 8 bits at 10 Gbps = 1230.4 ns.
        assert_eq!(wire_time_ps(1518, gbps(10)), 1_230_400);
    }

    #[test]
    fn canonical_line_rates() {
        // 14.88 Mpps at 10 GbE, 148.8 Mpps at 100 GbE for 64-byte frames.
        assert!((line_rate_pps(64, gbps(10)) - 14_880_952.38).abs() < 1.0);
        assert!((line_rate_pps(64, gbps(100)) - 148_809_523.8).abs() < 10.0);
        // Four 100G ports of 64-byte frames ≈ 595 Mpps (paper Table 8).
        let four_ports = 4.0 * line_rate_pps(64, gbps(100));
        assert!((four_ports / 1e6 - 595.2).abs() < 0.1, "{four_ports}");
    }

    #[test]
    fn l1_rate_saturates_link_at_line_rate() {
        for len in [64usize, 128, 512, 1518] {
            let pps = line_rate_pps(len, gbps(40));
            assert!((l1_rate_bps(len, pps) - 40e9).abs() < 1.0);
            assert!(l2_rate_bps(len, pps) < 40e9);
        }
    }

    #[test]
    fn wire_time_matches_line_rate() {
        for len in [64usize, 100, 747, 1518] {
            let t = wire_time_ps(len, gbps(100)) as f64 / PS_PER_SEC as f64;
            let pps = line_rate_pps(len, gbps(100));
            assert!((t * pps - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "link rate must be positive")]
    fn zero_rate_panics() {
        wire_time_ps(64, 0);
    }
}
