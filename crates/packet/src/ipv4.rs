//! IPv4 headers (20-byte fixed header; options are rejected, matching what
//! HyperTester's template packets use).

use crate::{checksum, ParseError};

/// Length of the option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// Builds an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address([a, b, c, d])
    }

    /// The address as a host-order u32 (the PHV representation).
    pub fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Reconstructs an address from a host-order u32.
    pub fn from_u32(v: u32) -> Self {
        Ipv4Address(v.to_be_bytes())
    }
}

impl std::fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl std::str::FromStr for Ipv4Address {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, ParseError> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for o in octets.iter_mut() {
            *o = parts.next().and_then(|p| p.parse().ok()).ok_or(ParseError::Malformed)?;
        }
        if parts.next().is_some() {
            return Err(ParseError::Malformed);
        }
        Ok(Ipv4Address(octets))
    }
}

/// IP protocol numbers the reproduction parses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, carried verbatim.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(v: Protocol) -> u8 {
        match v {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(o) => o,
        }
    }
}

/// A view over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer, checking the version, IHL and total length.
    ///
    /// Headers with options (IHL > 5) are reported as [`ParseError::Malformed`]
    /// — the tester never generates them and the pipeline model has no PHV
    /// slots for them.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(ParseError::Malformed);
        }
        if b[0] & 0x0f != 5 {
            return Err(ParseError::Malformed);
        }
        let total = usize::from(u16::from_be_bytes([b[2], b[3]]));
        if total < HEADER_LEN || total > b.len() {
            return Err(ParseError::Truncated);
        }
        Ok(Packet { buffer })
    }

    /// Wraps a buffer without validation.  For writers (e.g. the frame
    /// builder) that are about to initialize every field; the caller must
    /// guarantee the buffer is at least [`HEADER_LEN`] bytes.
    pub fn new_unchecked(buffer: T) -> Self {
        debug_assert!(buffer.as_ref().len() >= HEADER_LEN);
        Packet { buffer }
    }

    /// Total length field.
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Time-to-live field.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Protocol field.
    pub fn protocol(&self) -> Protocol {
        self.buffer.as_ref()[9].into()
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Address {
        let b = self.buffer.as_ref();
        Ipv4Address([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Address {
        let b = self.buffer.as_ref();
        Ipv4Address([b[16], b[17], b[18], b[19]])
    }

    /// True when the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]) == 0
    }

    /// The L4 payload (bytes between the header and `total_len`).
    pub fn payload(&self) -> &[u8] {
        let total = usize::from(self.total_len());
        &self.buffer.as_ref()[HEADER_LEN..total]
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Writes the version (4) and IHL (5) byte; used when building from
    /// scratch.
    pub fn set_version_ihl(&mut self) {
        self.buffer.as_mut()[0] = 0x45;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the time-to-live field.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the protocol field.
    pub fn set_protocol(&mut self, p: Protocol) {
        self.buffer.as_mut()[9] = p.into();
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.0);
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.0);
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[10..12].copy_from_slice(&[0, 0]);
        let c = checksum::checksum(&self.buffer.as_ref()[..HEADER_LEN]);
        self.buffer.as_mut()[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable access to the L4 payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let total = usize::from(self.total_len());
        &mut self.buffer.as_mut()[HEADER_LEN..total]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 28];
        {
            let mut p = Packet { buffer: &mut b[..] };
            p.set_version_ihl();
            p.set_total_len(28);
            p.set_ident(0x1234);
            p.set_ttl(64);
            p.set_protocol(Protocol::Udp);
            p.set_src(Ipv4Address::new(10, 0, 0, 1));
            p.set_dst(Ipv4Address::new(10, 0, 0, 2));
            p.fill_checksum();
        }
        b
    }

    #[test]
    fn build_and_parse_round_trip() {
        let b = sample();
        let p = Packet::new_checked(&b[..]).unwrap();
        assert_eq!(p.total_len(), 28);
        assert_eq!(p.ident(), 0x1234);
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), Protocol::Udp);
        assert_eq!(p.src(), Ipv4Address::new(10, 0, 0, 1));
        assert_eq!(p.dst(), Ipv4Address::new(10, 0, 0, 2));
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 8);
    }

    #[test]
    fn corrupting_a_byte_breaks_checksum() {
        let mut b = sample();
        b[8] ^= 0xff; // flip the TTL
        let p = Packet::new_checked(&b[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version_and_options() {
        let mut b = sample();
        b[0] = 0x65; // version 6
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Malformed);
        b[0] = 0x46; // IHL 6 → options present
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn rejects_truncated_total_len() {
        let mut b = sample();
        b[2..4].copy_from_slice(&100u16.to_be_bytes()); // longer than buffer
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Truncated);
        b[2..4].copy_from_slice(&10u16.to_be_bytes()); // shorter than header
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn address_parsing_and_display() {
        let a: Ipv4Address = "192.168.1.200".parse().unwrap();
        assert_eq!(a, Ipv4Address::new(192, 168, 1, 200));
        assert_eq!(a.to_string(), "192.168.1.200");
        assert!("1.2.3".parse::<Ipv4Address>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Address>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Address>().is_err());
    }

    #[test]
    fn address_u32_round_trip() {
        let a = Ipv4Address::new(10, 1, 2, 3);
        assert_eq!(a.to_u32(), 0x0a010203);
        assert_eq!(Ipv4Address::from_u32(a.to_u32()), a);
    }
}
