//! Whole-frame construction — the switch-CPU side of template-based packet
//! generation.
//!
//! [`PacketBuilder`] assembles an Ethernet/IPv4/{TCP,UDP} frame with a
//! payload, fills every length and checksum field, and pads the buffer to a
//! requested frame length.  This is exactly the work §5.1 of the paper
//! assigns to the switch CPU: "switch CPU generates template packets and
//! performs the operations, which are hard for switching ASIC, on template
//! packets" — payload customization and header initialization.

use crate::ethernet::{self, EtherType, EthernetAddress};
use crate::ipv4::{self, Ipv4Address, Protocol};
use crate::tcp::TcpFlags;
use crate::wire::MIN_FRAME_LEN;
use crate::{tcp, udp};

/// Transport-layer selection for the builder.
#[derive(Debug, Clone)]
enum L4 {
    Udp { src_port: u16, dst_port: u16 },
    Tcp { src_port: u16, dst_port: u16, seq_no: u32, ack_no: u32, flags: TcpFlags, window: u16 },
    None,
}

/// Builder for complete test frames.
///
/// ```
/// use ht_packet::{PacketBuilder, EthernetAddress, Ipv4Address};
///
/// let frame = PacketBuilder::new()
///     .eth(EthernetAddress([2, 0, 0, 0, 0, 1]), EthernetAddress([2, 0, 0, 0, 0, 2]))
///     .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
///     .udp(1, 1)
///     .frame_len(64)
///     .build();
/// assert_eq!(frame.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    eth_src: EthernetAddress,
    eth_dst: EthernetAddress,
    ip: Option<(Ipv4Address, Ipv4Address)>,
    ttl: u8,
    ident: u16,
    l4: L4,
    payload: Vec<u8>,
    frame_len: Option<usize>,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    /// Starts an empty builder (broadcast-to-zero Ethernet, no IP layer).
    pub fn new() -> Self {
        PacketBuilder {
            eth_src: EthernetAddress::default(),
            eth_dst: EthernetAddress::default(),
            ip: None,
            ttl: 64,
            ident: 0,
            l4: L4::None,
            payload: Vec::new(),
            frame_len: None,
        }
    }

    /// Sets the Ethernet source and destination addresses.
    pub fn eth(mut self, src: EthernetAddress, dst: EthernetAddress) -> Self {
        self.eth_src = src;
        self.eth_dst = dst;
        self
    }

    /// Adds an IPv4 layer with the given source and destination addresses.
    pub fn ipv4(mut self, src: Ipv4Address, dst: Ipv4Address) -> Self {
        self.ip = Some((src, dst));
        self
    }

    /// Overrides the IPv4 TTL (default 64).
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Overrides the IPv4 identification field (default 0).
    pub fn ident(mut self, id: u16) -> Self {
        self.ident = id;
        self
    }

    /// Adds a UDP layer.
    pub fn udp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.l4 = L4::Udp { src_port, dst_port };
        self
    }

    /// Adds a TCP layer.
    pub fn tcp(
        mut self,
        src_port: u16,
        dst_port: u16,
        seq_no: u32,
        ack_no: u32,
        flags: TcpFlags,
    ) -> Self {
        self.l4 = L4::Tcp { src_port, dst_port, seq_no, ack_no, flags, window: 65535 };
        self
    }

    /// Sets the L4 payload bytes (the paper's `payload` field).
    pub fn payload(mut self, bytes: &[u8]) -> Self {
        self.payload = bytes.to_vec();
        self
    }

    /// Pads the finished frame to `len` bytes total (including the virtual
    /// 4-byte FCS region; see [`crate::wire`]).  The effective length is at
    /// least large enough for the headers, the payload and the FCS, and at
    /// least [`MIN_FRAME_LEN`] — requests below that are rounded up, mirroring
    /// what a real MAC does.
    pub fn frame_len(mut self, len: usize) -> Self {
        self.frame_len = Some(len);
        self
    }

    /// Minimal frame length that can carry the configured headers + payload:
    /// headers + payload + 4-byte FCS, floored at [`MIN_FRAME_LEN`].
    pub fn natural_len(&self) -> usize {
        let mut len = ethernet::HEADER_LEN;
        if self.ip.is_some() {
            len += ipv4::HEADER_LEN;
        }
        len += match self.l4 {
            L4::Udp { .. } => udp::HEADER_LEN,
            L4::Tcp { .. } => tcp::HEADER_LEN,
            L4::None => 0,
        };
        (len + self.payload.len() + 4).max(MIN_FRAME_LEN)
    }

    /// Assembles the frame: writes headers, payload, length fields and
    /// checksums, then zero-pads to the requested frame length.
    pub fn build(&self) -> Vec<u8> {
        let frame_len = self.frame_len.unwrap_or(0).max(self.natural_len());
        let mut buf = vec![0u8; frame_len];

        let mut eth = ethernet::Frame::new_checked(&mut buf[..]).expect("frame_len >= header");
        eth.set_src(self.eth_src);
        eth.set_dst(self.eth_dst);

        let Some((src_ip, dst_ip)) = self.ip else {
            eth.set_ethertype(EtherType::Other(0x88b5)); // local experimental
            return buf;
        };
        eth.set_ethertype(EtherType::Ipv4);

        let l4_len = match self.l4 {
            L4::Udp { .. } => udp::HEADER_LEN,
            L4::Tcp { .. } => tcp::HEADER_LEN,
            L4::None => 0,
        } + self.payload.len();
        let ip_total = ipv4::HEADER_LEN + l4_len;

        let ip_start = ethernet::HEADER_LEN;
        let ip_buf = &mut buf[ip_start..ip_start + ip_total];
        // Write IP header fields directly; the view requires a valid
        // version/IHL byte first.
        ip_buf[0] = 0x45;
        {
            let mut ip = ipv4::Packet::new_unchecked(ip_buf);
            ip.set_total_len(ip_total as u16);
            ip.set_ident(self.ident);
            ip.set_ttl(self.ttl);
            ip.set_src(src_ip);
            ip.set_dst(dst_ip);
            match self.l4 {
                L4::Udp { .. } => ip.set_protocol(Protocol::Udp),
                L4::Tcp { .. } => ip.set_protocol(Protocol::Tcp),
                L4::None => ip.set_protocol(Protocol::Other(0xfd)),
            }
            ip.fill_checksum();
        }

        let l4_start = ip_start + ipv4::HEADER_LEN;
        match self.l4 {
            L4::Udp { src_port, dst_port } => {
                let seg = &mut buf[l4_start..l4_start + l4_len];
                seg[udp::HEADER_LEN..].copy_from_slice(&self.payload);
                let mut u = udp::Packet::new_unchecked(seg);
                u.set_src_port(src_port);
                u.set_dst_port(dst_port);
                u.set_len_field(l4_len as u16);
                u.fill_checksum(src_ip.0, dst_ip.0);
            }
            L4::Tcp { src_port, dst_port, seq_no, ack_no, flags, window } => {
                let seg = &mut buf[l4_start..l4_start + l4_len];
                seg[tcp::HEADER_LEN..].copy_from_slice(&self.payload);
                let mut t = tcp::Packet::new_unchecked(seg);
                t.set_src_port(src_port);
                t.set_dst_port(dst_port);
                t.set_seq_no(seq_no);
                t.set_ack_no(ack_no);
                t.set_offset_and_flags(flags);
                t.set_window(window);
                t.fill_checksum(src_ip.0, dst_ip.0);
            }
            L4::None => {
                buf[l4_start..l4_start + self.payload.len()].copy_from_slice(&self.payload);
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::Frame;

    #[test]
    fn udp_frame_is_valid_and_padded() {
        let frame = PacketBuilder::new()
            .eth(EthernetAddress([2, 0, 0, 0, 0, 1]), EthernetAddress([2, 0, 0, 0, 0, 2]))
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(1234, 80)
            .payload(b"hello")
            .frame_len(128)
            .build();
        assert_eq!(frame.len(), 128);
        let eth = Frame::new_checked(&frame[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.protocol(), Protocol::Udp);
        assert_eq!(ip.total_len() as usize, ipv4::HEADER_LEN + udp::HEADER_LEN + 5);
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        assert_eq!(u.src_port(), 1234);
        assert_eq!(u.dst_port(), 80);
        assert_eq!(u.payload(), b"hello");
        assert!(u.verify_checksum(ip.src().0, ip.dst().0));
    }

    #[test]
    fn tcp_syn_frame_is_valid() {
        let frame = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 1, 0, 1), Ipv4Address::new(8, 8, 8, 8))
            .tcp(1024, 80, 1, 0, TcpFlags::SYN)
            .build();
        assert_eq!(frame.len(), MIN_FRAME_LEN);
        let eth = Frame::new_checked(&frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let t = tcp::Packet::new_checked(ip.payload()).unwrap();
        assert_eq!(t.flags(), TcpFlags::SYN);
        assert_eq!(t.seq_no(), 1);
        assert!(t.verify_checksum(ip.src().0, ip.dst().0));
    }

    #[test]
    fn short_frame_request_is_rounded_up() {
        let b = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 1)
            .frame_len(10);
        assert_eq!(b.build().len(), MIN_FRAME_LEN);
    }

    #[test]
    fn payload_forces_growth_beyond_requested_len() {
        let b = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 1)
            .payload(&[0xaa; 200])
            .frame_len(64);
        // 14 + 20 + 8 + 200 + 4 = 246 > 64.
        assert_eq!(b.build().len(), 246);
    }

    #[test]
    fn no_ip_layer_yields_experimental_ethertype() {
        let frame = PacketBuilder::new().frame_len(64).build();
        let eth = Frame::new_checked(&frame[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Other(0x88b5));
    }

    #[test]
    fn natural_len_accounts_for_all_layers() {
        let b = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .tcp(1, 2, 0, 0, TcpFlags::ACK)
            .payload(&[0u8; 100]);
        // 14 + 20 + 20 + 100 + 4 = 158.
        assert_eq!(b.natural_len(), 158);
    }
}
