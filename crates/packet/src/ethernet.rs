//! Ethernet II frames.

use crate::ParseError;

/// Minimum Ethernet frame size on the wire, excluding the 4-byte FCS
/// (64-byte frames in the paper's figures include the FCS; payload-visible
/// length is 60).
pub const HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EthernetAddress(pub [u8; 6]);

impl EthernetAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthernetAddress = EthernetAddress([0xff; 6]);

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True when the group bit (LSB of the first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// The address as a u64 (upper 16 bits zero) — the representation used
    /// in the simulator's packet header vector.
    pub fn to_u64(&self) -> u64 {
        let mut v = [0u8; 8];
        v[2..].copy_from_slice(&self.0);
        u64::from_be_bytes(v)
    }

    /// Reconstructs an address from the lower 48 bits of a u64.
    pub fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        EthernetAddress([b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

impl std::fmt::Display for EthernetAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// EtherType values the reproduction parses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(o) => o,
        }
    }
}

/// A view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wraps a buffer, checking it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> EthernetAddress {
        let b = self.buffer.as_ref();
        EthernetAddress([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> EthernetAddress {
        let b = self.buffer.as_ref();
        EthernetAddress([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The bytes after the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Sets the source MAC address.
    pub fn set_src(&mut self, addr: EthernetAddress) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Sets the EtherType field.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(ty).to_be_bytes());
    }

    /// Mutable access to the bytes after the Ethernet header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut f = vec![0u8; 18];
        f[0..6].copy_from_slice(&[1, 2, 3, 4, 5, 6]);
        f[6..12].copy_from_slice(&[7, 8, 9, 10, 11, 12]);
        f[12..14].copy_from_slice(&[0x08, 0x00]);
        f[14..].copy_from_slice(b"test");
        f
    }

    #[test]
    fn parses_fields() {
        let f = Frame::new_checked(sample()).unwrap();
        assert_eq!(f.dst(), EthernetAddress([1, 2, 3, 4, 5, 6]));
        assert_eq!(f.src(), EthernetAddress([7, 8, 9, 10, 11, 12]));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), b"test");
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(Frame::new_checked([0u8; 13]).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn setters_round_trip() {
        let mut f = Frame::new_checked(sample()).unwrap();
        let a = EthernetAddress([0xaa; 6]);
        f.set_dst(a);
        f.set_src(a);
        f.set_ethertype(EtherType::Other(0x86dd));
        f.payload_mut().copy_from_slice(b"abcd");
        assert_eq!(f.dst(), a);
        assert_eq!(f.src(), a);
        assert_eq!(f.ethertype(), EtherType::Other(0x86dd));
        assert_eq!(f.payload(), b"abcd");
    }

    #[test]
    fn address_u64_round_trip() {
        let a = EthernetAddress([0x02, 0x00, 0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(EthernetAddress::from_u64(a.to_u64()), a);
        assert_eq!(a.to_u64() >> 48, 0);
    }

    #[test]
    fn multicast_and_broadcast_flags() {
        assert!(EthernetAddress::BROADCAST.is_broadcast());
        assert!(EthernetAddress::BROADCAST.is_multicast());
        assert!(EthernetAddress([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!EthernetAddress([0x02, 0, 0, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn address_display() {
        let a = EthernetAddress([0x02, 0x00, 0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(a.to_string(), "02:00:de:ad:be:ef");
    }
}
