//! TCP headers (20-byte fixed header; the tester's stateless connections
//! never emit options).

use crate::{checksum, ParseError};

/// Length of the option-less TCP header.
pub const HEADER_LEN: usize = 20;

/// The TCP flag bits, in their wire positions within the low byte of the
/// flags/offset word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN+ACK, the server handshake reply the paper's queries filter on.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// PSH+ACK, used for request payloads in the web-testing application.
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);
    /// FIN+ACK, the connection-release reply.
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);

    /// True when every bit of `other` is set in `self`.
    pub fn contains(&self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

/// A view over a TCP segment.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer, checking the fixed header fits and the data offset is
    /// exactly 5 words (no options).
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if b[12] >> 4 != 5 {
            return Err(ParseError::Malformed);
        }
        Ok(Packet { buffer })
    }

    /// Wraps a buffer without validation.  For writers that are about to
    /// initialize every field; the caller must guarantee the buffer is at
    /// least [`HEADER_LEN`] bytes.
    pub fn new_unchecked(buffer: T) -> Self {
        debug_assert!(buffer.as_ref().len() >= HEADER_LEN);
        Packet { buffer }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq_no(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgment number.
    pub fn ack_no(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13] & 0x3f)
    }

    /// Window field.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// The segment payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Verifies the checksum given the pseudo-header addresses.  The whole
    /// buffer is taken as the segment.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        let b = self.buffer.as_ref();
        let acc = checksum::pseudo_header(src, dst, 6, b.len() as u16);
        checksum::finish(checksum::sum_words(acc, b)) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq_no(&mut self, v: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the acknowledgment number.
    pub fn set_ack_no(&mut self, v: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&v.to_be_bytes());
    }

    /// Writes the data offset (5 words) and flag bits.
    pub fn set_offset_and_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[12] = 5 << 4;
        self.buffer.as_mut()[13] = flags.0;
    }

    /// Sets the window field.
    pub fn set_window(&mut self, w: u16) {
        self.buffer.as_mut()[14..16].copy_from_slice(&w.to_be_bytes());
    }

    /// Recomputes and stores the checksum given the pseudo-header addresses.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4]) {
        self.buffer.as_mut()[16..18].copy_from_slice(&[0, 0]);
        let b = self.buffer.as_ref();
        let acc = checksum::pseudo_header(src, dst, 6, b.len() as u16);
        let c = checksum::finish(checksum::sum_words(acc, b));
        self.buffer.as_mut()[16..18].copy_from_slice(&c.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [10, 0, 0, 1];
    const DST: [u8; 4] = [10, 0, 0, 2];

    fn sample() -> Vec<u8> {
        let mut b = vec![0u8; 24];
        {
            let mut p = Packet { buffer: &mut b[..] };
            p.set_src_port(1024);
            p.set_dst_port(80);
            p.set_seq_no(0xdeadbeef);
            p.set_ack_no(0x01020304);
            p.set_offset_and_flags(TcpFlags::SYN);
            p.set_window(65535);
            p.fill_checksum(SRC, DST);
        }
        b
    }

    #[test]
    fn build_and_parse_round_trip() {
        let b = sample();
        let p = Packet::new_checked(&b[..]).unwrap();
        assert_eq!(p.src_port(), 1024);
        assert_eq!(p.dst_port(), 80);
        assert_eq!(p.seq_no(), 0xdeadbeef);
        assert_eq!(p.ack_no(), 0x01020304);
        assert_eq!(p.flags(), TcpFlags::SYN);
        assert_eq!(p.window(), 65535);
        assert!(p.verify_checksum(SRC, DST));
        assert_eq!(p.payload().len(), 4);
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let b = sample();
        let p = Packet::new_checked(&b[..]).unwrap();
        // Same bytes but different claimed source address must fail.
        assert!(!p.verify_checksum([10, 0, 0, 9], DST));
    }

    #[test]
    fn flag_composition() {
        assert_eq!(TcpFlags::SYN | TcpFlags::ACK, TcpFlags::SYN_ACK);
        assert_eq!(TcpFlags::PSH | TcpFlags::ACK, TcpFlags::PSH_ACK);
        assert_eq!(TcpFlags::FIN | TcpFlags::ACK, TcpFlags::FIN_ACK);
        assert!(TcpFlags::SYN_ACK.contains(TcpFlags::SYN));
        assert!(TcpFlags::SYN_ACK.contains(TcpFlags::ACK));
        assert!(!TcpFlags::SYN.contains(TcpFlags::ACK));
    }

    #[test]
    fn rejects_options() {
        let mut b = sample();
        b[12] = 6 << 4;
        assert_eq!(Packet::new_checked(&b[..]).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(Packet::new_checked([0u8; 19]).unwrap_err(), ParseError::Truncated);
    }
}
