//! Devices under test and measurement sinks for HyperTester experiments.
//!
//! The paper's testbed (Fig. 8) wires the tester switch to devices under
//! test and measurement endpoints.  This crate provides the simulated
//! counterparts:
//!
//! * [`sink::Sink`] — a measurement endpoint recording arrival timestamps,
//!   byte counts and selected header fields (the role of the capture side
//!   of a tester port).
//! * [`forwarder::Forwarder`] — a store-and-forward device with a
//!   configurable pipeline delay and per-port serialization (the generic
//!   DUT of the throughput and delay experiments).
//! * [`responder::TcpResponder`] — a stateless TCP/HTTP server emulating
//!   the web-testing peer of §5.4: SYN → SYN+ACK, request → data packets,
//!   FIN → FIN+ACK.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forwarder;
pub mod responder;
pub mod sink;

pub use forwarder::Forwarder;
pub use responder::TcpResponder;
pub use sink::Sink;
