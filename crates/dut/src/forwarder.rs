//! A store-and-forward device under test: fixed pipeline delay plus
//! per-port serialization at line rate.
//!
//! Used as the generic DUT for throughput testing (traffic in one port,
//! out another) and as the known-delay device of the Fig. 18 delay-testing
//! case study.

use ht_asic::mac::MacPort;
use ht_asic::sim::{Device, Outbox};
use ht_asic::time::SimTime;
use ht_asic::SimPacket;
use std::any::Any;
use std::collections::HashMap;

/// The forwarding device.
#[derive(Debug)]
pub struct Forwarder {
    name: String,
    /// Static forwarding map: ingress port → egress port.
    pub routes: HashMap<u16, u16>,
    /// Fixed processing (pipeline) delay applied to every packet.
    pub pipeline_delay: SimTime,
    /// Output MACs per egress port.
    pub macs: HashMap<u16, MacPort>,
    /// Frames forwarded.
    pub forwarded: u64,
    /// Frames dropped for lack of a route.
    pub dropped: u64,
}

impl Forwarder {
    /// Creates a forwarder with the given pipeline delay.
    pub fn new(name: &str, pipeline_delay: SimTime) -> Self {
        Forwarder {
            name: name.to_string(),
            routes: HashMap::new(),
            pipeline_delay,
            macs: HashMap::new(),
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Adds a unidirectional route with an output port at `speed_bps`.
    pub fn route(mut self, from: u16, to: u16, speed_bps: u64) -> Self {
        self.routes.insert(from, to);
        self.macs.entry(to).or_insert_with(|| MacPort::new(speed_bps));
        self
    }
}

impl Device for Forwarder {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
        let Some(&to) = self.routes.get(&port) else {
            self.dropped += 1;
            return;
        };
        let mac = self.macs.get_mut(&to).expect("route target has a MAC");
        let (_, end) = mac.transmit(pkt.len(), now + self.pipeline_delay);
        self.forwarded += 1;
        out.emit(to, pkt, end);
    }

    fn device_kind(&self) -> ht_asic::sim::DeviceKind {
        ht_asic::sim::DeviceKind::Host
    }

    fn lookahead(&self) -> SimTime {
        // Every forwarded frame leaves at `now + pipeline_delay` plus a
        // strictly positive serialization time, so the pipeline delay is
        // a safe emission floor.  (A zero-delay forwarder simply opts out
        // of windowing.)
        self.pipeline_delay
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_asic::phv::{fields, FieldTable};
    use ht_packet::wire::{gbps, wire_time_ps};

    fn pkt(len: u64) -> SimPacket {
        let t = FieldTable::new();
        let mut phv = t.new_phv();
        phv.set(&t, fields::PKT_LEN, len);
        SimPacket { phv, body: None, uid: 0 }
    }

    #[test]
    fn forwards_with_delay_and_serialization() {
        let mut f = Forwarder::new("dut", 600_000).route(0, 1, gbps(100));
        let mut out = Outbox::default();
        f.rx(0, pkt(64), 1_000_000, &mut out);
        assert_eq!(out.emits.len(), 1);
        let (to, _, at) = &out.emits[0];
        assert_eq!(*to, 1);
        assert_eq!(*at, 1_000_000 + 600_000 + wire_time_ps(64, gbps(100)));
        assert_eq!(f.forwarded, 1);
    }

    #[test]
    fn unrouted_port_drops() {
        let mut f = Forwarder::new("dut", 0).route(0, 1, gbps(10));
        let mut out = Outbox::default();
        f.rx(9, pkt(64), 0, &mut out);
        assert!(out.emits.is_empty());
        assert_eq!(f.dropped, 1);
    }

    #[test]
    fn back_to_back_queueing_on_output() {
        let mut f = Forwarder::new("dut", 0).route(0, 1, gbps(10));
        let mut out = Outbox::default();
        f.rx(0, pkt(1518), 0, &mut out);
        f.rx(0, pkt(1518), 0, &mut out);
        let t1 = out.emits[0].2;
        let t2 = out.emits[1].2;
        assert_eq!(t2 - t1, wire_time_ps(1518, gbps(10)));
    }
}
