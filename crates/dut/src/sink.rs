//! Measurement sink: counts frames/bytes and records arrival timestamps
//! and selected header fields per port.

use ht_asic::fxhash::FxHashMap;
use ht_asic::phv::FieldId;
use ht_asic::sim::{BatchItem, Device, Outbox};
use ht_asic::time::{to_secs_f64, SimTime};
use ht_asic::SimPacket;
use std::any::Any;

/// Per-port counters of a sink.
#[derive(Debug, Clone, Default)]
pub struct PortStats {
    /// Frames received.
    pub frames: u64,
    /// Frame bytes received.
    pub bytes: u64,
    /// First arrival time.
    pub first: Option<SimTime>,
    /// Last arrival time.
    pub last: Option<SimTime>,
}

impl PortStats {
    /// Layer-2 throughput over the observation window, in bits per second.
    pub fn l2_bps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(f), Some(l)) if l > f => self.bytes as f64 * 8.0 / to_secs_f64(l - f),
            _ => 0.0,
        }
    }

    /// Packet rate over the observation window, in packets per second.
    pub fn pps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(f), Some(l)) if l > f && self.frames > 1 => {
                // n frames span n−1 inter-arrival gaps.
                (self.frames - 1) as f64 / to_secs_f64(l - f)
            }
            _ => 0.0,
        }
    }
}

/// A sink device.
#[derive(Debug)]
pub struct Sink {
    name: String,
    /// Per-port statistics.  (Fx-hashed: the map is touched once per
    /// delivered packet, squarely on the hot path.)
    pub ports: FxHashMap<u16, PortStats>,
    /// When set, every arrival time is logged per port.
    pub log_arrivals: bool,
    /// Arrival logs (only filled when `log_arrivals`).
    pub arrivals: FxHashMap<u16, Vec<SimTime>>,
    /// Header fields sampled per packet (empty = none).
    pub capture_fields: Vec<FieldId>,
    /// Captured samples: `(port, time, field values)`.
    pub captured: Vec<(u16, SimTime, Vec<u64>)>,
}

impl Sink {
    /// Creates an empty sink.
    pub fn new(name: &str) -> Self {
        Sink {
            name: name.to_string(),
            ports: FxHashMap::default(),
            log_arrivals: false,
            arrivals: FxHashMap::default(),
            capture_fields: Vec::new(),
            captured: Vec::new(),
        }
    }

    /// Enables arrival-timestamp logging.
    pub fn logging_arrivals(mut self) -> Self {
        self.log_arrivals = true;
        self
    }

    /// Samples the given PHV fields of every packet.
    pub fn capturing(mut self, fields: Vec<FieldId>) -> Self {
        self.capture_fields = fields;
        self
    }

    /// Clears all statistics and logs — used to discard a warm-up window
    /// (e.g. the template-injection ramp) before measuring.
    pub fn reset(&mut self) {
        self.ports.clear();
        self.arrivals.clear();
        self.captured.clear();
    }

    /// Total frames across all ports.
    pub fn total_frames(&self) -> u64 {
        self.ports.values().map(|p| p.frames).sum()
    }

    /// Total bytes across all ports.
    pub fn total_bytes(&self) -> u64 {
        self.ports.values().map(|p| p.bytes).sum()
    }

    /// Inter-arrival deltas on one port, in (fractional) nanoseconds —
    /// the series the paper's rate-control metrics are computed over.
    pub fn inter_arrivals_ns(&self, port: u16) -> Vec<f64> {
        let Some(times) = self.arrivals.get(&port) else {
            return Vec::new();
        };
        times.windows(2).map(|w| (w[1] - w[0]) as f64 / 1000.0).collect()
    }
}

impl Device for Sink {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, _out: &mut Outbox) {
        let st = self.ports.entry(port).or_default();
        st.frames += 1;
        st.bytes += pkt.len() as u64;
        st.first.get_or_insert(now);
        st.last = Some(now);
        if self.log_arrivals {
            self.arrivals.entry(port).or_default().push(now);
        }
        if !self.capture_fields.is_empty() {
            let vals = self.capture_fields.iter().map(|&f| pkt.phv.get(f)).collect();
            self.captured.push((port, now, vals));
        }
    }

    fn rx_batch(&mut self, items: &mut Vec<BatchItem>, now: SimTime, out: &mut Outbox) {
        let _ = now;
        // A sink absorbs everything and emits nothing, so the per-item
        // checkpoint bookkeeping buys nothing: fold the whole batch into
        // the statistics directly.
        for item in items.drain(..) {
            match item {
                BatchItem::Deliver { port, pkt, at } => {
                    let st = self.ports.entry(port).or_default();
                    st.frames += 1;
                    st.bytes += pkt.len() as u64;
                    st.first.get_or_insert(at);
                    st.last = Some(at);
                    if self.log_arrivals {
                        self.arrivals.entry(port).or_default().push(at);
                    }
                    if !self.capture_fields.is_empty() {
                        let vals = self.capture_fields.iter().map(|&f| pkt.phv.get(f)).collect();
                        self.captured.push((port, at, vals));
                    }
                }
                BatchItem::Wake { token, at } => self.wake(token, at, out),
            }
        }
    }

    fn device_kind(&self) -> ht_asic::sim::DeviceKind {
        ht_asic::sim::DeviceKind::Sink
    }

    fn lookahead(&self) -> SimTime {
        // A sink only absorbs: it never emits or schedules wakes, so it
        // places no bound on how far the event window may extend.
        SimTime::MAX
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_asic::phv::{fields, FieldTable};
    use ht_asic::time::us;

    fn pkt(len: u64) -> SimPacket {
        let t = FieldTable::new();
        let mut phv = t.new_phv();
        phv.set(&t, fields::PKT_LEN, len);
        phv.set(&t, fields::TCP_DPORT, 80);
        SimPacket { phv, body: None, uid: 0 }
    }

    #[test]
    fn counts_and_throughput() {
        let mut s = Sink::new("s").logging_arrivals();
        let mut out = Outbox::default();
        for i in 0..11u64 {
            s.rx(0, pkt(64), i * us(1), &mut out);
        }
        let p = &s.ports[&0];
        assert_eq!(p.frames, 11);
        assert_eq!(p.bytes, 11 * 64);
        // 10 gaps of 1 µs → 1e6 pps.
        assert!((p.pps() - 1e6).abs() < 1.0);
        assert_eq!(s.inter_arrivals_ns(0).len(), 10);
        assert!((s.inter_arrivals_ns(0)[0] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn captures_selected_fields() {
        let mut s = Sink::new("s").capturing(vec![fields::TCP_DPORT]);
        let mut out = Outbox::default();
        s.rx(3, pkt(64), 42, &mut out);
        assert_eq!(s.captured, vec![(3, 42, vec![80])]);
    }

    #[test]
    fn empty_sink_rates_are_zero() {
        let s = Sink::new("s");
        assert_eq!(s.total_frames(), 0);
        assert!(s.inter_arrivals_ns(0).is_empty());
    }
}
