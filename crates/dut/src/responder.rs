//! A stateless TCP/HTTP responder — the server side of the web-testing
//! application (§5.4).
//!
//! Like HyperTester's own stateless connections, the responder derives
//! every reply purely from the received packet: SYN → SYN+ACK, a request
//! carrying payload → a burst of data segments, FIN → FIN+ACK.  It keeps
//! per-kind counters so tests can assert the handshake volume end-to-end.

use ht_asic::parser;
use ht_asic::phv::{fields, FieldTable};
use ht_asic::sim::{Device, Outbox};
use ht_asic::time::SimTime;
use ht_asic::SimPacket;
use ht_packet::tcp::TcpFlags;
use ht_packet::{Ipv4Address, PacketBuilder};
use std::any::Any;

/// Protocol counters of the responder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResponderStats {
    /// SYNs received (connections attempted).
    pub syns: u64,
    /// Requests (PSH+ACK with payload) received.
    pub requests: u64,
    /// Plain ACKs received.
    pub acks: u64,
    /// FINs received (connections released).
    pub fins: u64,
    /// Data segments sent.
    pub data_sent: u64,
    /// Non-TCP packets ignored.
    pub ignored: u64,
}

/// The responder device.
#[derive(Debug)]
pub struct TcpResponder {
    name: String,
    fields: FieldTable,
    /// Fixed service delay before each reply.
    pub service_delay: SimTime,
    /// Data segments sent per request (the "web page" size in packets —
    /// the paper's walkthrough assumes 5).
    pub data_packets: usize,
    /// Payload bytes per data segment.
    pub data_len: usize,
    /// Initial sequence number for SYN+ACK replies (stateless, so fixed).
    pub isn: u32,
    /// Counters.
    pub stats: ResponderStats,
    uid_next: u64,
}

impl TcpResponder {
    /// Creates a responder with a service delay.
    pub fn new(name: &str, service_delay: SimTime) -> Self {
        TcpResponder {
            name: name.to_string(),
            fields: FieldTable::new(),
            service_delay,
            data_packets: 5,
            data_len: 512,
            isn: 1000,
            stats: ResponderStats::default(),
            uid_next: 1,
        }
    }

    fn reply(
        &mut self,
        req: &SimPacket,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload_len: usize,
    ) -> SimPacket {
        let sip = Ipv4Address::from_u32(req.phv.get(fields::IPV4_DST) as u32);
        let dip = Ipv4Address::from_u32(req.phv.get(fields::IPV4_SRC) as u32);
        let sport = req.phv.get(fields::TCP_DPORT) as u16;
        let dport = req.phv.get(fields::TCP_SPORT) as u16;
        let payload = vec![0u8; payload_len];
        let bytes = PacketBuilder::new()
            .eth(
                ht_packet::EthernetAddress::from_u64(req.phv.get(fields::ETH_DST)),
                ht_packet::EthernetAddress::from_u64(req.phv.get(fields::ETH_SRC)),
            )
            .ipv4(sip, dip)
            .tcp(sport, dport, seq, ack, flags)
            .payload(&payload)
            .build();
        let phv = parser::parse(&self.fields, &bytes).expect("self-built frame parses");
        let uid = self.uid_next;
        self.uid_next += 1;
        SimPacket { phv, body: Some(std::sync::Arc::new(bytes)), uid }
    }
}

impl Device for TcpResponder {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
        if pkt.phv.get(fields::TCP_VALID) == 0 {
            self.stats.ignored += 1;
            return;
        }
        let flags = TcpFlags(pkt.phv.get(fields::TCP_FLAGS) as u8);
        let seq = pkt.phv.get(fields::TCP_SEQ) as u32;
        let ack = pkt.phv.get(fields::TCP_ACK) as u32;
        let at = now + self.service_delay;

        if flags.contains(TcpFlags::SYN) && !flags.contains(TcpFlags::ACK) {
            self.stats.syns += 1;
            let r = self.reply(&pkt, TcpFlags::SYN_ACK, self.isn, seq.wrapping_add(1), 0);
            out.emit(port, r, at);
        } else if flags.contains(TcpFlags::PSH) {
            // A request: serve the page as a burst of data segments.
            self.stats.requests += 1;
            let mut data_seq = ack;
            for i in 0..self.data_packets {
                let r = self.reply(
                    &pkt,
                    TcpFlags::PSH_ACK,
                    data_seq,
                    seq.wrapping_add(1),
                    self.data_len,
                );
                self.stats.data_sent += 1;
                data_seq = data_seq.wrapping_add(self.data_len as u32);
                // Space the burst by the service delay so segments stay
                // ordered on the wire.
                out.emit(port, r, at + i as u64 * self.service_delay.max(1));
            }
        } else if flags.contains(TcpFlags::FIN) {
            self.stats.fins += 1;
            let r = self.reply(&pkt, TcpFlags::FIN_ACK, ack, seq.wrapping_add(1), 0);
            out.emit(port, r, at);
        } else if flags.contains(TcpFlags::ACK) {
            self.stats.acks += 1;
        }
    }

    fn device_kind(&self) -> ht_asic::sim::DeviceKind {
        ht_asic::sim::DeviceKind::Host
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_pkt(flags: TcpFlags, seq: u32, ack: u32) -> SimPacket {
        let ft = FieldTable::new();
        let bytes = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 1, 0, 1), Ipv4Address::new(9, 9, 9, 9))
            .tcp(1024, 80, seq, ack, flags)
            .build();
        let phv = parser::parse(&ft, &bytes).unwrap();
        SimPacket { phv, body: None, uid: 0 }
    }

    #[test]
    fn syn_yields_syn_ack_with_mirrored_tuple() {
        let mut r = TcpResponder::new("srv", 1_000_000);
        let mut out = Outbox::default();
        r.rx(0, tcp_pkt(TcpFlags::SYN, 7, 0), 0, &mut out);
        assert_eq!(out.emits.len(), 1);
        let (_, reply, at) = &out.emits[0];
        assert_eq!(*at, 1_000_000);
        assert_eq!(reply.phv.get(fields::TCP_FLAGS), u64::from(TcpFlags::SYN_ACK.0));
        assert_eq!(reply.phv.get(fields::TCP_ACK), 8);
        assert_eq!(reply.phv.get(fields::TCP_SPORT), 80);
        assert_eq!(reply.phv.get(fields::TCP_DPORT), 1024);
        assert_eq!(reply.phv.get(fields::IPV4_DST), u64::from(0x01010001u32));
        assert_eq!(r.stats.syns, 1);
    }

    #[test]
    fn request_yields_data_burst() {
        let mut r = TcpResponder::new("srv", 1_000);
        r.data_packets = 5;
        let mut out = Outbox::default();
        r.rx(0, tcp_pkt(TcpFlags::PSH_ACK, 1, 1001), 0, &mut out);
        assert_eq!(out.emits.len(), 5);
        assert_eq!(r.stats.data_sent, 5);
        // Sequence numbers advance by the segment payload.
        let s0 = out.emits[0].1.phv.get(fields::TCP_SEQ);
        let s1 = out.emits[1].1.phv.get(fields::TCP_SEQ);
        assert_eq!(s1 - s0, r.data_len as u64);
    }

    #[test]
    fn fin_yields_fin_ack_and_ack_is_silent() {
        let mut r = TcpResponder::new("srv", 0);
        let mut out = Outbox::default();
        r.rx(0, tcp_pkt(TcpFlags::FIN, 9, 100), 0, &mut out);
        assert_eq!(out.emits.len(), 1);
        assert_eq!(out.emits[0].1.phv.get(fields::TCP_FLAGS), u64::from(TcpFlags::FIN_ACK.0));
        r.rx(0, tcp_pkt(TcpFlags::ACK, 10, 100), 0, &mut out);
        assert_eq!(out.emits.len(), 1, "plain ACK draws no reply");
        assert_eq!(r.stats.acks, 1);
        assert_eq!(r.stats.fins, 1);
    }

    #[test]
    fn non_tcp_is_ignored() {
        let ft = FieldTable::new();
        let bytes = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(2, 0, 0, 2))
            .udp(1, 1)
            .build();
        let phv = parser::parse(&ft, &bytes).unwrap();
        let mut r = TcpResponder::new("srv", 0);
        let mut out = Outbox::default();
        r.rx(0, SimPacket { phv, body: None, uid: 0 }, 0, &mut out);
        assert!(out.emits.is_empty());
        assert_eq!(r.stats.ignored, 1);
    }
}
