//! `BENCH.json` serialization, the markdown run ledger, and baseline
//! regression comparison.
//!
//! The JSON is hand-rolled (the workspace vendors no serde): every
//! experiment entry is emitted on its own line with a fixed field order,
//! so baselines diff cleanly and the comparison parser can stay a simple
//! line scanner.  Timing fields (`wall_ms`, `events_per_sec`) vary run to
//! run; the deterministic payload is fingerprinted by `digest`.

use crate::runner::JobResult;
use crate::Scale;

/// A complete suite run, ready to serialize.
#[derive(Debug)]
pub struct BenchReport {
    /// Scale the suite ran at.
    pub scale: Scale,
    /// Worker threads used.
    pub workers: usize,
    /// Event-queue implementation label (`"wheel"` / `"heap"`).
    pub queue: String,
    /// Whether PHV arena pooling was enabled.
    pub pooling: bool,
    /// Pipeline executor label (`"compiled"` / `"interp"`).
    pub exec: String,
    /// Whether to render the per-experiment profile counters into the
    /// JSON report (`--profile`).
    pub profile: bool,
    /// Whole-suite wall clock in milliseconds.
    pub wall_ms_total: f64,
    /// Per-experiment results, in suite order.
    pub results: Vec<JobResult>,
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut o = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o
}

/// Formats an `f64` compactly with enough precision for comparisons.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".into()
    }
}

impl BenchReport {
    /// Serializes the report; one experiment entry per line.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": 1,\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"queue\": \"{}\",\n", esc(&self.queue)));
        s.push_str(&format!("  \"pooling\": {},\n", self.pooling));
        s.push_str(&format!("  \"exec\": \"{}\",\n", esc(&self.exec)));
        s.push_str(&format!("  \"wall_ms_total\": {},\n", num(self.wall_ms_total)));
        s.push_str("  \"experiments\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let failed = r.output.checks.iter().filter(|c| !c.pass).count();
            let mut line = format!(
                "    {{\"name\":\"{}\",\"group\":\"{}\",\"ok\":{},\"wall_ms\":{},\
                 \"events\":{},\"events_per_sec\":{},\"peak_queue_depth\":{},\
                 \"arena_allocs\":{},\"arena_reuses\":{},\"shards\":{},\"checks\":{},\
                 \"checks_failed\":{},\"digest\":\"{:016x}\"",
                esc(&r.name),
                esc(&r.group),
                r.ok,
                num(r.wall_ms),
                r.events,
                num(r.events_per_sec),
                r.peak_queue_depth,
                r.arena_allocs,
                r.arena_reuses,
                r.shards,
                r.output.checks.len(),
                failed,
                r.digest,
            );
            if let Some(p) = &r.panicked {
                line.push_str(&format!(",\"panicked\":\"{}\"", esc(p)));
            }
            if self.profile {
                let p = &r.profile;
                let hist = p.batch_hist.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
                let kinds = ht_asic::sim::DeviceKind::ALL
                    .iter()
                    .map(|k| format!("\"{}\":{}", k.name(), p.by_kind[k.index()]))
                    .collect::<Vec<_>>()
                    .join(",");
                line.push_str(&format!(
                    ",\"profile\":{{\"ops_retired\":{},\"batch_hist\":[{hist}],\
                     \"vector_batches\":{},\"vector_lanes\":{},{kinds}}}",
                    p.ops_retired, p.vector_batches, p.vector_lanes,
                ));
            }
            for (k, v) in &r.output.extras {
                line.push_str(&format!(",\"{}\":{}", esc(k), v));
            }
            line.push('}');
            if i + 1 < self.results.len() {
                line.push(',');
            }
            s.push_str(&line);
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The markdown run ledger (the generated section of EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Suite: {} experiments at {} scale, {} workers, `{}` event queue, \
             arena pooling {} — total wall clock {:.1} s.\n\n",
            self.results.len(),
            self.scale.name(),
            self.workers,
            self.queue,
            if self.pooling { "on" } else { "off" },
            self.wall_ms_total / 1e3,
        ));
        s.push_str("| experiment | group | status | checks | wall ms | events | events/sec | peak queue |\n");
        s.push_str("|---|---|---|---|---|---|---|---|\n");
        for r in &self.results {
            let status = if r.ok {
                "ok"
            } else if r.panicked.is_some() {
                "panic"
            } else {
                "FAIL"
            };
            let failed = r.output.checks.iter().filter(|c| !c.pass).count();
            s.push_str(&format!(
                "| {} | {} | {} | {}/{} | {:.1} | {} | {:.2e} | {} |\n",
                r.name,
                r.group,
                status,
                r.output.checks.len() - failed,
                r.output.checks.len(),
                r.wall_ms,
                r.events,
                r.events_per_sec,
                r.peak_queue_depth,
            ));
        }
        for r in &self.results {
            if r.output.checks.iter().any(|c| !c.pass) || r.panicked.is_some() {
                s.push_str(&format!("\n### {} — failures\n\n", r.name));
                if let Some(p) = &r.panicked {
                    s.push_str(&format!("- panicked: {p}\n"));
                }
                for c in r.output.checks.iter().filter(|c| !c.pass) {
                    s.push_str(&format!("- `{}`: {}\n", c.name, c.detail));
                }
            }
        }
        s
    }
}

/// Pulls `"key": value` out of a single JSON line (string or bare value).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if let Some(q) = rest.strip_prefix('"') {
        q.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

/// One regression (or note) from a baseline comparison.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Whether this entry fails the run (vs an informational note).
    pub fatal: bool,
    /// Human-readable description.
    pub message: String,
}

/// Compares a fresh report against a committed `BENCH.json` baseline.
///
/// Fails an experiment when its events/sec drops more than
/// `threshold_pct` below the baseline, or when its deterministic result
/// digest differs from the baseline's (same scale ⇒ same seeds ⇒ same
/// payload — a digest change is behavioral drift, not noise).
/// Per-experiment `wall_ms` drift beyond the same threshold (in either
/// direction) is reported as a **warn-only** note: wall clock is too
/// machine-dependent to gate on, but a 2× swing is worth a look.
/// Scale/queue mismatches and missing experiments produce non-fatal notes
/// (the line-oriented parse tolerates hand-edited or older baselines).
pub fn compare_to_baseline(
    report: &BenchReport,
    baseline_json: &str,
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    if let Some(scale) = baseline_json.lines().find_map(|l| field(l, "scale")) {
        if scale != report.scale.name() {
            out.push(Regression {
                fatal: false,
                message: format!(
                    "baseline scale \"{}\" differs from run scale \"{}\"; skipping comparison",
                    scale,
                    report.scale.name()
                ),
            });
            return out;
        }
    }
    let mut seen_any = false;
    for line in baseline_json.lines() {
        let Some(name) = field(line, "name") else { continue };
        let Some(eps) = field(line, "events_per_sec").and_then(|v| v.parse::<f64>().ok()) else {
            continue;
        };
        seen_any = true;
        let Some(now) = report.results.iter().find(|r| r.name == name) else {
            out.push(Regression {
                fatal: false,
                message: format!("baseline experiment {name} missing from this run"),
            });
            continue;
        };
        if let Some(digest) = field(line, "digest") {
            let now_digest = format!("{:016x}", now.digest);
            if digest != now_digest {
                out.push(Regression {
                    fatal: true,
                    message: format!(
                        "{name}: result digest drifted from baseline ({digest} -> {now_digest}); \
                         deterministic output changed"
                    ),
                });
            }
        }
        if let Some(base_wall) = field(line, "wall_ms").and_then(|v| v.parse::<f64>().ok()) {
            if base_wall > 0.0 {
                let drift_pct = (now.wall_ms - base_wall) / base_wall * 100.0;
                if drift_pct.abs() > threshold_pct {
                    out.push(Regression {
                        fatal: false,
                        message: format!(
                            "{name}: wall_ms drifted {drift_pct:+.1}% ({base_wall:.1} -> {:.1} ms; \
                             informational only)",
                            now.wall_ms
                        ),
                    });
                }
            }
        }
        if eps <= 0.0 {
            continue; // nothing measurable in the baseline entry
        }
        let change_pct = (now.events_per_sec - eps) / eps * 100.0;
        if change_pct < -threshold_pct {
            out.push(Regression {
                fatal: true,
                message: format!(
                    "{name}: events/sec regressed {:.1}% ({:.3e} -> {:.3e}, threshold {threshold_pct}%)",
                    -change_pct, eps, now.events_per_sec
                ),
            });
        }
    }
    if !seen_any {
        out.push(Regression {
            fatal: false,
            message: "baseline has no comparable experiment entries".into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunOutput;

    fn result(name: &str, eps: f64) -> JobResult {
        JobResult {
            name: name.into(),
            group: "paper".into(),
            title: name.into(),
            ok: true,
            panicked: None,
            wall_ms: 10.0,
            events: 1000,
            events_per_sec: eps,
            peak_queue_depth: 4,
            arena_allocs: 1,
            arena_reuses: 9,
            shards: 0,
            digest: 0xabcd,
            output: RunOutput::default(),
            profile: Default::default(),
        }
    }

    fn report(eps: f64) -> BenchReport {
        BenchReport {
            scale: Scale::Smoke,
            workers: 2,
            queue: "wheel".into(),
            pooling: true,
            exec: "compiled".into(),
            profile: false,
            wall_ms_total: 10.0,
            results: vec![result("a", eps)],
        }
    }

    #[test]
    fn json_roundtrips_through_field_scanner() {
        let j = report(1234.5).to_json();
        let line = j.lines().find(|l| l.contains("\"name\":\"a\"")).unwrap();
        assert_eq!(field(line, "name"), Some("a"));
        assert_eq!(field(line, "events_per_sec"), Some("1234.500"));
        assert_eq!(field(&j, "scale"), Some("smoke"));
    }

    #[test]
    fn regression_detected_beyond_threshold() {
        let baseline = report(1000.0).to_json();
        let regs = compare_to_baseline(&report(700.0), &baseline, 20.0);
        assert!(regs.iter().any(|r| r.fatal), "{regs:?}");
        let regs = compare_to_baseline(&report(900.0), &baseline, 20.0);
        assert!(regs.iter().all(|r| !r.fatal), "{regs:?}");
    }

    #[test]
    fn digest_drift_is_fatal_when_scales_match() {
        let baseline = report(1000.0).to_json();
        let mut run = report(1000.0);
        run.results[0].digest = 0xbeef;
        let regs = compare_to_baseline(&run, &baseline, 20.0);
        assert!(regs.iter().any(|r| r.fatal && r.message.contains("digest drifted")), "{regs:?}");
    }

    #[test]
    fn wall_ms_drift_is_warn_only() {
        let baseline = report(1000.0).to_json();
        let mut run = report(1000.0);
        run.results[0].wall_ms = 100.0; // 10 -> 100 ms: way past 20%
        let regs = compare_to_baseline(&run, &baseline, 20.0);
        let drift: Vec<_> = regs.iter().filter(|r| r.message.contains("wall_ms drifted")).collect();
        assert_eq!(drift.len(), 1, "{regs:?}");
        assert!(!drift[0].fatal, "wall drift must not fail the run");
        // Within threshold: no note at all.
        let mut quiet = report(1000.0);
        quiet.results[0].wall_ms = 11.0;
        let regs = compare_to_baseline(&quiet, &baseline, 20.0);
        assert!(regs.iter().all(|r| !r.message.contains("wall_ms drifted")), "{regs:?}");
    }

    #[test]
    fn json_includes_shard_count() {
        let mut rep = report(1.0);
        rep.results[0].shards = 12;
        let j = rep.to_json();
        let line = j.lines().find(|l| l.contains("\"name\":\"a\"")).unwrap();
        assert_eq!(field(line, "shards"), Some("12"));
    }

    #[test]
    fn scale_mismatch_is_note_not_failure() {
        let mut base = report(1000.0);
        base.scale = Scale::Full;
        let regs = compare_to_baseline(&report(1.0), &base.to_json(), 20.0);
        assert_eq!(regs.len(), 1);
        assert!(!regs[0].fatal);
    }
}
