//! Command-line front end shared by `htctl bench` and the
//! `run_experiments` binary, plus the `run_single` wrapper used by the
//! thin per-experiment binaries.
//!
//! Exit-code contract (the same one `htctl lint --json` documents):
//! `0` success, `1` failures (checks, panics, regressions, IO), `2` usage
//! errors.

use crate::report::{compare_to_baseline, BenchReport};
use crate::runner::{run_job, run_suite};
use crate::{Experiment, Scale};
use std::time::Instant;

/// Parsed `bench` options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Worker threads (default: available parallelism).
    pub workers: usize,
    /// Simulation engine threads per world (default 1: serial loop).
    /// `N > 1` funds a shared pool of `N - 1` extra engine tokens that
    /// `SimThreads::Auto` worlds draw from, so experiment-level and
    /// engine-level parallelism share one budget.
    pub sim_threads: usize,
    /// Run scale.
    pub scale: Scale,
    /// Emit the JSON report on stdout (progress moves to stderr).
    pub json: bool,
    /// Write the JSON report to this path.
    pub out: Option<String>,
    /// Compare events/sec against this committed baseline.
    pub baseline: Option<String>,
    /// Regression threshold in percent for the baseline comparison.
    pub fail_threshold: f64,
    /// Write/refresh the markdown run ledger in this file.
    pub md: Option<String>,
    /// Only run experiments whose name contains this substring.
    pub filter: Option<String>,
    /// List experiment names and exit.
    pub list: bool,
    /// Pipeline executor for every experiment in the run.
    pub exec: ht_asic::ExecMode,
    /// Render per-experiment profile counters into the JSON report.
    pub profile: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            sim_threads: 1,
            scale: Scale::Full,
            json: false,
            out: None,
            baseline: None,
            fail_threshold: 20.0,
            md: None,
            filter: None,
            list: false,
            exec: ht_asic::ExecMode::default(),
            profile: false,
        }
    }
}

/// Usage text for the `bench` subcommand.
pub const BENCH_USAGE: &str = "usage: bench [--smoke] [--workers N] [--sim-threads N] [--json] \
     [--out FILE] [--baseline FILE] [--fail-threshold PCT] [--md FILE] [--filter SUBSTR] [--list] \
     [--exec interp|compiled|vector] [--profile]";

/// Parses `bench` arguments.  Unknown flags are usage errors.
pub fn parse_bench_args(args: &[String]) -> Result<BenchOpts, String> {
    let mut o = BenchOpts::default();
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next().cloned().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => o.scale = Scale::Smoke,
            "--json" => o.json = true,
            "--list" => o.list = true,
            "--workers" => {
                o.workers = value(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
                if o.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--sim-threads" => {
                o.sim_threads = value(&mut it, "--sim-threads")?
                    .parse()
                    .map_err(|_| "--sim-threads needs an integer".to_string())?;
                if o.sim_threads == 0 {
                    return Err("--sim-threads must be at least 1".into());
                }
            }
            "--out" => o.out = Some(value(&mut it, "--out")?),
            "--baseline" => o.baseline = Some(value(&mut it, "--baseline")?),
            "--fail-threshold" => {
                o.fail_threshold = value(&mut it, "--fail-threshold")?
                    .parse()
                    .map_err(|_| "--fail-threshold needs a number".to_string())?;
            }
            "--md" => o.md = Some(value(&mut it, "--md")?),
            "--filter" => o.filter = Some(value(&mut it, "--filter")?),
            "--profile" => o.profile = true,
            "--exec" => {
                let v = value(&mut it, "--exec")?;
                o.exec = ht_asic::ExecMode::parse(&v)
                    .ok_or(format!("--exec must be `interp`, `compiled` or `vector`, got `{v}`"))?;
            }
            other => return Err(format!("unknown bench flag: {other}")),
        }
    }
    Ok(o)
}

const MD_BEGIN: &str = "<!-- BEGIN GENERATED (htctl bench) -->";
const MD_END: &str = "<!-- END GENERATED (htctl bench) -->";

/// Splices the generated run ledger into `existing` between the
/// generated-section markers (appending the section if absent).
pub fn splice_markdown(existing: &str, ledger: &str) -> String {
    let section = format!("{MD_BEGIN}\n\n## Run ledger (generated)\n\n{ledger}\n{MD_END}");
    if let (Some(b), Some(e)) = (existing.find(MD_BEGIN), existing.find(MD_END)) {
        if b < e {
            let mut s = existing[..b].to_string();
            s.push_str(&section);
            s.push_str(&existing[e + MD_END.len()..]);
            return s;
        }
    }
    let mut s = existing.to_string();
    if !s.is_empty() && !s.ends_with('\n') {
        s.push('\n');
    }
    s.push('\n');
    s.push_str(&section);
    s.push('\n');
    s
}

/// Runs the full bench front end and returns the process exit code.
pub fn bench_cli(args: &[String], suite: Vec<Box<dyn Experiment>>) -> i32 {
    let opts = match parse_bench_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{BENCH_USAGE}");
            return 2;
        }
    };
    bench_main(&opts, suite)
}

/// Runs the suite under `opts` and returns the process exit code.
pub fn bench_main(opts: &BenchOpts, suite: Vec<Box<dyn Experiment>>) -> i32 {
    let suite: Vec<Box<dyn Experiment>> = match &opts.filter {
        Some(f) => suite.into_iter().filter(|e| e.name().contains(f.as_str())).collect(),
        None => suite,
    };
    if opts.list {
        println!("{:<24} {:<9} {:>6} {:>5}  title", "name", "group", "shards", "facts");
        for e in &suite {
            let shards = match e.shards(opts.scale).len() {
                0 => "-".to_string(),
                n => n.to_string(),
            };
            let facts = if e.analysis_facts() { "yes" } else { "-" };
            println!("{:<24} {:<9} {:>6} {:>5}  {}", e.name(), e.group(), shards, facts, e.title());
        }
        return 0;
    }
    if suite.is_empty() {
        eprintln!("error: no experiments match the filter");
        return 1;
    }

    // Fund the engine-token pool that `SimThreads::Auto` worlds draw from.
    ht_asic::parallel::budget::configure(opts.sim_threads.saturating_sub(1));
    // Every switch built via `ht_core::build` picks this up.
    ht_asic::exec::set_default_mode(opts.exec);

    // With --json on stdout, progress must not pollute the report.
    let progress_to_stderr = opts.json && opts.out.is_none();
    let start = Instant::now();
    let results = run_suite(&suite, opts.workers, opts.scale, |p| {
        let line = format!(
            "[{:>2}/{}] {:<24} {:>8.1} ms  {}",
            p.done,
            p.total,
            p.name,
            p.wall_ms,
            if p.ok { "ok" } else { "FAIL" }
        );
        if progress_to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    });
    let report = BenchReport {
        scale: opts.scale,
        workers: opts.workers,
        queue: "wheel".into(),
        pooling: ht_asic::arena::pooling(),
        exec: opts.exec.as_str().into(),
        profile: opts.profile,
        wall_ms_total: start.elapsed().as_secs_f64() * 1e3,
        results,
    };

    let json = report.to_json();
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing {path}: {e}");
            return 1;
        }
    }
    if opts.json && opts.out.is_none() {
        print!("{json}");
    }

    if let Some(path) = &opts.md {
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let spliced = splice_markdown(&existing, &report.to_markdown());
        if let Err(e) = std::fs::write(path, spliced) {
            eprintln!("error: writing {path}: {e}");
            return 1;
        }
    }

    let mut code = 0;
    for r in &report.results {
        if !r.ok {
            code = 1;
            if let Some(p) = &r.panicked {
                eprintln!("FAIL {}: panicked: {p}", r.name);
            }
            for c in r.output.checks.iter().filter(|c| !c.pass) {
                eprintln!("FAIL {}: {}: {}", r.name, c.name, c.detail);
            }
        }
    }

    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(base) => {
                for reg in compare_to_baseline(&report, &base, opts.fail_threshold) {
                    if reg.fatal {
                        eprintln!("REGRESSION: {}", reg.message);
                        code = 1;
                    } else {
                        eprintln!("note: {}", reg.message);
                    }
                }
            }
            Err(e) => {
                eprintln!("error: reading baseline {path}: {e}");
                code = 1;
            }
        }
    }

    if !opts.json {
        let passed = report.results.iter().filter(|r| r.ok).count();
        println!(
            "\n{passed}/{} experiments passed in {:.1} s ({} workers, {} scale)",
            report.results.len(),
            report.wall_ms_total / 1e3,
            report.workers,
            report.scale.name(),
        );
    }
    code
}

/// Runs one experiment at full scale on the current thread, printing its
/// output and check verdicts — the body of each thin per-experiment
/// binary.  Returns the process exit code.
pub fn run_single(exp: &dyn Experiment) -> i32 {
    let r = run_job(exp, Scale::Full);
    for line in &r.output.lines {
        println!("{line}");
    }
    println!();
    for c in &r.output.checks {
        println!("{} {}: {}", if c.pass { "PASS" } else { "FAIL" }, c.name, c.detail);
    }
    if let Some(p) = &r.panicked {
        eprintln!("panicked: {p}");
    }
    println!(
        "\n{} — {:.1} ms, {} events, {:.2e} events/sec, peak queue {}",
        if r.ok { "OK" } else { "FAILED" },
        r.wall_ms,
        r.events,
        r.events_per_sec,
        r.peak_queue_depth,
    );
    i32::from(!r.ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_flags() {
        let args: Vec<String> = [
            "--smoke",
            "--workers",
            "4",
            "--sim-threads",
            "2",
            "--json",
            "--fail-threshold",
            "15",
            "--exec",
            "interp",
            "--profile",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_bench_args(&args).unwrap();
        assert_eq!(o.scale, Scale::Smoke);
        assert_eq!(o.workers, 4);
        assert_eq!(o.sim_threads, 2);
        assert!(o.json);
        assert!((o.fail_threshold - 15.0).abs() < 1e-9);
        assert_eq!(o.exec, ht_asic::ExecMode::Interp);
        assert!(o.profile);
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(parse_bench_args(&["--bogus".to_string()]).is_err());
        assert!(parse_bench_args(&["--workers".to_string(), "zero".to_string()]).is_err());
        assert!(parse_bench_args(&["--sim-threads".to_string(), "0".to_string()]).is_err());
        assert!(parse_bench_args(&["--exec".to_string(), "jit".to_string()]).is_err());
    }

    #[test]
    fn markdown_splice_replaces_only_the_generated_section() {
        let doc = "# Title\n\nprose\n";
        let once = splice_markdown(doc, "ledger v1\n");
        assert!(once.contains("prose"));
        assert!(once.contains("ledger v1"));
        let twice = splice_markdown(&once, "ledger v2\n");
        assert!(twice.contains("ledger v2"));
        assert!(!twice.contains("ledger v1"));
        assert_eq!(twice.matches("Run ledger").count(), 1);
    }
}
