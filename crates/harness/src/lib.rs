//! The parallel experiment harness.
//!
//! The paper's evaluation is seventeen independent, seeded, deterministic
//! simulations — embarrassingly parallel across experiments even though
//! each simulation world is strictly single-threaded.  This crate turns
//! each table/figure regenerator into a typed [`Experiment`] job and runs
//! the whole suite on a work-stealing thread pool:
//!
//! * [`Experiment`] — the job interface: buffered output lines, named
//!   pass/fail [`Check`]s (replacing ad-hoc `assert!`s in binaries), and
//!   optional machine-readable extras.
//! * [`runner`] — the work-stealing scheduler with streamed per-job
//!   progress; results keep suite order regardless of worker count.
//! * [`report`] — `BENCH.json` serialization, a markdown run ledger, and
//!   events/sec regression comparison against a committed baseline.
//! * [`cli`] — the `htctl bench` command-line front end plus the
//!   `run_single` wrapper the thin per-experiment binaries use.
//!
//! Determinism contract: an experiment's `lines`, `checks`, and `extras`
//! must depend only on its inputs (simulated time, seeds), never on wall
//! clock or thread identity — the suite digest is byte-identical at
//! `--workers 1` and `--workers 8`.
//!
//! Heavy experiments can additionally split themselves into [`Shard`]s
//! (independent sub-jobs the scheduler balances across workers) with a
//! deterministic [`Experiment::merge`]; the contract extends to shards —
//! suite output and digests are identical whether an experiment ran
//! monolithically, sharded on one worker, or sharded across eight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod report;
pub mod runner;

/// How much work an experiment should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper-faithful parameters (the committed EXPERIMENTS.md ledger).
    Full,
    /// A reduced configuration for CI smoke runs: same code paths, smaller
    /// sweeps; checks that only hold at full scale are skipped.
    Smoke,
}

impl Scale {
    /// Lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Smoke => "smoke",
        }
    }
}

/// One named pass/fail assertion about an experiment's results — the
/// harness equivalent of the `assert!`s the standalone binaries used, but
/// collected instead of aborting so one failure doesn't hide the rest.
#[derive(Debug, Clone)]
pub struct Check {
    /// Short identifier, stable across runs.
    pub name: String,
    /// Whether the property held.
    pub pass: bool,
    /// Human-readable evidence (measured values).
    pub detail: String,
}

/// Everything an experiment produced.
#[derive(Debug, Clone, Default)]
pub struct RunOutput {
    /// Human-readable output (tables, commentary), one line per entry.
    /// Must be deterministic — the result digest is computed over these —
    /// except for indices listed in [`volatile_lines`](Self::volatile_lines).
    pub lines: Vec<String>,
    /// Indices into `lines` excluded from the result digest: wall-clock
    /// measurements (events/sec, speedups) that legitimately vary run to
    /// run while the simulated results stay identical.
    pub volatile_lines: Vec<usize>,
    /// Paper-shape assertions.
    pub checks: Vec<Check>,
    /// Extra machine-readable fields merged into the experiment's
    /// `BENCH.json` entry: `(key, raw JSON value)`.
    pub extras: Vec<(String, String)>,
}

impl RunOutput {
    /// Records a check.
    pub fn check(&mut self, name: &str, pass: bool, detail: impl Into<String>) {
        self.checks.push(Check { name: name.into(), pass, detail: detail.into() });
    }

    /// Whether every check passed.
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

/// A buffered output sink (the parallel-safe replacement for printing
/// straight to stdout from experiment code).
#[derive(Debug, Default)]
pub struct Out {
    lines: Vec<String>,
    volatile: bool,
    volatile_lines: Vec<usize>,
}

impl Out {
    /// An empty buffer.
    pub fn new() -> Self {
        Out::default()
    }

    /// While `on`, appended lines are marked volatile: still printed, but
    /// excluded from the result digest.  Use for wall-clock measurements
    /// embedded in otherwise-deterministic output.
    pub fn set_volatile(&mut self, on: bool) {
        self.volatile = on;
    }

    fn push_line(&mut self, line: String) {
        if self.volatile {
            self.volatile_lines.push(self.lines.len());
        }
        self.lines.push(line);
    }

    /// Appends one line (split on embedded newlines).
    pub fn say(&mut self, text: impl AsRef<str>) {
        for l in text.as_ref().split('\n') {
            self.push_line(l.to_string());
        }
    }

    /// Appends an empty line.
    pub fn blank(&mut self) {
        self.push_line(String::new());
    }

    /// Consumes the buffer.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }

    /// Consumes the buffer into `out`, carrying the volatile-line marks.
    pub fn flush_into(self, out: &mut RunOutput) {
        out.lines = self.lines;
        out.volatile_lines = self.volatile_lines;
    }
}

/// A right-aligned fixed-width table writing into an [`Out`] buffer
/// (the buffered successor of the old `TablePrinter`).
#[derive(Debug)]
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Starts a table: writes the header row and a separator into `out`.
    pub fn new(out: &mut Out, headers: &[&str], widths: &[usize]) -> Self {
        let t = Table { widths: widths.to_vec() };
        t.row(out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        let line: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        t.row(out, &line);
        t
    }

    /// Writes one row.
    pub fn row(&self, out: &mut Out, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:>w$}  ", w = w));
        }
        out.push_line(line.trim_end().to_string());
    }
}

/// One experiment job: a table/figure regenerator (or ablation) that the
/// runner can schedule on any worker thread.
///
/// Implementations are stateless handles (`Send + Sync`); all simulation
/// state is built inside [`run`](Experiment::run) on whichever worker
/// thread executes the job, so per-thread arenas and counters stay
/// coherent and results are independent of the worker count.
pub trait Experiment: Send + Sync {
    /// Stable identifier (the old binary name, e.g. `fig14_accelerator`).
    fn name(&self) -> &'static str;

    /// Report group: `"paper"` for tables/figures, `"ablation"`,
    /// `"hotpath"` for the engine A/B benchmarks.
    fn group(&self) -> &'static str {
        "paper"
    }

    /// One-line human title.
    fn title(&self) -> &'static str;

    /// Relative cost weight for scheduling — heavier jobs are dealt first
    /// so the longest job starts earliest (LPT order).
    fn weight(&self) -> u32 {
        1
    }

    /// Whether the experiment's compiled NTAPI tasks carry
    /// abstract-interpretation facts (a non-empty `analysis` section in
    /// their IR: field-range or timer-feasibility entries).  Shown as the
    /// `facts` column of `bench --list` so regressions in the
    /// `analysis-annotation` pass are easy to localize.
    fn analysis_facts(&self) -> bool {
        false
    }

    /// Splits the experiment into independently runnable [`Shard`]s.
    ///
    /// The default (empty) keeps the experiment monolithic: the runner
    /// calls [`run`](Experiment::run) as one job.  A non-empty vector
    /// makes the runner schedule each shard as its own unit of work and
    /// reassemble the experiment's output via [`merge`](Experiment::merge)
    /// once all shards finish — shard results are always passed to `merge`
    /// in `shards()` order, regardless of completion order.
    fn shards(&self, _scale: Scale) -> Vec<Box<dyn Shard>> {
        Vec::new()
    }

    /// Reassembles one [`RunOutput`] from the shard results, in
    /// [`shards`](Experiment::shards) order.
    ///
    /// Must be deterministic (it feeds the result digest).  Only called
    /// when `shards()` is non-empty; the default panics to catch sharded
    /// experiments that forget to implement it.
    fn merge(&self, _scale: Scale, _parts: Vec<RunOutput>) -> RunOutput {
        unreachable!("sharded experiment must implement merge()")
    }

    /// Runs the experiment at `scale` and returns its buffered results.
    ///
    /// Sharded experiments get this for free — the default runs every
    /// shard serially and merges, so `run_single` and the thin binaries
    /// produce byte-identical output to the sharded parallel path by
    /// construction.  Monolithic experiments must override it.
    fn run(&self, scale: Scale) -> RunOutput {
        let shards = self.shards(scale);
        assert!(!shards.is_empty(), "experiment must implement run() or shards()");
        let parts = shards.iter().map(|s| s.run(scale)).collect();
        self.merge(scale, parts)
    }
}

/// One independently schedulable piece of a sharded [`Experiment`].
///
/// Shards of one experiment must not share mutable state: each runs on
/// whichever worker thread picks it up, and only the [`RunOutput`]s meet
/// again (in order) inside [`Experiment::merge`].
pub trait Shard: Send + Sync {
    /// Human-readable shard label (progress display, e.g. `d16/500k`).
    fn label(&self) -> String;

    /// Relative cost weight for scheduling, like [`Experiment::weight`].
    fn weight(&self) -> u32 {
        1
    }

    /// Runs this shard's slice of the experiment.
    fn run(&self, scale: Scale) -> RunOutput;
}

/// FNV-1a 64-bit digest used for result fingerprints in `BENCH.json`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest of an experiment's deterministic payload (non-volatile lines +
/// check verdicts).
pub fn result_digest(out: &RunOutput) -> u64 {
    let mut buf = String::new();
    for (i, l) in out.lines.iter().enumerate() {
        if out.volatile_lines.contains(&i) {
            continue;
        }
        buf.push_str(l);
        buf.push('\n');
    }
    for c in &out.checks {
        buf.push('\n');
        buf.push_str(&c.name);
        buf.push(if c.pass { '+' } else { '-' });
    }
    fnv1a(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn table_buffers_rows() {
        let mut out = Out::new();
        let t = Table::new(&mut out, &["a", "bb"], &[3, 4]);
        t.row(&mut out, &["1".into(), "2".into()]);
        let lines = out.into_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains('1') && lines[2].contains('2'));
    }

    #[test]
    fn volatile_lines_do_not_affect_digest() {
        let mut a = Out::new();
        a.say("stable");
        a.set_volatile(true);
        a.say("1234.5 events/sec");
        a.set_volatile(false);
        let mut ra = RunOutput::default();
        a.flush_into(&mut ra);

        let mut b = Out::new();
        b.say("stable");
        b.set_volatile(true);
        b.say("9876.5 events/sec");
        b.set_volatile(false);
        let mut rb = RunOutput::default();
        b.flush_into(&mut rb);

        assert_eq!(ra.lines.len(), 2);
        assert_ne!(ra.lines, rb.lines);
        assert_eq!(result_digest(&ra), result_digest(&rb));
    }

    #[test]
    fn digest_covers_check_verdicts() {
        let mut a = RunOutput::default();
        a.check("x", true, "");
        let mut b = RunOutput::default();
        b.check("x", false, "");
        assert_ne!(result_digest(&a), result_digest(&b));
    }
}
