//! The work-stealing scheduler.
//!
//! All jobs are known up front, so scheduling is simple: jobs are dealt
//! round-robin into per-worker deques in descending weight order (an LPT
//! schedule — the heaviest jobs start first), each worker drains its own
//! deque from the front and steals from peers' backs when empty.  Workers
//! are plain scoped threads; per-job progress streams over a channel to
//! the caller's callback while the pool runs.
//!
//! Each job runs entirely on one worker thread, so the thread-local
//! simulation counters ([`ht_asic::sim::metrics`]) and allocation arenas
//! ([`ht_asic::arena`]) can be read as before/after deltas around the job
//! — that is where `BENCH.json`'s events/sec, peak queue depth, and
//! arena hit rates come from.

use crate::{result_digest, Experiment, RunOutput, Scale};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// The outcome of one experiment job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Experiment identifier.
    pub name: String,
    /// Report group.
    pub group: String,
    /// Human title.
    pub title: String,
    /// All checks passed and the job did not panic.
    pub ok: bool,
    /// Panic message, if the job panicked.
    pub panicked: Option<String>,
    /// Wall-clock job duration in milliseconds.
    pub wall_ms: f64,
    /// Simulation events processed by the job.
    pub events: u64,
    /// `events` divided by the wall-clock duration.
    pub events_per_sec: f64,
    /// Deepest event queue any world of the job reached.
    pub peak_queue_depth: u64,
    /// PHV buffers the job took from the allocator.
    pub arena_allocs: u64,
    /// PHV buffers the job recycled from the thread-local arena.
    pub arena_reuses: u64,
    /// FNV-1a digest of the deterministic payload (lines + check verdicts).
    pub digest: u64,
    /// The experiment's buffered output.
    pub output: RunOutput,
}

/// A progress event streamed while the suite runs.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Jobs finished so far (including this one).
    pub done: usize,
    /// Total jobs.
    pub total: usize,
    /// The finished job's name.
    pub name: String,
    /// Whether it passed.
    pub ok: bool,
    /// Its wall-clock duration in milliseconds.
    pub wall_ms: f64,
}

/// Executes one experiment on the current thread, measuring wall time and
/// the thread-local simulation counters around it.
pub fn run_job(exp: &dyn Experiment, scale: Scale) -> JobResult {
    use ht_asic::sim::metrics;

    let ev0 = metrics::thread_events();
    let _ = metrics::take_thread_peak_queue();
    let ar0 = ht_asic::arena::stats();
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| exp.run(scale)));
    let wall = start.elapsed();
    let events = metrics::thread_events() - ev0;
    let peak_queue_depth = metrics::take_thread_peak_queue();
    let ar = ht_asic::arena::stats();

    let (output, panicked) = match outcome {
        Ok(out) => (out, None),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            (RunOutput::default(), Some(msg))
        }
    };

    let wall_ms = wall.as_secs_f64() * 1e3;
    JobResult {
        name: exp.name().to_string(),
        group: exp.group().to_string(),
        title: exp.title().to_string(),
        ok: panicked.is_none() && output.all_passed(),
        panicked,
        wall_ms,
        events,
        events_per_sec: if wall_ms > 0.0 { events as f64 / (wall_ms / 1e3) } else { 0.0 },
        peak_queue_depth,
        arena_allocs: ar.allocs - ar0.allocs,
        arena_reuses: ar.reuses - ar0.reuses,
        digest: result_digest(&output),
        output,
    }
}

/// Runs `suite` on `workers` threads, invoking `on_progress` as each job
/// finishes.  Results come back in suite order regardless of scheduling.
pub fn run_suite(
    suite: &[Box<dyn Experiment>],
    workers: usize,
    scale: Scale,
    mut on_progress: impl FnMut(&Progress),
) -> Vec<JobResult> {
    let workers = workers.max(1);
    let total = suite.len();

    // LPT deal: heaviest first, round-robin across workers.
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(suite[i].weight()));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (pos, &job) in order.iter().enumerate() {
        queues[pos % workers].lock().unwrap().push_back(job);
    }

    let results: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let (tx, rx) = mpsc::channel::<Progress>();
    let done = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|s| {
        for me in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let results = &results;
            let done = &done;
            s.spawn(move || {
                loop {
                    // Own queue front first; then steal from peers' backs.
                    let job = queues[me].lock().unwrap().pop_front().or_else(|| {
                        (0..queues.len())
                            .filter(|&q| q != me)
                            .find_map(|q| queues[q].lock().unwrap().pop_back())
                    });
                    let Some(job) = job else { break };
                    let r = run_job(suite[job].as_ref(), scale);
                    let p = Progress {
                        done: done.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1,
                        total,
                        name: r.name.clone(),
                        ok: r.ok,
                        wall_ms: r.wall_ms,
                    };
                    *results[job].lock().unwrap() = Some(r);
                    let _ = tx.send(p);
                }
            });
        }
        drop(tx);
        for p in rx {
            on_progress(&p);
        }
    });

    results.into_iter().map(|m| m.into_inner().unwrap().expect("job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Out;

    struct Fib(&'static str, u64);

    impl Experiment for Fib {
        fn name(&self) -> &'static str {
            self.0
        }
        fn title(&self) -> &'static str {
            "fib"
        }
        fn run(&self, _scale: Scale) -> RunOutput {
            fn fib(n: u64) -> u64 {
                if n < 2 {
                    n
                } else {
                    fib(n - 1) + fib(n - 2)
                }
            }
            let mut out = Out::new();
            out.say(format!("fib({}) = {}", self.1, fib(self.1)));
            let mut r = RunOutput { lines: out.into_lines(), ..Default::default() };
            r.check("computed", true, "");
            r
        }
    }

    struct Panics;

    impl Experiment for Panics {
        fn name(&self) -> &'static str {
            "panics"
        }
        fn title(&self) -> &'static str {
            "always panics"
        }
        fn run(&self, _scale: Scale) -> RunOutput {
            panic!("boom {}", 42);
        }
    }

    fn suite() -> Vec<Box<dyn Experiment>> {
        vec![Box::new(Fib("fib_a", 18)), Box::new(Fib("fib_b", 10)), Box::new(Fib("fib_c", 14))]
    }

    #[test]
    fn results_keep_suite_order_across_worker_counts() {
        let one = run_suite(&suite(), 1, Scale::Full, |_| {});
        let eight = run_suite(&suite(), 8, Scale::Full, |_| {});
        let names: Vec<_> = one.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["fib_a", "fib_b", "fib_c"]);
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.output.lines, b.output.lines);
            assert!(a.ok);
        }
    }

    #[test]
    fn progress_streams_every_job() {
        let mut seen = Vec::new();
        let _ = run_suite(&suite(), 2, Scale::Full, |p| seen.push((p.done, p.name.clone())));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen.last().unwrap().0, 3);
    }

    #[test]
    fn panics_are_captured_not_fatal() {
        let suite: Vec<Box<dyn Experiment>> = vec![Box::new(Panics), Box::new(Fib("fib", 5))];
        let r = run_suite(&suite, 4, Scale::Full, |_| {});
        assert!(!r[0].ok);
        assert!(r[0].panicked.as_deref().unwrap().contains("boom"));
        assert!(r[1].ok);
    }
}
