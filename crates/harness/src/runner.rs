//! The work-stealing scheduler.
//!
//! All work is known up front, so scheduling is simple: units of work are
//! dealt round-robin into per-worker deques in descending weight order (an
//! LPT schedule — the heaviest work starts first), each worker drains its
//! own deque from the front and steals from peers' backs when empty.
//! Workers are plain scoped threads; per-experiment progress streams over
//! a channel to the caller's callback while the pool runs.
//!
//! A unit of work is either a whole monolithic experiment or one
//! [`Shard`] of a sharded experiment ([`Experiment::shards`]).  Shards of
//! one experiment can land on different workers; the last one to finish
//! reassembles the experiment via [`Experiment::merge`] with the shard
//! outputs in declaration order, so the merged result — and therefore the
//! suite output and digests — is identical at any worker count.
//!
//! Each unit runs entirely on one worker thread, so the thread-local
//! simulation counters ([`ht_asic::sim::metrics`]) and allocation arenas
//! ([`ht_asic::arena`]) can be read as before/after deltas around the unit
//! — that is where `BENCH.json`'s events/sec, peak queue depth, and
//! arena hit rates come from; sharded experiments report the sums (and
//! the per-shard maximum for queue depth).

use crate::{result_digest, Experiment, RunOutput, Scale, Shard};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// The outcome of one experiment job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Experiment identifier.
    pub name: String,
    /// Report group.
    pub group: String,
    /// Human title.
    pub title: String,
    /// All checks passed and the job did not panic.
    pub ok: bool,
    /// Panic message, if the job panicked.
    pub panicked: Option<String>,
    /// Wall-clock job duration in milliseconds (summed over shards).
    pub wall_ms: f64,
    /// Simulation events processed by the job.
    pub events: u64,
    /// `events` divided by the wall-clock duration.
    pub events_per_sec: f64,
    /// Deepest event queue any world of the job reached.
    pub peak_queue_depth: u64,
    /// PHV buffers the job took from the allocator.
    pub arena_allocs: u64,
    /// PHV buffers the job recycled from the thread-local arena.
    pub arena_reuses: u64,
    /// How many shards the experiment split into (0 = monolithic).
    pub shards: usize,
    /// FNV-1a digest of the deterministic payload (lines + check verdicts).
    pub digest: u64,
    /// Profile counter deltas around the job (ops retired by the compiled
    /// executor, batch-size histogram, events by device kind) — rendered
    /// into the JSON report under `--profile`.
    pub profile: ht_asic::sim::metrics::ProfileSnapshot,
    /// The experiment's buffered output.
    pub output: RunOutput,
}

/// A progress event streamed while the suite runs.
#[derive(Debug, Clone)]
pub struct Progress {
    /// Experiments finished so far (including this one).
    pub done: usize,
    /// Total experiments.
    pub total: usize,
    /// The finished experiment's name.
    pub name: String,
    /// Whether it passed.
    pub ok: bool,
    /// Its wall-clock duration in milliseconds (summed over shards).
    pub wall_ms: f64,
}

/// One measured execution of a closure: counters, wall clock, and either
/// the produced output or the captured panic.
struct Measured {
    panicked: Option<String>,
    output: Option<RunOutput>,
    wall_ms: f64,
    events: u64,
    peak_queue_depth: u64,
    arena_allocs: u64,
    arena_reuses: u64,
    profile: ht_asic::sim::metrics::ProfileSnapshot,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Runs `f` on the current thread, measuring wall time and the
/// thread-local simulation counters around it and capturing panics.
fn measure(f: impl FnOnce() -> RunOutput) -> Measured {
    use ht_asic::sim::metrics;

    let ev0 = metrics::thread_events();
    let _ = metrics::take_thread_peak_queue();
    let ar0 = ht_asic::arena::stats();
    let prof0 = metrics::profile_snapshot();
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(f));
    let wall = start.elapsed();
    let events = metrics::thread_events() - ev0;
    let peak_queue_depth = metrics::take_thread_peak_queue();
    let ar = ht_asic::arena::stats();
    let profile = metrics::profile_snapshot().delta_since(&prof0);

    let (output, panicked) = match outcome {
        Ok(out) => (Some(out), None),
        Err(payload) => (None, Some(panic_message(payload))),
    };
    Measured {
        panicked,
        output,
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        peak_queue_depth,
        arena_allocs: ar.allocs - ar0.allocs,
        arena_reuses: ar.reuses - ar0.reuses,
        profile,
    }
}

/// Assembles a [`JobResult`] from an experiment's aggregated measurement.
fn finish_job(exp: &dyn Experiment, shards: usize, m: Measured) -> JobResult {
    let mut output = m.output.unwrap_or_default();
    // Stamp the executor the run used: extras are reported, not digested,
    // so this cannot perturb cross-mode digest comparisons.
    output
        .extras
        .push(("exec_mode".into(), format!("\"{}\"", ht_asic::exec::default_mode().as_str())));
    JobResult {
        name: exp.name().to_string(),
        group: exp.group().to_string(),
        title: exp.title().to_string(),
        ok: m.panicked.is_none() && output.all_passed(),
        panicked: m.panicked,
        wall_ms: m.wall_ms,
        events: m.events,
        events_per_sec: if m.wall_ms > 0.0 { m.events as f64 / (m.wall_ms / 1e3) } else { 0.0 },
        peak_queue_depth: m.peak_queue_depth,
        arena_allocs: m.arena_allocs,
        arena_reuses: m.arena_reuses,
        shards,
        digest: result_digest(&output),
        profile: m.profile,
        output,
    }
}

/// Executes one experiment on the current thread (shards, if any, run
/// serially via the default [`Experiment::run`]).
pub fn run_job(exp: &dyn Experiment, scale: Scale) -> JobResult {
    let shards = exp.shards(scale).len();
    finish_job(exp, shards, measure(|| exp.run(scale)))
}

/// Combines the per-shard measurements of one experiment (in shard order)
/// into the experiment's [`JobResult`], running [`Experiment::merge`] on
/// the current thread.
fn merge_job(exp: &dyn Experiment, scale: Scale, parts: Vec<Measured>) -> JobResult {
    let shards = parts.len();
    let mut agg = Measured {
        panicked: None,
        output: None,
        wall_ms: 0.0,
        events: 0,
        peak_queue_depth: 0,
        arena_allocs: 0,
        arena_reuses: 0,
        profile: Default::default(),
    };
    let mut outputs = Vec::with_capacity(shards);
    for p in parts {
        agg.wall_ms += p.wall_ms;
        agg.events += p.events;
        agg.peak_queue_depth = agg.peak_queue_depth.max(p.peak_queue_depth);
        agg.arena_allocs += p.arena_allocs;
        agg.arena_reuses += p.arena_reuses;
        agg.profile.absorb(&p.profile);
        if agg.panicked.is_none() {
            if let Some(msg) = p.panicked {
                agg.panicked = Some(msg);
            }
        }
        if let Some(out) = p.output {
            outputs.push(out);
        }
    }
    if agg.panicked.is_none() {
        match catch_unwind(AssertUnwindSafe(|| exp.merge(scale, outputs))) {
            Ok(out) => agg.output = Some(out),
            Err(payload) => agg.panicked = Some(panic_message(payload)),
        }
    }
    finish_job(exp, shards, agg)
}

/// One schedulable unit: a monolithic experiment or a single shard.
struct Unit {
    exp: usize,
    shard: Option<usize>,
    weight: u32,
}

/// Collects the shard measurements of one sharded experiment until all of
/// them have arrived.
struct Pending {
    parts: Vec<Option<Measured>>,
    remaining: usize,
}

/// Runs `suite` on `workers` threads, invoking `on_progress` as each
/// experiment finishes.  Results come back in suite order regardless of
/// scheduling; sharded experiments produce byte-identical output at any
/// worker count (see the module docs).
pub fn run_suite(
    suite: &[Box<dyn Experiment>],
    workers: usize,
    scale: Scale,
    mut on_progress: impl FnMut(&Progress),
) -> Vec<JobResult> {
    let workers = workers.max(1);
    let total = suite.len();

    let shard_sets: Vec<Vec<Box<dyn Shard>>> = suite.iter().map(|e| e.shards(scale)).collect();
    let mut units: Vec<Unit> = Vec::new();
    for (i, (exp, shards)) in suite.iter().zip(&shard_sets).enumerate() {
        if shards.is_empty() {
            units.push(Unit { exp: i, shard: None, weight: exp.weight() });
        } else {
            for (j, s) in shards.iter().enumerate() {
                units.push(Unit { exp: i, shard: Some(j), weight: s.weight() });
            }
        }
    }
    let pending: Vec<Mutex<Pending>> = shard_sets
        .iter()
        .map(|s| {
            Mutex::new(Pending { parts: s.iter().map(|_| None).collect(), remaining: s.len() })
        })
        .collect();

    // LPT deal: heaviest first, round-robin across workers.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(units[u].weight));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (pos, &u) in order.iter().enumerate() {
        queues[pos % workers].lock().unwrap().push_back(u);
    }

    let results: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let (tx, rx) = mpsc::channel::<Progress>();
    let done = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|s| {
        for me in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let results = &results;
            let done = &done;
            let units = &units;
            let shard_sets = &shard_sets;
            let pending = &pending;
            s.spawn(move || {
                loop {
                    // Own queue front first; then steal from peers' backs.
                    let unit = queues[me].lock().unwrap().pop_front().or_else(|| {
                        (0..queues.len())
                            .filter(|&q| q != me)
                            .find_map(|q| queues[q].lock().unwrap().pop_back())
                    });
                    let Some(u) = unit else { break };
                    let Unit { exp, shard, .. } = units[u];
                    let r = match shard {
                        None => Some(run_job(suite[exp].as_ref(), scale)),
                        Some(j) => {
                            let m = measure(|| shard_sets[exp][j].run(scale));
                            let mut p = pending[exp].lock().unwrap();
                            p.parts[j] = Some(m);
                            p.remaining -= 1;
                            if p.remaining == 0 {
                                let parts: Vec<Measured> = p
                                    .parts
                                    .iter_mut()
                                    .map(|m| m.take().expect("shard ran"))
                                    .collect();
                                drop(p);
                                Some(merge_job(suite[exp].as_ref(), scale, parts))
                            } else {
                                None
                            }
                        }
                    };
                    let Some(r) = r else { continue };
                    let p = Progress {
                        done: done.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1,
                        total,
                        name: r.name.clone(),
                        ok: r.ok,
                        wall_ms: r.wall_ms,
                    };
                    *results[exp].lock().unwrap() = Some(r);
                    let _ = tx.send(p);
                }
            });
        }
        drop(tx);
        for p in rx {
            on_progress(&p);
        }
    });

    results.into_iter().map(|m| m.into_inner().unwrap().expect("job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Out;

    struct Fib(&'static str, u64);

    impl Experiment for Fib {
        fn name(&self) -> &'static str {
            self.0
        }
        fn title(&self) -> &'static str {
            "fib"
        }
        fn run(&self, _scale: Scale) -> RunOutput {
            fn fib(n: u64) -> u64 {
                if n < 2 {
                    n
                } else {
                    fib(n - 1) + fib(n - 2)
                }
            }
            let mut out = Out::new();
            out.say(format!("fib({}) = {}", self.1, fib(self.1)));
            let mut r = RunOutput { lines: out.into_lines(), ..Default::default() };
            r.check("computed", true, "");
            r
        }
    }

    struct Panics;

    impl Experiment for Panics {
        fn name(&self) -> &'static str {
            "panics"
        }
        fn title(&self) -> &'static str {
            "always panics"
        }
        fn run(&self, _scale: Scale) -> RunOutput {
            panic!("boom {}", 42);
        }
    }

    /// A sharded experiment: each shard squares one number, the merge
    /// emits one line per shard plus a sum line.
    struct Squares {
        inputs: Vec<u64>,
        panic_at: Option<usize>,
    }

    struct SquareShard {
        x: u64,
        panic: bool,
    }

    impl Shard for SquareShard {
        fn label(&self) -> String {
            format!("x={}", self.x)
        }
        fn weight(&self) -> u32 {
            self.x as u32
        }
        fn run(&self, _scale: Scale) -> RunOutput {
            assert!(!self.panic, "shard exploded");
            let mut r = RunOutput::default();
            r.lines.push(format!("{}^2 = {}", self.x, self.x * self.x));
            r.extras.push(("sq".into(), (self.x * self.x).to_string()));
            r
        }
    }

    impl Experiment for Squares {
        fn name(&self) -> &'static str {
            "squares"
        }
        fn title(&self) -> &'static str {
            "sharded squares"
        }
        fn shards(&self, _scale: Scale) -> Vec<Box<dyn Shard>> {
            self.inputs
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    Box::new(SquareShard { x, panic: self.panic_at == Some(i) }) as Box<dyn Shard>
                })
                .collect()
        }
        fn merge(&self, _scale: Scale, parts: Vec<RunOutput>) -> RunOutput {
            let mut r = RunOutput::default();
            let mut sum = 0u64;
            for p in parts {
                r.lines.extend(p.lines);
                sum += p.extras[0].1.parse::<u64>().unwrap();
            }
            r.lines.push(format!("sum = {sum}"));
            r.check("summed", true, "");
            r
        }
    }

    fn suite() -> Vec<Box<dyn Experiment>> {
        vec![Box::new(Fib("fib_a", 18)), Box::new(Fib("fib_b", 10)), Box::new(Fib("fib_c", 14))]
    }

    #[test]
    fn results_keep_suite_order_across_worker_counts() {
        let one = run_suite(&suite(), 1, Scale::Full, |_| {});
        let eight = run_suite(&suite(), 8, Scale::Full, |_| {});
        let names: Vec<_> = one.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["fib_a", "fib_b", "fib_c"]);
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.output.lines, b.output.lines);
            assert!(a.ok);
        }
    }

    #[test]
    fn progress_streams_every_job() {
        let mut seen = Vec::new();
        let _ = run_suite(&suite(), 2, Scale::Full, |p| seen.push((p.done, p.name.clone())));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen.last().unwrap().0, 3);
    }

    #[test]
    fn panics_are_captured_not_fatal() {
        let suite: Vec<Box<dyn Experiment>> = vec![Box::new(Panics), Box::new(Fib("fib", 5))];
        let r = run_suite(&suite, 4, Scale::Full, |_| {});
        assert!(!r[0].ok);
        assert!(r[0].panicked.as_deref().unwrap().contains("boom"));
        assert!(r[1].ok);
    }

    fn sharded_suite() -> Vec<Box<dyn Experiment>> {
        vec![
            Box::new(Fib("fib_a", 12)),
            Box::new(Squares { inputs: vec![3, 1, 4, 1, 5], panic_at: None }),
            Box::new(Fib("fib_b", 8)),
        ]
    }

    #[test]
    fn sharded_results_are_identical_across_worker_counts_and_run_single() {
        let one = run_suite(&sharded_suite(), 1, Scale::Full, |_| {});
        let eight = run_suite(&sharded_suite(), 8, Scale::Full, |_| {});
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.digest, b.digest, "{}", a.name);
            assert_eq!(a.output.lines, b.output.lines);
        }
        // Merge preserves shard declaration order, not completion order.
        let sq = &one[1];
        assert_eq!(sq.shards, 5);
        assert!(sq.ok);
        assert_eq!(sq.output.lines[0], "3^2 = 9");
        assert_eq!(sq.output.lines[4], "5^2 = 25");
        assert_eq!(sq.output.lines[5], "sum = 52");
        // The serial `run_job` path (run_single, thin binaries) matches too.
        let single = run_job(&Squares { inputs: vec![3, 1, 4, 1, 5], panic_at: None }, Scale::Full);
        assert_eq!(single.digest, sq.digest);
        assert_eq!(single.shards, 5);
    }

    #[test]
    fn sharded_progress_fires_once_per_experiment() {
        let mut seen = Vec::new();
        let _ = run_suite(&sharded_suite(), 3, Scale::Full, |p| seen.push(p.name.clone()));
        assert_eq!(seen.len(), 3, "one progress event per experiment: {seen:?}");
        assert_eq!(seen.iter().filter(|n| *n == "squares").count(), 1);
    }

    #[test]
    fn shard_panic_is_captured_and_skips_merge() {
        let suite: Vec<Box<dyn Experiment>> =
            vec![Box::new(Squares { inputs: vec![2, 7], panic_at: Some(1) })];
        let r = run_suite(&suite, 2, Scale::Full, |_| {});
        assert!(!r[0].ok);
        assert!(r[0].panicked.as_deref().unwrap().contains("shard exploded"));
        assert!(r[0].output.lines.is_empty(), "merge must not run after a shard panic");
    }

    #[test]
    fn monolithic_jobs_report_zero_shards() {
        let r = run_suite(&suite(), 1, Scale::Full, |_| {});
        assert!(r.iter().all(|j| j.shards == 0));
    }
}
