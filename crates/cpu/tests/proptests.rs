//! Property-based tests for the switch-CPU timing models.

use ht_asic::digest::{DigestId, DigestRecord};
use ht_cpu::{PullMode, SwitchCpu};
use proptest::prelude::*;

proptest! {
    /// Digest drain time is additive and goodput monotone in message size
    /// for a fixed message count.
    #[test]
    fn digest_goodput_monotone_in_size(fields_a in 1usize..16, extra in 1usize..16, n in 1usize..100) {
        let cpu = SwitchCpu::new();
        let rec = |fields: usize| -> Vec<DigestRecord> {
            (0..n).map(|i| DigestRecord { id: DigestId(0), values: vec![i as u64; fields], at: 0 }).collect()
        };
        let small = cpu.drain_records(rec(fields_a));
        let large = cpu.drain_records(rec(fields_a + extra));
        prop_assert!(large.elapsed > small.elapsed);
        prop_assert!(large.goodput_bps > small.goodput_bps,
                     "goodput {} !> {}", large.goodput_bps, small.goodput_bps);
    }

    /// Pull latency is linear in the counter count for both modes, and the
    /// batch mode wins beyond a small count.
    #[test]
    fn pull_latency_scaling(n in 64usize..4096) {
        let cpu = SwitchCpu::new();
        let mut sw = ht_asic::Switch::new("sw", 1);
        let reg = sw.regs.alloc("c", 64, 4096);
        let single = cpu.pull_counters(&sw, reg, n, PullMode::OneByOne);
        let batch = cpu.pull_counters(&sw, reg, n, PullMode::Batch);
        prop_assert_eq!(single.values.len(), n);
        prop_assert_eq!(single.elapsed, cpu.model.counter_read_single * n as u64);
        prop_assert_eq!(
            batch.elapsed,
            cpu.model.counter_batch_setup + cpu.model.counter_batch_per_counter * n as u64
        );
        prop_assert!(batch.elapsed < single.elapsed);
    }

    /// Injection schedules exactly one rx event per template, strictly
    /// spaced by the per-packet cost.
    #[test]
    fn injection_spacing(n in 1usize..50, start in 0u64..1_000_000) {
        let cpu = SwitchCpu::new();
        let mut world = ht_asic::World::builder().seed(1).build().unwrap();
        let sw = world.add_device(Box::new(ht_asic::Switch::new("sw", 1)));
        let ft = ht_asic::FieldTable::new();
        let templates: Vec<ht_asic::SimPacket> = (0..n)
            .map(|i| ht_asic::SimPacket { phv: ft.new_phv(), body: None, uid: i as u64 })
            .collect();
        let plan = cpu.inject_templates(&mut world, sw, templates, start);
        prop_assert_eq!(plan.times.len(), n);
        prop_assert_eq!(plan.times[0], start);
        for w in plan.times.windows(2) {
            prop_assert_eq!(w[1] - w[0], cpu.model.inject_per_packet);
        }
        prop_assert_eq!(plan.done_at, start + (n as u64 - 1) * cpu.model.inject_per_packet);
    }
}
