//! Test-statistic collection: the push and pull modes of §5.2.
//!
//! * **Push** — the data plane reports records via `generate_digest`; the
//!   CPU pays a fixed per-message cost plus a per-byte cost, which yields
//!   the goodput-vs-message-size curve of Fig. 16(a) (≈4.5 Mbps at 256-byte
//!   messages on the testbed's Pentium).
//! * **Pull** — the CPU reads data-plane counters through the control-plane
//!   API, either one at a time (an RPC per counter) or as a DMA batch;
//!   Fig. 16(b) shows the batch reading 65536 counters in ≈0.2 s while
//!   one-by-one reading is an order of magnitude slower.

use crate::CpuTimingModel;
use ht_asic::digest::DigestRecord;
use ht_asic::register::RegId;
use ht_asic::time::SimTime;
use ht_asic::Switch;

/// Result of draining the digest queue.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestDrain {
    /// The collected records.
    pub records: Vec<DigestRecord>,
    /// Total bytes of digest payload processed (8 bytes per field value).
    pub bytes: u64,
    /// Modeled CPU time spent processing the queue.
    pub elapsed: SimTime,
    /// Achieved goodput in bits per second (0 when nothing was drained).
    pub goodput_bps: f64,
}

/// Drains a digest record list through the CPU's processing model.
pub fn drain_digests(model: &CpuTimingModel, records: Vec<DigestRecord>) -> DigestDrain {
    let mut bytes = 0u64;
    let mut elapsed = 0u64;
    for r in &records {
        let size = r.values.len() as u64 * 8;
        bytes += size;
        elapsed += model.digest_per_msg + size * model.digest_per_byte;
    }
    let goodput_bps =
        if elapsed == 0 { 0.0 } else { bytes as f64 * 8.0 / ht_asic::time::to_secs_f64(elapsed) };
    DigestDrain { records, bytes, elapsed, goodput_bps }
}

/// Result of replaying a digest stream against the CPU's service rate —
/// the push mode under load, where the data plane can outrun the CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestTimeline {
    /// Records that fit the buffer, with their modeled completion times.
    pub completions: Vec<SimTime>,
    /// Records dropped because the buffer was full when they arrived.
    pub dropped: usize,
    /// Largest queue depth observed.
    pub max_backlog: usize,
    /// Time the CPU finished the last accepted record.
    pub done_at: SimTime,
}

/// Replays digest `records` (must be sorted by arrival time) through a
/// single-server queue: the CPU serves one message at a time at the model's
/// per-message + per-byte cost, buffering at most `buffer` records.
///
/// This exposes what Fig. 16(a)'s goodput ceiling means operationally:
/// when the data plane generates digests faster than the CPU drains them,
/// the buffer fills and records are lost — which is why the paper's cuckoo
/// engine reports only *evictions* (rare) rather than per-packet digests.
pub fn drain_timeline(
    model: &CpuTimingModel,
    records: &[DigestRecord],
    buffer: usize,
) -> DigestTimeline {
    assert!(buffer > 0, "buffer must hold at least one record");
    debug_assert!(records.windows(2).all(|w| w[0].at <= w[1].at), "records must be time-sorted");
    let mut completions = Vec::with_capacity(records.len());
    // Completion times of queued-or-in-service records, oldest first.
    let mut in_flight: std::collections::VecDeque<SimTime> = Default::default();
    let mut dropped = 0usize;
    let mut max_backlog = 0usize;
    let mut busy_until: SimTime = 0;
    for r in records {
        while let Some(&front) = in_flight.front() {
            if front <= r.at {
                in_flight.pop_front();
            } else {
                break;
            }
        }
        if in_flight.len() >= buffer {
            dropped += 1;
            continue;
        }
        let service = model.digest_per_msg + r.values.len() as u64 * 8 * model.digest_per_byte;
        busy_until = busy_until.max(r.at) + service;
        in_flight.push_back(busy_until);
        completions.push(busy_until);
        max_backlog = max_backlog.max(in_flight.len());
    }
    let done_at = completions.last().copied().unwrap_or(0);
    DigestTimeline { completions, dropped, max_backlog, done_at }
}

/// How counters are pulled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullMode {
    /// One control-plane RPC per counter (the paper's "w/o O").
    OneByOne,
    /// A single DMA batch (the paper's "w/ O").
    Batch,
}

/// Result of a counter pull.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PullResult {
    /// The counter values, in index order.
    pub values: Vec<u64>,
    /// Modeled elapsed control-plane time.
    pub elapsed: SimTime,
}

/// Reads the first `count` slots of register array `reg`.
pub fn pull_counters(
    model: &CpuTimingModel,
    switch: &Switch,
    reg: RegId,
    count: usize,
    mode: PullMode,
) -> PullResult {
    let arr = switch.regs.array(reg);
    let count = count.min(arr.depth());
    let values: Vec<u64> = (0..count).map(|i| arr.cp_read(i)).collect();
    let elapsed = match mode {
        PullMode::OneByOne => model.counter_read_single * count as u64,
        PullMode::Batch => {
            model.counter_batch_setup + model.counter_batch_per_counter * count as u64
        }
    };
    PullResult { values, elapsed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_asic::digest::DigestId;
    use ht_asic::time::{secs, to_secs_f64};

    fn records(n: usize, fields: usize) -> Vec<DigestRecord> {
        (0..n)
            .map(|i| DigestRecord { id: DigestId(0), values: vec![i as u64; fields], at: 0 })
            .collect()
    }

    #[test]
    fn digest_goodput_grows_with_message_size() {
        let model = CpuTimingModel::default();
        // 16-byte messages (2 fields) vs 256-byte messages (32 fields).
        let small = drain_digests(&model, records(1000, 2));
        let large = drain_digests(&model, records(1000, 32));
        assert!(
            large.goodput_bps > small.goodput_bps * 5.0,
            "small {} large {}",
            small.goodput_bps,
            large.goodput_bps
        );
        // Fig. 16a: ≈4.5 Mbps at 256-byte messages.
        assert!(
            (large.goodput_bps / 1e6 - 4.5).abs() < 0.3,
            "goodput {} Mbps",
            large.goodput_bps / 1e6
        );
    }

    #[test]
    fn empty_drain_is_zero() {
        let d = drain_digests(&CpuTimingModel::default(), Vec::new());
        assert_eq!(d.elapsed, 0);
        assert_eq!(d.goodput_bps, 0.0);
        assert!(d.records.is_empty());
    }

    #[test]
    fn batch_pull_of_64k_counters_takes_point_two_seconds() {
        let model = CpuTimingModel::default();
        let mut sw = Switch::new("sw", 1);
        let reg = sw.regs.alloc("ctrs", 32, 65536);
        for i in 0..65536 {
            sw.regs.array_mut(reg).cp_write(i, i as u64);
        }
        let batch = pull_counters(&model, &sw, reg, 65536, PullMode::Batch);
        let single = pull_counters(&model, &sw, reg, 65536, PullMode::OneByOne);
        // Fig. 16b: 65536 counters within ~0.2 s batched.
        let batch_s = to_secs_f64(batch.elapsed);
        assert!((batch_s - 0.2).abs() < 0.02, "batch took {batch_s} s");
        // One-by-one is an order of magnitude slower.
        assert!(single.elapsed > batch.elapsed * 8);
        // Values are faithful.
        assert_eq!(batch.values.len(), 65536);
        assert_eq!(batch.values[1234], 1234);
    }

    #[test]
    fn pull_clamps_to_register_depth() {
        let model = CpuTimingModel::default();
        let mut sw = Switch::new("sw", 1);
        let reg = sw.regs.alloc("small", 32, 8);
        let r = pull_counters(&model, &sw, reg, 100, PullMode::Batch);
        assert_eq!(r.values.len(), 8);
        assert!(r.elapsed < secs(1));
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use ht_asic::digest::DigestId;
    use ht_asic::time::{ms, us};

    fn records(n: usize, spacing: SimTime, fields: usize) -> Vec<DigestRecord> {
        (0..n)
            .map(|i| DigestRecord {
                id: DigestId(0),
                values: vec![0; fields],
                at: i as u64 * spacing,
            })
            .collect()
    }

    #[test]
    fn slow_arrivals_complete_without_queueing() {
        let model = CpuTimingModel::default();
        // Service of a 2-field record ≈ 400 µs + 16 B · 215 ns ≈ 403 µs;
        // arrivals every 1 ms never queue.
        let t = drain_timeline(&model, &records(10, ms(1), 2), 16);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.max_backlog, 1);
        for (i, &c) in t.completions.iter().enumerate() {
            let service = model.digest_per_msg + 16 * model.digest_per_byte;
            assert_eq!(c, i as u64 * ms(1) + service);
        }
    }

    #[test]
    fn overload_fills_buffer_and_drops() {
        let model = CpuTimingModel::default();
        // Arrivals every 10 µs against a ~403 µs service time: the 8-slot
        // buffer fills almost immediately and most records are lost.
        let t = drain_timeline(&model, &records(1_000, us(10), 2), 8);
        assert!(t.dropped > 900, "dropped {}", t.dropped);
        assert_eq!(t.max_backlog, 8);
        // Accepted records complete back-to-back at the service rate.
        let service = model.digest_per_msg + 16 * model.digest_per_byte;
        for w in t.completions.windows(2) {
            assert_eq!(w[1] - w[0], service);
        }
    }

    #[test]
    fn burst_then_idle_drains_fully() {
        let model = CpuTimingModel::default();
        // A burst of 5 at t=0 fits an 8-slot buffer and drains serially.
        let t = drain_timeline(&model, &records(5, 0, 2), 8);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.max_backlog, 5);
        let service = model.digest_per_msg + 16 * model.digest_per_byte;
        assert_eq!(t.done_at, 5 * service);
    }

    #[test]
    #[should_panic(expected = "buffer must hold")]
    fn zero_buffer_rejected() {
        drain_timeline(&CpuTimingModel::default(), &[], 0);
    }
}
