//! The switch CPU: HyperTester's control plane.
//!
//! P4 switches pair the high-throughput/low-programmability ASIC with a
//! low-throughput/high-programmability CPU connected over PCIe (§2.1).  The
//! paper's key idea is to *co-design* the two: the CPU crafts template
//! packets and handles whatever the ASIC cannot (payloads, header
//! initialization, slow-path analysis), while the ASIC amplifies.
//!
//! This crate models the CPU side:
//!
//! * [`SwitchCpu::inject_templates`] — template injection over PCIe.
//! * [`SwitchCpu::drain_digests`] — the *push mode* of test-statistic
//!   collection (`generate_digest`), with the goodput model of Fig. 16(a).
//! * [`SwitchCpu::pull_counters`] — the *pull mode*, one-by-one or batched,
//!   with the latency model of Fig. 16(b).
//!
//! Timing constants are calibrated to the paper's measurements on the
//! testbed's Intel Pentium 4-core 1.60 GHz switch CPU; see each constant's
//! doc comment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod inject;

pub use collect::{drain_timeline, DigestDrain, DigestTimeline, PullMode, PullResult};
pub use inject::InjectionPlan;

use ht_asic::digest::DigestRecord;
use ht_asic::register::RegId;
use ht_asic::time::SimTime;
use ht_asic::{DeviceId, SimPacket, Switch, World};

/// Timing model of the switch CPU's control-plane paths.
#[derive(Debug, Clone, Copy)]
pub struct CpuTimingModel {
    /// Fixed driver/interrupt cost per digest message.
    ///
    /// Calibrated with [`Self::digest_per_byte`] so the digest goodput
    /// reaches ≈4.5 Mbps at 256-byte messages and grows with message size
    /// (Fig. 16a).
    pub digest_per_msg: SimTime,
    /// Per-byte processing cost of a digest message.
    pub digest_per_byte: SimTime,
    /// Latency of one non-batched register read over the control-plane API.
    pub counter_read_single: SimTime,
    /// Fixed setup cost of a batched (DMA) counter read.
    pub counter_batch_setup: SimTime,
    /// Per-counter cost within a batch.
    ///
    /// Calibrated so 65536 counters pull in ≈0.2 s (Fig. 16b).
    pub counter_batch_per_counter: SimTime,
    /// Per-packet cost of injecting a template over PCIe.
    pub inject_per_packet: SimTime,
}

impl Default for CpuTimingModel {
    fn default() -> Self {
        CpuTimingModel {
            digest_per_msg: ht_asic::time::us(400),
            digest_per_byte: 215_000, // 215 ns/B
            counter_read_single: ht_asic::time::us(30),
            counter_batch_setup: ht_asic::time::us(200),
            counter_batch_per_counter: 3_050_000, // 3.05 µs
            inject_per_packet: ht_asic::time::us(10),
        }
    }
}

/// The switch CPU.
#[derive(Debug, Clone, Default)]
pub struct SwitchCpu {
    /// Timing model used for all control-plane operations.
    pub model: CpuTimingModel,
}

impl SwitchCpu {
    /// A CPU with the default (paper-calibrated) timing model.
    pub fn new() -> Self {
        SwitchCpu { model: CpuTimingModel::default() }
    }

    /// Schedules template packets into a switch's PCIe port, spaced by the
    /// injection cost, starting at `start`.  Returns the injection plan
    /// (per-packet times and the completion time).
    pub fn inject_templates(
        &self,
        world: &mut World,
        switch: DeviceId,
        templates: Vec<SimPacket>,
        start: SimTime,
    ) -> InjectionPlan {
        inject::inject_templates(&self.model, world, switch, templates, start)
    }

    /// Drains all queued digests from a switch, modeling the per-message
    /// processing time (Fig. 16a).
    pub fn drain_digests(&self, switch: &mut Switch) -> DigestDrain {
        collect::drain_digests(&self.model, std::mem::take(&mut switch.digests))
    }

    /// Models draining an explicit record list (for unit benchmarks that
    /// synthesize digests without a switch).
    pub fn drain_records(&self, records: Vec<DigestRecord>) -> DigestDrain {
        collect::drain_digests(&self.model, records)
    }

    /// Reads `count` counters from a register array, returning the values
    /// and the modeled elapsed control-plane time (Fig. 16b).
    pub fn pull_counters(
        &self,
        switch: &Switch,
        reg: RegId,
        count: usize,
        mode: PullMode,
    ) -> PullResult {
        collect::pull_counters(&self.model, switch, reg, count, mode)
    }
}
