//! Template injection over PCIe.
//!
//! §5.1: "switch CPU generates a series of template packets" which the ASIC
//! then accelerates.  Injection is a startup-phase activity: templates are
//! few (bounded by the accelerator capacity, 89 at 64 B) and each costs one
//! PCIe doorbell + DMA, modeled as a fixed per-packet delay.

use crate::CpuTimingModel;
use ht_asic::switch::CPU_PORT;
use ht_asic::time::SimTime;
use ht_asic::{DeviceId, SimPacket, World};

/// The result of scheduling template injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Injection time of each template, in order.
    pub times: Vec<SimTime>,
    /// Time the last template enters the ASIC.
    pub done_at: SimTime,
}

/// Schedules `templates` into `switch`'s PCIe port starting at `start`,
/// spacing them by the model's per-packet injection cost.
pub fn inject_templates(
    model: &CpuTimingModel,
    world: &mut World,
    switch: DeviceId,
    templates: Vec<SimPacket>,
    start: SimTime,
) -> InjectionPlan {
    let mut times = Vec::with_capacity(templates.len());
    let mut t = start;
    for pkt in templates {
        world.schedule_rx(switch, CPU_PORT, pkt, t);
        times.push(t);
        t += model.inject_per_packet;
    }
    let done_at = times.last().copied().unwrap_or(start);
    InjectionPlan { times, done_at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_asic::{FieldTable, Switch};

    fn blank(n: usize) -> Vec<SimPacket> {
        let t = FieldTable::new();
        (0..n).map(|i| SimPacket { phv: t.new_phv(), body: None, uid: i as u64 }).collect()
    }

    #[test]
    fn templates_are_spaced_by_injection_cost() {
        let model = CpuTimingModel::default();
        let mut w = World::builder().seed(1).build().unwrap();
        let sw = w.add_device(Box::new(Switch::new("sw", 1)));
        let plan = inject_templates(&model, &mut w, sw, blank(3), 1_000);
        assert_eq!(plan.times.len(), 3);
        assert_eq!(plan.times[0], 1_000);
        assert_eq!(plan.times[1] - plan.times[0], model.inject_per_packet);
        assert_eq!(plan.done_at, plan.times[2]);
    }

    #[test]
    fn empty_injection_completes_immediately() {
        let model = CpuTimingModel::default();
        let mut w = World::builder().seed(1).build().unwrap();
        let sw = w.add_device(Box::new(Switch::new("sw", 1)));
        let plan = inject_templates(&model, &mut w, sw, Vec::new(), 5_000);
        assert!(plan.times.is_empty());
        assert_eq!(plan.done_at, 5_000);
    }
}
