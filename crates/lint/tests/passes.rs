//! One known-bad fixture per lint pass, each asserting the expected
//! diagnostic, plus a clean fixture showing the pass stays silent on a
//! valid program.

use ht_asic::action::{ActionSet, IndexSource, PrimitiveOp};
use ht_asic::parser::{ParseGraph, ParseState};
use ht_asic::phv::fields;
use ht_asic::register::{Cmp, CondExpr, SaluCond, SaluOperand, SaluProgram, SaluUpdate};
use ht_asic::switch::Switch;
use ht_asic::table::{Gateway, MatchKey, MatchKind, Table};
use ht_asic::tm::McastMember;
use ht_lint::{
    analyze_switch, check_dead_field_edits, check_gateways, check_parse_graph, check_phv_liveness,
    check_replication, check_salu_discipline, check_salu_range, check_stage_resources,
    check_unreachable_actions, lint_switch, proven_nowrap_regs, Severity,
};

/// A minimal valid program: one forwarding table, one port.
fn clean_switch() -> Switch {
    let mut sw = Switch::new("sw", 1);
    sw.add_port(0, 100_000_000_000);
    let t = Table::new(
        "fwd",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new("to0", vec![PrimitiveOp::SetEgressPort(0)]),
    );
    sw.ingress.push_table(t);
    sw
}

fn salu_on(sw: &mut Switch, name: &str) -> PrimitiveOp {
    let reg = sw.regs.alloc(name, 32, 1);
    PrimitiveOp::Salu {
        reg,
        index: IndexSource::Const(0),
        program: SaluProgram::fetch_add(fields::TCP_WINDOW),
    }
}

// --- pass 1: stage resource fitting ---------------------------------------

#[test]
fn overfull_stage_is_rejected() {
    let mut sw = clean_switch();
    // Five register arrays touched from one stage: 5 SALUs > 4 per stage.
    let ops: Vec<PrimitiveOp> = (0..5).map(|i| salu_on(&mut sw, &format!("r{i}"))).collect();
    let t =
        Table::new("hot", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::new("a", ops));
    sw.ingress.push_table(t);
    let r = check_stage_resources(&sw);
    assert!(
        r.errors().any(|d| d.rule == "resource-overflow" && d.message.contains("salus")),
        "{r}"
    );
}

#[test]
fn fitting_stage_passes_resources() {
    let sw = clean_switch();
    assert!(check_stage_resources(&sw).diagnostics.is_empty());
}

// --- pass 2: PHV def-use / liveness ----------------------------------------

#[test]
fn read_of_never_written_metadata_is_an_error() {
    let mut sw = clean_switch();
    let ghost = sw.fields.intern("meta.ghost", 16);
    let t = Table::new(
        "reader",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("copy", vec![PrimitiveOp::CopyField { dst: fields::TCP_SPORT, src: ghost }]),
    );
    sw.ingress.push_table(t);
    let r = check_phv_liveness(&sw);
    assert!(
        r.errors().any(|d| d.rule == "phv-undef-read" && d.message.contains("meta.ghost")),
        "{r}"
    );
}

#[test]
fn write_nothing_reads_is_a_warning() {
    let mut sw = clean_switch();
    let unused = sw.fields.intern("meta.unused", 16);
    let t = Table::new(
        "writer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("w", vec![PrimitiveOp::SetConst { dst: unused, value: 1 }]),
    );
    sw.ingress.push_table(t);
    let r = check_phv_liveness(&sw);
    assert!(!r.has_errors(), "{r}");
    assert!(
        r.diagnostics.iter().any(|d| d.rule == "phv-dead-write" && d.severity == Severity::Warning),
        "{r}"
    );
}

#[test]
fn write_then_read_metadata_is_clean() {
    let mut sw = clean_switch();
    let flag = sw.fields.intern("meta.flag", 1);
    let w = Table::new(
        "producer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("set", vec![PrimitiveOp::SetConst { dst: flag, value: 1 }]),
    );
    let r = Table::new("consumer", MatchKind::Exact, vec![fields::IPV4_SRC], 4, ActionSet::nop())
        .with_gateway(Gateway { field: flag, cmp: Cmp::Eq, value: 1 });
    sw.ingress.push_table(w);
    sw.ingress.push_table(r);
    let report = check_phv_liveness(&sw);
    assert!(report.diagnostics.is_empty(), "{report}");
}

// --- pass 3: SALU access discipline ----------------------------------------

#[test]
fn two_salu_ops_on_one_array_in_one_action() {
    let mut sw = clean_switch();
    let reg = sw.regs.alloc("ctr", 32, 1);
    let op = |dst| PrimitiveOp::Salu {
        reg,
        index: IndexSource::Const(0),
        program: SaluProgram::fetch_add(dst),
    };
    let t = Table::new(
        "double",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("a", vec![op(fields::TCP_SPORT), op(fields::TCP_DPORT)]),
    );
    sw.ingress.push_table(t);
    let r = check_salu_discipline(&sw);
    assert!(r.errors().any(|d| d.rule == "salu-double-access"), "{r}");
}

#[test]
fn same_array_from_two_tables_is_a_hazard() {
    let mut sw = clean_switch();
    let reg = sw.regs.alloc("shared", 32, 1);
    for name in ["first", "second"] {
        let t = Table::new(
            name,
            MatchKind::Exact,
            vec![fields::IPV4_DST],
            4,
            ActionSet::new(
                "a",
                vec![PrimitiveOp::Salu {
                    reg,
                    index: IndexSource::Const(0),
                    program: SaluProgram::fetch_add(fields::TCP_WINDOW),
                }],
            ),
        );
        sw.ingress.push_table(t);
    }
    let r = check_salu_discipline(&sw);
    assert!(r.errors().any(|d| d.rule == "salu-raw-hazard"), "{r}");
}

#[test]
fn single_access_per_array_is_clean() {
    let mut sw = clean_switch();
    let op = salu_on(&mut sw, "only");
    let t =
        Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::new("a", vec![op]));
    sw.ingress.push_table(t);
    assert!(check_salu_discipline(&sw).diagnostics.is_empty());
}

// --- pass 4: parser graph ---------------------------------------------------

fn state(name: &str, transitions: Vec<usize>) -> ParseState {
    ParseState { name: name.into(), writes: vec![], transitions }
}

#[test]
fn parser_cycle_is_an_error() {
    let g = ParseGraph {
        states: vec![state("a", vec![1]), state("b", vec![0])],
        start: 0,
        max_depth: 12,
    };
    let r = check_parse_graph(&g);
    assert!(r.errors().any(|d| d.rule == "parser-cycle"), "{r}");
}

#[test]
fn parser_depth_overflow_is_an_error() {
    // A 5-state chain against a depth budget of 3.
    let states =
        (0..5).map(|i| state(&format!("s{i}"), if i < 4 { vec![i + 1] } else { vec![] })).collect();
    let g = ParseGraph { states, start: 0, max_depth: 3 };
    let r = check_parse_graph(&g);
    assert!(r.errors().any(|d| d.rule == "parser-depth"), "{r}");
}

#[test]
fn unreachable_parser_state_is_a_warning() {
    let g = ParseGraph {
        states: vec![state("start", vec![]), state("orphan", vec![])],
        start: 0,
        max_depth: 12,
    };
    let r = check_parse_graph(&g);
    assert!(!r.has_errors(), "{r}");
    assert!(r.diagnostics.iter().any(|d| d.rule == "parser-unreachable"), "{r}");
}

#[test]
fn standard_parser_graph_is_clean() {
    assert!(check_parse_graph(&ParseGraph::standard()).diagnostics.is_empty());
}

// --- pass 5: replication / recirculation -----------------------------------

#[test]
fn mcast_member_on_unknown_port_is_an_error() {
    let mut sw = clean_switch(); // only port 0 exists
    sw.mcast.set_group(1, vec![McastMember { port: 9, rid: 1 }]);
    let r = check_replication(&sw);
    assert!(r.errors().any(|d| d.rule == "mcast-bad-port"), "{r}");
}

#[test]
fn unknown_mcast_group_reference_is_an_error() {
    let mut sw = clean_switch();
    let t = Table::new(
        "rep",
        MatchKind::Exact,
        vec![fields::TEMPLATE_ID],
        4,
        ActionSet::new("grp", vec![PrimitiveOp::SetMcastGroup(7)]),
    );
    sw.ingress.push_table(t);
    let r = check_replication(&sw);
    assert!(r.errors().any(|d| d.rule == "mcast-unknown-group"), "{r}");
}

#[test]
fn recirculate_in_default_action_is_unbounded() {
    let mut sw = clean_switch();
    let t = Table::new(
        "acc",
        MatchKind::Exact,
        vec![fields::TEMPLATE_ID],
        4,
        ActionSet::new("loop", vec![PrimitiveOp::Recirculate]),
    );
    sw.ingress.push_table(t);
    let r = check_replication(&sw);
    assert!(r.errors().any(|d| d.rule == "recirc-unbounded"), "{r}");
}

#[test]
fn template_keyed_recirculation_entry_is_bounded() {
    let mut sw = clean_switch();
    let mut t = Table::new("acc", MatchKind::Exact, vec![fields::TEMPLATE_ID], 4, ActionSet::nop());
    t.insert(MatchKey::Exact(vec![1]), ActionSet::new("loop", vec![PrimitiveOp::Recirculate]), 0)
        .unwrap();
    sw.ingress.push_table(t);
    sw.mcast.set_group(1, vec![McastMember { port: 0, rid: 1 }]);
    let r = check_replication(&sw);
    assert!(r.diagnostics.is_empty(), "{r}");
}

// --- pass 6: gateway contradictions ----------------------------------------

#[test]
fn statically_false_gateway_is_an_error() {
    let mut sw = clean_switch();
    // tcp.sport is 16 bits; no value exceeds 0x10000.
    let t = Table::new("dead", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Eq, value: 0x1_0000 });
    sw.ingress.push_table(t);
    let r = check_gateways(&sw);
    assert!(r.errors().any(|d| d.rule == "gateway-false"), "{r}");
}

#[test]
fn contradicting_gateway_pair_is_an_error() {
    let mut sw = clean_switch();
    let t = Table::new("dead", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Lt, value: 5 })
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Gt, value: 10 });
    sw.ingress.push_table(t);
    let r = check_gateways(&sw);
    assert!(r.errors().any(|d| d.rule == "gateway-contradiction"), "{r}");
}

#[test]
fn tautological_gateway_is_a_warning() {
    let mut sw = clean_switch();
    let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Ge, value: 0 });
    sw.ingress.push_table(t);
    let r = check_gateways(&sw);
    assert!(!r.has_errors(), "{r}");
    assert!(r.diagnostics.iter().any(|d| d.rule == "gateway-redundant"), "{r}");
}

#[test]
fn satisfiable_gateway_pair_is_clean() {
    let mut sw = clean_switch();
    let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Ge, value: 5 })
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Le, value: 10 });
    sw.ingress.push_table(t);
    assert!(check_gateways(&sw).diagnostics.is_empty());
}

#[test]
fn semantic_contradiction_through_value_flow_is_an_error() {
    // No single gateway pair is contradictory here — only value flow sees
    // it: an earlier default action pins the metadata to 3, and a later
    // gateway demands 5.  The old syntactic pass was blind to this.
    let mut sw = clean_switch();
    let mode = sw.fields.intern("meta.mode", 8);
    let producer = Table::new(
        "producer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("pin", vec![PrimitiveOp::SetConst { dst: mode, value: 3 }]),
    );
    let consumer =
        Table::new("consumer", MatchKind::Exact, vec![fields::IPV4_SRC], 4, ActionSet::nop())
            .with_gateway(Gateway { field: mode, cmp: Cmp::Eq, value: 5 });
    sw.ingress.push_table(producer);
    sw.ingress.push_table(consumer);
    let r = check_gateways(&sw);
    assert!(r.errors().any(|d| d.rule == "gateway-contradiction"), "{r}");
}

#[test]
fn semantically_satisfiable_gateway_on_pinned_field_is_clean() {
    let mut sw = clean_switch();
    let mode = sw.fields.intern("meta.mode", 8);
    let producer = Table::new(
        "producer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("pin", vec![PrimitiveOp::SetConst { dst: mode, value: 3 }]),
    );
    let consumer =
        Table::new("consumer", MatchKind::Exact, vec![fields::IPV4_SRC], 4, ActionSet::nop())
            .with_gateway(Gateway { field: mode, cmp: Cmp::Eq, value: 3 });
    sw.ingress.push_table(producer);
    sw.ingress.push_table(consumer);
    assert!(check_gateways(&sw).diagnostics.is_empty());
}

// --- pass 7: dead field edits -----------------------------------------------

/// Three-table chain over one metadata field: first writes, second
/// overwrites, third reads.  Only the first write is dead.
fn scratch_chain(read_between: bool) -> Switch {
    let mut sw = clean_switch();
    let scratch = sw.fields.intern("meta.scratch", 16);
    let first = Table::new(
        "first",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("w1", vec![PrimitiveOp::SetConst { dst: scratch, value: 1 }]),
    );
    let mut second = Table::new(
        "second",
        MatchKind::Exact,
        vec![fields::IPV4_SRC],
        4,
        ActionSet::new("w2", vec![PrimitiveOp::SetConst { dst: scratch, value: 2 }]),
    );
    if read_between {
        // A gateway on the overwriting table reads the first write.
        second = second.with_gateway(Gateway { field: scratch, cmp: Cmp::Eq, value: 1 });
    }
    let third = Table::new("third", MatchKind::Exact, vec![fields::TCP_SPORT], 4, ActionSet::nop())
        .with_gateway(Gateway { field: scratch, cmp: Cmp::Ge, value: 1 });
    sw.ingress.push_table(first);
    sw.ingress.push_table(second);
    sw.ingress.push_table(third);
    sw
}

#[test]
fn overwritten_before_read_edit_is_a_warning() {
    let r = check_dead_field_edits(&scratch_chain(false));
    assert!(!r.has_errors(), "{r}");
    assert!(
        r.diagnostics.iter().any(|d| {
            d.rule == "dead-field-edit"
                && d.location.contains("table first")
                && d.message.contains("meta.scratch")
        }),
        "{r}"
    );
    // The overwrite itself is live (the third table reads it).
    assert!(!r.diagnostics.iter().any(|d| d.location.contains("table second")), "{r}");
}

#[test]
fn edit_with_a_reader_in_between_is_clean() {
    assert!(check_dead_field_edits(&scratch_chain(true)).diagnostics.is_empty());
}

// --- pass 8: unreachable table actions --------------------------------------

/// A producer pins `meta.mode` to 3; a matcher keys on it with entries
/// for 3 and (optionally) 5.
fn mode_matcher(with_dead_entry: bool) -> Switch {
    let mut sw = clean_switch();
    let mode = sw.fields.intern("meta.mode", 8);
    let producer = Table::new(
        "producer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("pin", vec![PrimitiveOp::SetConst { dst: mode, value: 3 }]),
    );
    let mut matcher = Table::new("matcher", MatchKind::Exact, vec![mode], 4, ActionSet::nop());
    matcher
        .insert(MatchKey::Exact(vec![3]), ActionSet::new("hit3", vec![PrimitiveOp::NoOp]), 0)
        .unwrap();
    if with_dead_entry {
        matcher
            .insert(MatchKey::Exact(vec![5]), ActionSet::new("hit5", vec![PrimitiveOp::NoOp]), 0)
            .unwrap();
    }
    sw.ingress.push_table(producer);
    sw.ingress.push_table(matcher);
    sw
}

#[test]
fn entry_outside_the_proven_range_is_a_warning() {
    let r = check_unreachable_actions(&mode_matcher(true));
    assert!(!r.has_errors(), "{r}");
    let hits: Vec<_> = r.diagnostics.iter().filter(|d| d.rule == "unreachable-action").collect();
    assert_eq!(hits.len(), 1, "{r}");
    assert!(hits[0].location.contains("hit5"), "{r}");
    assert!(hits[0].message.contains("[3, 3]"), "{r}");
}

#[test]
fn entries_inside_the_proven_range_are_clean() {
    assert!(check_unreachable_actions(&mode_matcher(false)).diagnostics.is_empty());
}

// --- pass 9: SALU value ranges ----------------------------------------------

fn salu_table(sw: &mut Switch, name: &str, width: u32, program: SaluProgram) -> Table {
    let reg = sw.regs.alloc(name, width, 1);
    Table::new(
        name,
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("a", vec![PrimitiveOp::Salu { reg, index: IndexSource::Const(0), program }]),
    )
}

#[test]
fn operand_wider_than_the_register_lane_is_a_warning() {
    let mut sw = clean_switch();
    // tcp.sport spans [0, 65535]; an 8-bit lane silently truncates it.
    let t =
        salu_table(&mut sw, "narrow", 8, SaluProgram::write(SaluOperand::Field(fields::TCP_SPORT)));
    sw.ingress.push_table(t);
    let r = check_salu_range(&sw);
    assert!(!r.has_errors(), "{r}");
    assert!(
        r.diagnostics.iter().any(|d| {
            d.rule == "salu-range-overflow"
                && d.message.contains("tcp.sport")
                && d.message.contains("8-bit")
        }),
        "{r}"
    );
}

#[test]
fn operand_within_the_lane_is_clean() {
    let mut sw = clean_switch();
    let t =
        salu_table(&mut sw, "wide", 32, SaluProgram::write(SaluOperand::Field(fields::TCP_SPORT)));
    sw.ingress.push_table(t);
    assert!(check_salu_range(&sw).diagnostics.is_empty());
}

#[test]
fn guarded_increment_is_certified_nowrap() {
    let mut sw = clean_switch();
    // `if reg < 100 { reg += 1 }` on an 8-bit lane: max stored value 100.
    let guarded = SaluProgram {
        condition: Some(SaluCond {
            expr: CondExpr::Reg,
            cmp: Cmp::Lt,
            rhs: SaluOperand::Const(100),
        }),
        on_true: SaluUpdate::Add(SaluOperand::Const(1)),
        on_false: SaluUpdate::Keep,
        output: None,
    };
    let t = salu_table(&mut sw, "bounded", 8, guarded);
    sw.ingress.push_table(t);
    // An unguarded counter on the same-width lane is NOT certified.
    let t2 = salu_table(&mut sw, "unbounded", 8, SaluProgram::fetch_add(fields::TCP_WINDOW));
    sw.ingress.push_table(t2);
    let proven = proven_nowrap_regs(&sw);
    let names: Vec<&str> = proven.iter().map(|r| sw.regs.array(*r).name()).collect();
    assert!(names.contains(&"bounded"), "{names:?}");
    assert!(!names.contains(&"unbounded"), "{names:?}");
}

// --- recirculation back edge ------------------------------------------------

#[test]
fn recirculating_program_reaches_fixpoint_with_widening() {
    let mut sw = clean_switch();
    let laps = sw.fields.intern("meta.laps", 16);
    // A counter that grows every lap plus an unconditional recirculate:
    // without widening the interval for `meta.laps` would climb forever.
    let mut t = Table::new("acc", MatchKind::Exact, vec![fields::TEMPLATE_ID], 4, ActionSet::nop());
    t.insert(
        MatchKey::Exact(vec![1]),
        ActionSet::new(
            "lap",
            vec![PrimitiveOp::AddConst { dst: laps, value: 1 }, PrimitiveOp::Recirculate],
        ),
        0,
    )
    .unwrap();
    sw.ingress.push_table(t);
    let a = analyze_switch(&sw).expect("solver must reach a fixpoint");
    assert!(a.has_back_edge());
    let (value_iters, live_iters) = a.iterations();
    // Well under the divergence budget: widening collapses the ascent.
    assert!(value_iters < 100, "value solver took {value_iters} iterations");
    assert!(live_iters < 100, "liveness solver took {live_iters} iterations");
    // And the dataflow passes stay silent on it.
    assert!(check_dead_field_edits(&sw).diagnostics.is_empty());
    assert!(check_salu_range(&sw).diagnostics.is_empty());
}

// --- driver -----------------------------------------------------------------

#[test]
fn clean_switch_passes_every_pass() {
    let r = lint_switch(&clean_switch());
    assert!(r.diagnostics.is_empty(), "{r}");
}
