//! One known-bad fixture per lint pass, each asserting the expected
//! diagnostic, plus a clean fixture showing the pass stays silent on a
//! valid program.

use ht_asic::action::{ActionSet, IndexSource, PrimitiveOp};
use ht_asic::parser::{ParseGraph, ParseState};
use ht_asic::phv::fields;
use ht_asic::register::{Cmp, SaluProgram};
use ht_asic::switch::Switch;
use ht_asic::table::{Gateway, MatchKey, MatchKind, Table};
use ht_asic::tm::McastMember;
use ht_lint::{
    check_gateways, check_parse_graph, check_phv_liveness, check_replication,
    check_salu_discipline, check_stage_resources, lint_switch, Severity,
};

/// A minimal valid program: one forwarding table, one port.
fn clean_switch() -> Switch {
    let mut sw = Switch::new("sw", 1);
    sw.add_port(0, 100_000_000_000);
    let t = Table::new(
        "fwd",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new("to0", vec![PrimitiveOp::SetEgressPort(0)]),
    );
    sw.ingress.push_table(t);
    sw
}

fn salu_on(sw: &mut Switch, name: &str) -> PrimitiveOp {
    let reg = sw.regs.alloc(name, 32, 1);
    PrimitiveOp::Salu {
        reg,
        index: IndexSource::Const(0),
        program: SaluProgram::fetch_add(fields::TCP_WINDOW),
    }
}

// --- pass 1: stage resource fitting ---------------------------------------

#[test]
fn overfull_stage_is_rejected() {
    let mut sw = clean_switch();
    // Five register arrays touched from one stage: 5 SALUs > 4 per stage.
    let ops: Vec<PrimitiveOp> = (0..5).map(|i| salu_on(&mut sw, &format!("r{i}"))).collect();
    let t =
        Table::new("hot", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::new("a", ops));
    sw.ingress.push_table(t);
    let r = check_stage_resources(&sw);
    assert!(
        r.errors().any(|d| d.rule == "resource-overflow" && d.message.contains("salus")),
        "{r}"
    );
}

#[test]
fn fitting_stage_passes_resources() {
    let sw = clean_switch();
    assert!(check_stage_resources(&sw).diagnostics.is_empty());
}

// --- pass 2: PHV def-use / liveness ----------------------------------------

#[test]
fn read_of_never_written_metadata_is_an_error() {
    let mut sw = clean_switch();
    let ghost = sw.fields.intern("meta.ghost", 16);
    let t = Table::new(
        "reader",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("copy", vec![PrimitiveOp::CopyField { dst: fields::TCP_SPORT, src: ghost }]),
    );
    sw.ingress.push_table(t);
    let r = check_phv_liveness(&sw);
    assert!(
        r.errors().any(|d| d.rule == "phv-undef-read" && d.message.contains("meta.ghost")),
        "{r}"
    );
}

#[test]
fn write_nothing_reads_is_a_warning() {
    let mut sw = clean_switch();
    let unused = sw.fields.intern("meta.unused", 16);
    let t = Table::new(
        "writer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("w", vec![PrimitiveOp::SetConst { dst: unused, value: 1 }]),
    );
    sw.ingress.push_table(t);
    let r = check_phv_liveness(&sw);
    assert!(!r.has_errors(), "{r}");
    assert!(
        r.diagnostics.iter().any(|d| d.rule == "phv-dead-write" && d.severity == Severity::Warning),
        "{r}"
    );
}

#[test]
fn write_then_read_metadata_is_clean() {
    let mut sw = clean_switch();
    let flag = sw.fields.intern("meta.flag", 1);
    let w = Table::new(
        "producer",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("set", vec![PrimitiveOp::SetConst { dst: flag, value: 1 }]),
    );
    let r = Table::new("consumer", MatchKind::Exact, vec![fields::IPV4_SRC], 4, ActionSet::nop())
        .with_gateway(Gateway { field: flag, cmp: Cmp::Eq, value: 1 });
    sw.ingress.push_table(w);
    sw.ingress.push_table(r);
    let report = check_phv_liveness(&sw);
    assert!(report.diagnostics.is_empty(), "{report}");
}

// --- pass 3: SALU access discipline ----------------------------------------

#[test]
fn two_salu_ops_on_one_array_in_one_action() {
    let mut sw = clean_switch();
    let reg = sw.regs.alloc("ctr", 32, 1);
    let op = |dst| PrimitiveOp::Salu {
        reg,
        index: IndexSource::Const(0),
        program: SaluProgram::fetch_add(dst),
    };
    let t = Table::new(
        "double",
        MatchKind::Exact,
        vec![fields::IPV4_DST],
        4,
        ActionSet::new("a", vec![op(fields::TCP_SPORT), op(fields::TCP_DPORT)]),
    );
    sw.ingress.push_table(t);
    let r = check_salu_discipline(&sw);
    assert!(r.errors().any(|d| d.rule == "salu-double-access"), "{r}");
}

#[test]
fn same_array_from_two_tables_is_a_hazard() {
    let mut sw = clean_switch();
    let reg = sw.regs.alloc("shared", 32, 1);
    for name in ["first", "second"] {
        let t = Table::new(
            name,
            MatchKind::Exact,
            vec![fields::IPV4_DST],
            4,
            ActionSet::new(
                "a",
                vec![PrimitiveOp::Salu {
                    reg,
                    index: IndexSource::Const(0),
                    program: SaluProgram::fetch_add(fields::TCP_WINDOW),
                }],
            ),
        );
        sw.ingress.push_table(t);
    }
    let r = check_salu_discipline(&sw);
    assert!(r.errors().any(|d| d.rule == "salu-raw-hazard"), "{r}");
}

#[test]
fn single_access_per_array_is_clean() {
    let mut sw = clean_switch();
    let op = salu_on(&mut sw, "only");
    let t =
        Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::new("a", vec![op]));
    sw.ingress.push_table(t);
    assert!(check_salu_discipline(&sw).diagnostics.is_empty());
}

// --- pass 4: parser graph ---------------------------------------------------

fn state(name: &str, transitions: Vec<usize>) -> ParseState {
    ParseState { name: name.into(), writes: vec![], transitions }
}

#[test]
fn parser_cycle_is_an_error() {
    let g = ParseGraph {
        states: vec![state("a", vec![1]), state("b", vec![0])],
        start: 0,
        max_depth: 12,
    };
    let r = check_parse_graph(&g);
    assert!(r.errors().any(|d| d.rule == "parser-cycle"), "{r}");
}

#[test]
fn parser_depth_overflow_is_an_error() {
    // A 5-state chain against a depth budget of 3.
    let states =
        (0..5).map(|i| state(&format!("s{i}"), if i < 4 { vec![i + 1] } else { vec![] })).collect();
    let g = ParseGraph { states, start: 0, max_depth: 3 };
    let r = check_parse_graph(&g);
    assert!(r.errors().any(|d| d.rule == "parser-depth"), "{r}");
}

#[test]
fn unreachable_parser_state_is_a_warning() {
    let g = ParseGraph {
        states: vec![state("start", vec![]), state("orphan", vec![])],
        start: 0,
        max_depth: 12,
    };
    let r = check_parse_graph(&g);
    assert!(!r.has_errors(), "{r}");
    assert!(r.diagnostics.iter().any(|d| d.rule == "parser-unreachable"), "{r}");
}

#[test]
fn standard_parser_graph_is_clean() {
    assert!(check_parse_graph(&ParseGraph::standard()).diagnostics.is_empty());
}

// --- pass 5: replication / recirculation -----------------------------------

#[test]
fn mcast_member_on_unknown_port_is_an_error() {
    let mut sw = clean_switch(); // only port 0 exists
    sw.mcast.set_group(1, vec![McastMember { port: 9, rid: 1 }]);
    let r = check_replication(&sw);
    assert!(r.errors().any(|d| d.rule == "mcast-bad-port"), "{r}");
}

#[test]
fn unknown_mcast_group_reference_is_an_error() {
    let mut sw = clean_switch();
    let t = Table::new(
        "rep",
        MatchKind::Exact,
        vec![fields::TEMPLATE_ID],
        4,
        ActionSet::new("grp", vec![PrimitiveOp::SetMcastGroup(7)]),
    );
    sw.ingress.push_table(t);
    let r = check_replication(&sw);
    assert!(r.errors().any(|d| d.rule == "mcast-unknown-group"), "{r}");
}

#[test]
fn recirculate_in_default_action_is_unbounded() {
    let mut sw = clean_switch();
    let t = Table::new(
        "acc",
        MatchKind::Exact,
        vec![fields::TEMPLATE_ID],
        4,
        ActionSet::new("loop", vec![PrimitiveOp::Recirculate]),
    );
    sw.ingress.push_table(t);
    let r = check_replication(&sw);
    assert!(r.errors().any(|d| d.rule == "recirc-unbounded"), "{r}");
}

#[test]
fn template_keyed_recirculation_entry_is_bounded() {
    let mut sw = clean_switch();
    let mut t = Table::new("acc", MatchKind::Exact, vec![fields::TEMPLATE_ID], 4, ActionSet::nop());
    t.insert(MatchKey::Exact(vec![1]), ActionSet::new("loop", vec![PrimitiveOp::Recirculate]), 0)
        .unwrap();
    sw.ingress.push_table(t);
    sw.mcast.set_group(1, vec![McastMember { port: 0, rid: 1 }]);
    let r = check_replication(&sw);
    assert!(r.diagnostics.is_empty(), "{r}");
}

// --- pass 6: gateway contradictions ----------------------------------------

#[test]
fn statically_false_gateway_is_an_error() {
    let mut sw = clean_switch();
    // tcp.sport is 16 bits; no value exceeds 0x10000.
    let t = Table::new("dead", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Eq, value: 0x1_0000 });
    sw.ingress.push_table(t);
    let r = check_gateways(&sw);
    assert!(r.errors().any(|d| d.rule == "gateway-false"), "{r}");
}

#[test]
fn contradicting_gateway_pair_is_an_error() {
    let mut sw = clean_switch();
    let t = Table::new("dead", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Lt, value: 5 })
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Gt, value: 10 });
    sw.ingress.push_table(t);
    let r = check_gateways(&sw);
    assert!(r.errors().any(|d| d.rule == "gateway-contradiction"), "{r}");
}

#[test]
fn tautological_gateway_is_a_warning() {
    let mut sw = clean_switch();
    let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Ge, value: 0 });
    sw.ingress.push_table(t);
    let r = check_gateways(&sw);
    assert!(!r.has_errors(), "{r}");
    assert!(r.diagnostics.iter().any(|d| d.rule == "gateway-redundant"), "{r}");
}

#[test]
fn satisfiable_gateway_pair_is_clean() {
    let mut sw = clean_switch();
    let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Ge, value: 5 })
        .with_gateway(Gateway { field: fields::TCP_SPORT, cmp: Cmp::Le, value: 10 });
    sw.ingress.push_table(t);
    assert!(check_gateways(&sw).diagnostics.is_empty());
}

// --- driver -----------------------------------------------------------------

#[test]
fn clean_switch_passes_every_pass() {
    let r = lint_switch(&clean_switch());
    assert!(r.diagnostics.is_empty(), "{r}");
}
