//! Static verification of compiled pipeline programs.
//!
//! HyperTester compiles every NTAPI task down to a match-action pipeline
//! before any packet moves (§6: "the compiler rejects tasks that do not fit
//! the target").  This crate is that rejection machinery: a set of passes
//! that walk a built [`Switch`] program — tables, externs, registers,
//! multicast groups, the parser graph — and report everything a real
//! Tofino-like target would refuse to load, *before* simulation starts.
//!
//! The passes, each mapped to a hardware constraint the paper leans on:
//!
//! 1. **Stage resource fitting** ([`check_stage_resources`]) — per-stage
//!    crossbar/SRAM/TCAM/VLIW/hash/SALU/gateway budgets (Table 7).
//! 2. **PHV def-use** ([`check_phv_liveness`]) — reads of metadata no
//!    earlier component can have written, and writes nothing ever reads.
//! 3. **SALU access discipline** ([`check_salu_discipline`]) — one stateful
//!    access per register array per packet pass (§5.1, the constraint that
//!    shapes the FIFO of Fig. 7).
//! 4. **Parser graph** ([`check_parse_graph`]) — unreachable states, cycles
//!    and depth beyond what the parser sustains at line rate.
//! 5. **Replication & recirculation** ([`check_replication`]) — multicast
//!    members must name real ports; recirculation must be bounded by
//!    CPU-managed template residency (§5.1's accelerator).
//! 6. **Gateway reachability** ([`check_gateways`]) — statically-false or
//!    semantically-unsatisfiable predicates that turn a table into dead
//!    logic, proven by abstract interpretation over the pipeline CFG.
//! 7. **Dead field edits** ([`check_dead_field_edits`]) — metadata writes
//!    provably overwritten before any read (liveness dataflow).
//! 8. **Unreachable actions** ([`check_unreachable_actions`]) — installed
//!    entries whose keys can never match the proven field values.
//! 9. **SALU value ranges** ([`check_salu_range`]) — stateful-ALU operands
//!    whose proven range exceeds the register lane and silently wraps.
//!
//! Passes 6–9 consume the abstract-interpretation dataflow solutions of
//! the [`analysis`] module (interval/known-bits value analysis and
//! field liveness over the pipeline CFG, recirculation loop included).
//!
//! The nine checks are registered as IR passes ([`switch_passes`]) on the
//! shared `ht_ir` pass manager; [`lint_switch`] is the thin wrapper that
//! runs the pipeline once and returns one [`LintReport`].  The builder in
//! `ht-core` drives the same pipeline during `build`, storing the report
//! on the built tester — so the passes run exactly once per compilation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ht_asic::action::{IndexSource, PrimitiveOp};
use ht_asic::parser::ParseGraph;
use ht_asic::phv::{fields, FieldId, FieldTable};
use ht_asic::pipeline::Pipeline;
use ht_asic::register::{CondExpr, RegId, SaluOperand, SaluUpdate};
use ht_asic::resources::{table_usage, ResourceUsage};
use ht_asic::switch::Switch;
use ht_asic::table::Table;
use ht_ir::{Pass, PassCx, PassManager};
use std::collections::{HashMap, HashSet};
use std::convert::Infallible;

// The diagnostic types (`Severity`, `Diagnostic`, `LintReport`,
// `json_escape`) moved to `ht-ir` when lowering and verification were
// unified behind one pass manager; re-exported here so existing
// `ht_lint::…` spellings keep working.
pub use ht_ir::{json_escape, Diagnostic, LintReport, Severity};

pub mod analysis;

pub use analysis::{
    analyze_switch, check_dead_field_edits, check_reachability, check_salu_range,
    check_unreachable_actions, dump_facts, proven_nowrap_regs, SwitchAnalysis, FACT_PASSES,
};

// ---------------------------------------------------------------------------
// Op introspection helpers
// ---------------------------------------------------------------------------

fn operand_field(op: &SaluOperand) -> Option<FieldId> {
    match op {
        SaluOperand::Field(f) => Some(*f),
        SaluOperand::Const(_) => None,
    }
}

fn index_reads(idx: &IndexSource, out: &mut Vec<FieldId>) {
    match idx {
        IndexSource::Const(_) => {}
        IndexSource::Field(f) => out.push(*f),
        IndexSource::Hash { fields, .. } => out.extend(fields.iter().copied()),
    }
}

fn update_reads(u: &SaluUpdate, out: &mut Vec<FieldId>) {
    match u {
        SaluUpdate::Keep => {}
        SaluUpdate::Set(op) | SaluUpdate::Add(op) | SaluUpdate::Sub(op) => {
            out.extend(operand_field(op));
        }
    }
}

/// PHV fields an op reads.  Read-modify-write ops (`AddConst` etc.) read
/// their destination.
pub(crate) fn op_reads(op: &PrimitiveOp) -> Vec<FieldId> {
    let mut r = Vec::new();
    match op {
        PrimitiveOp::SetConst { .. }
        | PrimitiveOp::RngUniform { .. }
        | PrimitiveOp::SetEgressPort(_)
        | PrimitiveOp::SetMcastGroup(_)
        | PrimitiveOp::Recirculate
        | PrimitiveOp::Drop
        | PrimitiveOp::NoOp => {}
        PrimitiveOp::CopyField { src, .. } => r.push(*src),
        PrimitiveOp::AddConst { dst, .. }
        | PrimitiveOp::AndConst { dst, .. }
        | PrimitiveOp::OrConst { dst, .. }
        | PrimitiveOp::ShiftRight { dst, .. } => r.push(*dst),
        PrimitiveOp::AddField { dst, src } | PrimitiveOp::SubField { dst, src } => {
            r.push(*dst);
            r.push(*src);
        }
        PrimitiveOp::Hash { fields, .. } => r.extend(fields.iter().copied()),
        PrimitiveOp::Digest { fields, .. } => r.extend(fields.iter().copied()),
        PrimitiveOp::Salu { index, program, .. } => {
            index_reads(index, &mut r);
            if let Some(cond) = &program.condition {
                match &cond.expr {
                    CondExpr::Reg => {}
                    CondExpr::Operand(op)
                    | CondExpr::OperandMinusReg(op)
                    | CondExpr::RegMinusOperand(op) => r.extend(operand_field(op)),
                }
                r.extend(operand_field(&cond.rhs));
            }
            update_reads(&program.on_true, &mut r);
            update_reads(&program.on_false, &mut r);
        }
    }
    r
}

/// The PHV field an op writes, if any, plus whether the write is a *plain*
/// ALU write (as opposed to a SALU export, which often exists solely for
/// CPU readback and is exempt from dead-write analysis).
pub(crate) fn op_write(op: &PrimitiveOp) -> Option<(FieldId, bool)> {
    match op {
        PrimitiveOp::SetConst { dst, .. }
        | PrimitiveOp::CopyField { dst, .. }
        | PrimitiveOp::AddConst { dst, .. }
        | PrimitiveOp::AddField { dst, .. }
        | PrimitiveOp::SubField { dst, .. }
        | PrimitiveOp::AndConst { dst, .. }
        | PrimitiveOp::OrConst { dst, .. }
        | PrimitiveOp::ShiftRight { dst, .. }
        | PrimitiveOp::Hash { dst, .. }
        | PrimitiveOp::RngUniform { dst, .. } => Some((*dst, true)),
        PrimitiveOp::Salu { program, .. } => program.output.map(|o| (o.dst, false)),
        _ => None,
    }
}

fn op_salu_reg(op: &PrimitiveOp) -> Option<RegId> {
    match op {
        PrimitiveOp::Salu { reg, .. } => Some(*reg),
        _ => None,
    }
}

pub(crate) fn field_name(ft: &FieldTable, f: FieldId) -> String {
    ft.def(f).name.clone()
}

pub(crate) fn is_dynamic(f: FieldId) -> bool {
    f.0 >= fields::STANDARD_COUNT
}

pub(crate) fn pipelines(sw: &Switch) -> [(&'static str, &Pipeline); 2] {
    [("ingress", &sw.ingress), ("egress", &sw.egress)]
}

fn loc(pipe: &str, stage: usize, table: &Table) -> String {
    format!("{pipe} stage {stage} table {}", table.name())
}

// ---------------------------------------------------------------------------
// Pass 1: per-stage resource fitting
// ---------------------------------------------------------------------------

/// Checks every physical stage against the per-stage capacity model
/// ([`ht_asic::resources::stage_capacity`]).
///
/// Register state accessed by a table's SALU ops is charged to the stage of
/// the first accessing table.  Per-entry arrays of one table are merged the
/// way a hardware compiler lowers them — one indexed array per concurrent
/// access, so the SALU demand of a table is the *worst single action* (the
/// entries are alternatives: one packet executes one of them), and storage
/// is pooled across the table's arrays before rounding to SRAM blocks.
/// Arrays owned by externs are excluded here (their lowering spreads across
/// stages and is accounted in the extern's declared [`ResourceUsage`]).
pub fn check_stage_resources(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let cap = ht_asic::resources::stage_capacity();
    let extern_regs: HashSet<RegId> = pipelines(sw)
        .iter()
        .flat_map(|(_, p)| p.stages.iter())
        .flat_map(|s| s.externs.iter())
        .flat_map(|e| e.registers())
        .collect();

    let mut charged: HashSet<RegId> = HashSet::new();
    for (pname, pipe) in pipelines(sw) {
        for (si, stage) in pipe.stages.iter().enumerate() {
            let mut usage = ResourceUsage::default();
            for t in &stage.tables {
                usage += table_usage(t);
                let mut worst_action_salus = 0u64;
                let mut storage_bits = 0u64;
                let mut any_new = false;
                for a in t.actions() {
                    let mut action_salus = 0u64;
                    for op in &a.ops {
                        if let Some(reg) = op_salu_reg(op) {
                            action_salus += 1;
                            if !extern_regs.contains(&reg) && charged.insert(reg) {
                                let arr = sw.regs.array(reg);
                                storage_bits += arr.depth() as u64 * u64::from(arr.width());
                                any_new = true;
                            }
                        }
                    }
                    worst_action_salus = worst_action_salus.max(action_salus);
                }
                if any_new {
                    usage += ResourceUsage {
                        salus: worst_action_salus,
                        sram_blocks: storage_bits
                            .div_ceil(ht_asic::resources::SRAM_BLOCK_BITS)
                            .max(1),
                        ..Default::default()
                    };
                }
            }
            for e in &stage.externs {
                usage += e.resources();
            }
            for class in usage.exceeds(&cap) {
                report.push(Diagnostic::error(
                    "resource-overflow",
                    format!("{pname} stage {si}"),
                    format!(
                        "stage needs {} {class} but the target provides {} per stage",
                        usage.class(class),
                        cap.class(class)
                    ),
                    "split the stage's tables across more stages or shrink keys/actions",
                ));
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass 2: PHV def-use / liveness
// ---------------------------------------------------------------------------

/// Flags reads of dynamic metadata no earlier component may have written
/// (`phv-undef-read`, error) and plain writes to dynamic metadata nothing
/// ever reads (`phv-dead-write`, warning).
///
/// The analysis is *may-define*: a field written on any action of an
/// earlier table counts as defined, so conditionally-populated metadata is
/// not a false positive.  Standard fields (parser output and intrinsic
/// metadata) are always defined.  SALU exports and extern writes are
/// exempt from dead-write reporting — the former are frequently
/// CPU-readback paths, the latter a declared interface.
pub fn check_phv_liveness(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let ft = &sw.fields;

    // Global read set, for dead-write analysis.
    let mut read_anywhere: HashSet<FieldId> = HashSet::new();
    // (field, location) of every plain write to a dynamic field.
    let mut plain_writes: Vec<(FieldId, String)> = Vec::new();

    let mut defined: HashSet<FieldId> = (0..fields::STANDARD_COUNT).map(FieldId).collect();

    for (pname, pipe) in pipelines(sw) {
        for (si, stage) in pipe.stages.iter().enumerate() {
            // Writes by this stage's tables are visible to later tables
            // within the same stage in the sequential model, so merge after
            // each table, in declaration order.
            for t in &stage.tables {
                let at = loc(pname, si, t);
                for gw in t.gateways() {
                    read_anywhere.insert(gw.field);
                    if is_dynamic(gw.field) && !defined.contains(&gw.field) {
                        report.push(Diagnostic::error(
                            "phv-undef-read",
                            at.clone(),
                            format!(
                                "gateway reads `{}` which no earlier component writes",
                                field_name(ft, gw.field)
                            ),
                            "write the field in an earlier stage or gate on a parser-provided field",
                        ));
                    }
                }
                for &k in t.key_fields() {
                    read_anywhere.insert(k);
                    if is_dynamic(k) && !defined.contains(&k) {
                        report.push(Diagnostic::error(
                            "phv-undef-read",
                            at.clone(),
                            format!(
                                "match key `{}` is never written before this table",
                                field_name(ft, k)
                            ),
                            "populate the key field in an earlier stage",
                        ));
                    }
                }
                let mut table_writes: HashSet<FieldId> = HashSet::new();
                for a in t.actions() {
                    let mut local = defined.clone();
                    for op in &a.ops {
                        for r in op_reads(op) {
                            read_anywhere.insert(r);
                            if is_dynamic(r) && !local.contains(&r) {
                                report.push(Diagnostic::error(
                                    "phv-undef-read",
                                    format!("{at} action {}", a.name),
                                    format!(
                                        "op reads `{}` before any component writes it",
                                        field_name(ft, r)
                                    ),
                                    "order the writing table before this one",
                                ));
                            }
                        }
                        if let Some((w, plain)) = op_write(op) {
                            if plain && is_dynamic(w) {
                                plain_writes.push((w, format!("{at} action {}", a.name)));
                            }
                            local.insert(w);
                            table_writes.insert(w);
                        }
                    }
                }
                defined.extend(table_writes);
            }
            for e in &stage.externs {
                for r in e.reads() {
                    read_anywhere.insert(r);
                    if is_dynamic(r) && !defined.contains(&r) {
                        report.push(Diagnostic::error(
                            "phv-undef-read",
                            format!("{pname} stage {si} extern {}", e.name()),
                            format!(
                                "extern requires `{}` which no earlier component writes",
                                field_name(ft, r)
                            ),
                            "produce the field before the extern's stage",
                        ));
                    }
                }
                defined.extend(e.writes());
            }
        }
    }

    let mut reported: HashSet<FieldId> = HashSet::new();
    for (f, at) in plain_writes {
        if !read_anywhere.contains(&f) && reported.insert(f) {
            report.push(Diagnostic::warning(
                "phv-dead-write",
                at,
                format!(
                    "`{}` is written but never read by any table, gateway or extern",
                    field_name(ft, f)
                ),
                "remove the write or the unused metadata field",
            ));
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass 3: SALU access discipline
// ---------------------------------------------------------------------------

/// Enforces the one-stateful-access-per-array-per-pass rule (§5.1).
///
/// Violations: two SALU ops on the same array within one action
/// (`salu-double-access`), and the same array accessed from two different
/// tables — or from a table and an extern — in one packet pass
/// (`salu-raw-hazard`).  Two *externs* sharing an array is allowed: that is
/// the paper's FIFO producer/consumer pattern (Fig. 6–7), where the two
/// components execute for disjoint packet classes.
pub fn check_salu_discipline(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let mut extern_regs: HashMap<RegId, String> = HashMap::new();
    for (pname, pipe) in pipelines(sw) {
        for (si, stage) in pipe.stages.iter().enumerate() {
            for e in &stage.externs {
                for r in e.registers() {
                    extern_regs
                        .entry(r)
                        .or_insert_with(|| format!("{pname} stage {si} extern {}", e.name()));
                }
            }
        }
    }

    let mut first_table_access: HashMap<RegId, String> = HashMap::new();
    for (pname, pipe) in pipelines(sw) {
        for (si, stage) in pipe.stages.iter().enumerate() {
            for t in &stage.tables {
                let at = loc(pname, si, t);
                let mut table_regs: Vec<RegId> = Vec::new();
                for a in t.actions() {
                    let mut per_action: HashMap<RegId, u32> = HashMap::new();
                    for op in &a.ops {
                        if let Some(reg) = op_salu_reg(op) {
                            *per_action.entry(reg).or_insert(0) += 1;
                            if !table_regs.contains(&reg) {
                                table_regs.push(reg);
                            }
                        }
                    }
                    for (reg, n) in per_action {
                        if n > 1 {
                            report.push(Diagnostic::error(
                                "salu-double-access",
                                format!("{at} action {}", a.name),
                                format!(
                                    "action performs {n} SALU accesses to register array `{}`; the hardware allows one per packet",
                                    sw.regs.array(reg).name()
                                ),
                                "fold the accesses into one SALU program or split the state across arrays",
                            ));
                        }
                    }
                }
                for reg in table_regs {
                    let name = sw.regs.array(reg).name().to_string();
                    if let Some(ext_at) = extern_regs.get(&reg) {
                        report.push(Diagnostic::error(
                            "salu-raw-hazard",
                            at.clone(),
                            format!(
                                "register array `{name}` is accessed both here and by {ext_at}"
                            ),
                            "give the extern exclusive ownership of its arrays",
                        ));
                    }
                    match first_table_access.get(&reg) {
                        None => {
                            first_table_access.insert(reg, at.clone());
                        }
                        Some(prev) if *prev != at => {
                            report.push(Diagnostic::error(
                                "salu-raw-hazard",
                                at.clone(),
                                format!(
                                    "register array `{name}` was already accessed by {prev} in the same packet pass"
                                ),
                                "merge the two accesses into one table or duplicate the state",
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass 4: parser graph
// ---------------------------------------------------------------------------

/// Validates a parser state graph: unreachable states
/// (`parser-unreachable`, warning), cycles (`parser-cycle`, error — header
/// stacks must be unrolled, not looped) and chains deeper than the
/// target's per-packet state budget (`parser-depth`, error).
pub fn check_parse_graph(g: &ParseGraph) -> LintReport {
    let mut report = LintReport::new();
    let n = g.states.len();
    if n == 0 || g.start >= n {
        report.push(Diagnostic::error(
            "parser-cycle",
            "parser",
            "parse graph has no valid start state",
            "define a start state",
        ));
        return report;
    }

    let reach = g.reachable();
    for (i, reached) in reach.iter().enumerate() {
        if !reached {
            report.push(Diagnostic::warning(
                "parser-unreachable",
                format!("parser state {}", g.states[i].name),
                "state is unreachable from the start state",
                "remove the state or add a transition to it",
            ));
        }
    }

    // Iterative DFS with colors to find back edges; longest-path
    // relaxation gives the exact depth on acyclic graphs.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut depth = vec![0usize; n];
    let mut cyclic = false;
    let mut stack: Vec<(usize, usize)> = vec![(g.start, 0)];
    color[g.start] = GRAY;
    depth[g.start] = 1;
    let mut max_depth_seen = 1usize;
    while let Some(&mut (s, ref mut ti)) = stack.last_mut() {
        let trans = &g.states[s].transitions;
        if *ti < trans.len() {
            let next = trans[*ti];
            *ti += 1;
            if next >= n {
                report.push(Diagnostic::error(
                    "parser-cycle",
                    format!("parser state {}", g.states[s].name),
                    format!("transition targets nonexistent state index {next}"),
                    "fix the transition target",
                ));
                continue;
            }
            if color[next] == GRAY {
                if !cyclic {
                    cyclic = true;
                    report.push(Diagnostic::error(
                        "parser-cycle",
                        format!("parser state {}", g.states[next].name),
                        format!(
                            "parse graph cycle via {} -> {}",
                            g.states[s].name, g.states[next].name
                        ),
                        "parsers must be loop-free; unroll bounded header stacks",
                    ));
                }
            } else {
                let cand = depth[s] + 1;
                if color[next] == WHITE || cand > depth[next] {
                    depth[next] = cand;
                    max_depth_seen = max_depth_seen.max(cand);
                    color[next] = GRAY;
                    stack.push((next, 0));
                }
            }
        } else {
            color[s] = BLACK;
            stack.pop();
        }
    }

    if !cyclic && max_depth_seen > g.max_depth {
        report.push(Diagnostic::error(
            "parser-depth",
            "parser",
            format!(
                "longest parse chain visits {max_depth_seen} states; the target sustains {} per packet",
                g.max_depth
            ),
            "flatten the header chain or parse fewer optional headers",
        ));
    }
    report
}

// ---------------------------------------------------------------------------
// Pass 5: replication and recirculation bounds
// ---------------------------------------------------------------------------

/// Validates multicast configuration and proves recirculation bounded.
///
/// Multicast members must name configured ports (`mcast-bad-port`, error;
/// a replica rid of 0 is a warning — rid 0 means "not a replica" to the
/// egress editor).  `SetMcastGroup` must reference a configured group
/// (`mcast-unknown-group`).  A `Recirculate` op is bounded only when it
/// sits in an *installed entry* of a table keyed on `meta.template_id`:
/// the control plane then bounds the loop by template residency, exactly
/// the paper's accelerator contract (§5.1).  A `Recirculate` in a default
/// action or an un-keyed table loops every matching packet forever
/// (`recirc-unbounded`, error).
pub fn check_replication(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let ports: HashSet<u16> = sw.ports().collect();
    let groups: HashSet<u16> = sw.mcast.groups().map(|(g, _)| g).collect();

    for (g, members) in sw.mcast.groups() {
        for m in members {
            if !ports.contains(&m.port) {
                report.push(Diagnostic::error(
                    "mcast-bad-port",
                    format!("mcast group {g}"),
                    format!(
                        "member references port {} which is not configured on the switch",
                        m.port
                    ),
                    "add the port or drop the member",
                ));
            }
            if m.rid == 0 {
                report.push(Diagnostic::warning(
                    "mcast-bad-port",
                    format!("mcast group {g}"),
                    format!(
                        "member for port {} has replication id 0, which egress treats as \"not a replica\"",
                        m.port
                    ),
                    "use rids starting at 1",
                ));
            }
        }
    }

    for (pname, pipe) in pipelines(sw) {
        for (si, stage) in pipe.stages.iter().enumerate() {
            for t in &stage.tables {
                let at = loc(pname, si, t);
                let keyed_on_template = t.key_fields().contains(&fields::TEMPLATE_ID);
                let acts: Vec<_> = t.actions().collect();
                let n = acts.len();
                for (ai, a) in acts.iter().enumerate() {
                    let is_default = ai + 1 == n;
                    for op in &a.ops {
                        if let PrimitiveOp::SetMcastGroup(g) = op {
                            if *g != 0 && !groups.contains(g) {
                                report.push(Diagnostic::error(
                                    "mcast-unknown-group",
                                    format!("{at} action {}", a.name),
                                    format!(
                                        "action selects multicast group {g} which is not configured"
                                    ),
                                    "install the group in the traffic manager before loading",
                                ));
                            }
                        }
                        if matches!(op, PrimitiveOp::Recirculate)
                            && (is_default || !keyed_on_template)
                        {
                            let why = if is_default {
                                "the table's default action recirculates, so every miss loops forever"
                            } else {
                                "the table is not keyed on meta.template_id, so the control plane cannot retire the loop"
                            };
                            report.push(Diagnostic::error(
                                "recirc-unbounded",
                                format!("{at} action {}", a.name),
                                format!("unbounded recirculation: {why}"),
                                "recirculate only from installed entries of a template-keyed table; the CPU bounds the loop by removing the entry",
                            ));
                        }
                    }
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass 6: gateway reachability
// ---------------------------------------------------------------------------

/// Detects gateway predicates that are statically false (`gateway-false`),
/// conjunctions that are semantically unsatisfiable under the proven field
/// values (`gateway-contradiction`) — both make the table dead logic — and
/// predicates that always hold and thus waste a gateway unit
/// (`gateway-redundant`, warning).
///
/// This used to be a syntactic pairwise interval check; it is now a thin
/// wrapper over the dataflow-based [`check_reachability`], which strictly
/// subsumes it: same-field pair contradictions still fall out of
/// sequential refinement, and contradictions only value flow can see
/// (a gateway against a field an earlier action pinned to a constant)
/// are caught too.
pub fn check_gateways(sw: &Switch) -> LintReport {
    analysis::check_reachability(sw)
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// One program pass: a named check function over a built switch, adapted
/// to the shared pass machinery.
struct SwitchPass {
    name: &'static str,
    check: fn(&Switch) -> LintReport,
}

impl<'a> Pass<&'a Switch, Infallible> for SwitchPass {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, sw: &mut &'a Switch, cx: &mut PassCx) -> Result<(), Infallible> {
        cx.diagnostics.merge((self.check)(sw));
        Ok(())
    }
}

/// The nine program checks as an ordered [`PassManager`] pipeline, in the
/// order [`lint_switch`] runs them (the historical six first, then the
/// dataflow-based passes).
pub fn switch_passes<'a>() -> PassManager<&'a Switch, Infallible> {
    let mut pm = PassManager::new();
    pm.register(SwitchPass { name: "stage-resources", check: check_stage_resources });
    pm.register(SwitchPass { name: "phv-liveness", check: check_phv_liveness });
    pm.register(SwitchPass { name: "salu-discipline", check: check_salu_discipline });
    pm.register(SwitchPass {
        name: "parse-graph",
        check: |_sw: &Switch| check_parse_graph(&ParseGraph::standard()),
    });
    pm.register(SwitchPass { name: "replication", check: check_replication });
    pm.register(SwitchPass { name: "gateways", check: check_gateways });
    pm.register(SwitchPass { name: "dead-field-edit", check: analysis::check_dead_field_edits });
    pm.register(SwitchPass {
        name: "unreachable-action",
        check: analysis::check_unreachable_actions,
    });
    pm.register(SwitchPass { name: "salu-range", check: analysis::check_salu_range });
    pm
}

/// Runs every pass over a built switch program (with the standard parser
/// graph) and returns the combined report.  Thin wrapper over
/// [`switch_passes`].
pub fn lint_switch(sw: &Switch) -> LintReport {
    let mut cx = PassCx::new();
    let mut target = sw;
    let _ = switch_passes().run(&mut target, &mut cx).unwrap_or_else(|e| match e {});
    cx.diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_pass_pipeline_matches_the_documented_order() {
        let pm = switch_passes();
        assert_eq!(
            pm.names(),
            vec![
                "stage-resources",
                "phv-liveness",
                "salu-discipline",
                "parse-graph",
                "replication",
                "gateways",
                "dead-field-edit",
                "unreachable-action",
                "salu-range"
            ]
        );
    }

    #[test]
    fn empty_switch_lints_clean() {
        let sw = Switch::new("sw", 1);
        let r = lint_switch(&sw);
        assert!(!r.has_errors(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }
}
