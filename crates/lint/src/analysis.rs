//! Semantic verifier passes built on the [`ht_ir::dataflow`] engine.
//!
//! [`analyze_switch`] lowers a built [`Switch`] program into the engine's
//! [`Cfg`] — parser entry → ingress tables/externs → traffic manager →
//! egress tables/externs → deparser exit, with a widened back edge when
//! the program can recirculate — and solves two problems over it:
//!
//! * a forward **value analysis** ([`Env`] of interval + known-bits
//!   [`ValueFact`]s, one per PHV field), whose transfer function mirrors
//!   the ASIC's masked execute semantics (`crate::op_reads` /
//!   [`ht_asic::action`]), havocs extern writes, and refines through
//!   gateway predicates;
//! * a backward **liveness analysis** ([`BitSet`] of live field ids) run
//!   as the forward solver over [`Cfg::reversed`].
//!
//! Four program passes consume the solutions:
//!
//! * [`check_reachability`] — gateway predicates that are statically
//!   false (`gateway-false`), semantically unsatisfiable under the proven
//!   field values (`gateway-contradiction` — strictly subsumes the old
//!   syntactic pair check), or tautological (`gateway-redundant`).
//! * [`check_dead_field_edits`] — writes to dynamic metadata that are
//!   provably overwritten before any read (`dead-field-edit`).
//! * [`check_unreachable_actions`] — installed table entries whose keys
//!   can never match the proven field values (`unreachable-action`).
//! * [`check_salu_range`] — SALU operands whose proven range exceeds the
//!   register lane and will silently truncate or wrap
//!   (`salu-range-overflow`), plus [`proven_nowrap_regs`], the
//!   no-overflow certificates the fuzz oracle cross-checks against
//!   execution traces.

use crate::{field_name, is_dynamic, op_reads, op_write, pipelines};
use ht_asic::action::PrimitiveOp;
use ht_asic::phv::{fields, mask_for, FieldId, FieldTable};
use ht_asic::register::{Cmp, CondExpr, RegId, SaluCond, SaluOperand, SaluProgram, SaluUpdate};
use ht_asic::switch::{Switch, PORT_UNSET};
use ht_asic::table::{Gateway, MatchKey, MatchKind, Table};
use ht_ir::dataflow::{solve, AbstractDomain, BitSet, Cfg, EdgeKind, Env, Solution, Transfer};
use ht_ir::{Diagnostic, LintReport, ValueFact};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Tables with more installed entries than this are summarized (every
/// field any action writes is havocked once) instead of evaluated
/// entry-by-entry — the false-positive precompute installs thousands of
/// exact entries and per-entry evaluation there buys nothing.
pub const SMALL_TABLE_MAX: usize = 64;

// ---------------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------------

/// One CFG node of the lowered pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// Packet arrival: front panel, CPU injection, or recirculation;
    /// intrinsic metadata resets here.
    Entry,
    /// A match-action table: `(pipe, stage, table)` with pipe 0 = ingress.
    Table(usize, usize, usize),
    /// A stateful extern: `(pipe, stage, extern)`.
    Ext(usize, usize, usize),
    /// The traffic manager: unicast pass-through joined with replica
    /// generation.
    Tm,
    /// Deparser exit; source of the recirculation back edge.
    Exit,
}

struct PipelineCfg {
    cfg: Cfg,
    nodes: Vec<Node>,
}

fn recirc_possible(sw: &Switch) -> bool {
    let any_op = pipelines(sw).iter().any(|(_, p)| {
        p.stages.iter().flat_map(|s| &s.tables).any(|t| {
            t.actions().any(|a| a.ops.iter().any(|op| matches!(op, PrimitiveOp::Recirculate)))
        })
    });
    any_op || sw.ports().any(|p| sw.mac(p).loopback)
}

fn build_cfg(sw: &Switch) -> PipelineCfg {
    let mut nodes = vec![Node::Entry];
    for (pi, (_, pipe)) in pipelines(sw).iter().enumerate() {
        for (si, stage) in pipe.stages.iter().enumerate() {
            for ti in 0..stage.tables.len() {
                nodes.push(Node::Table(pi, si, ti));
            }
            for ei in 0..stage.externs.len() {
                nodes.push(Node::Ext(pi, si, ei));
            }
        }
        if pi == 0 {
            nodes.push(Node::Tm);
        }
    }
    nodes.push(Node::Exit);
    let mut cfg = Cfg::new(nodes.len(), 0);
    for i in 0..nodes.len() - 1 {
        cfg.add_edge(i, i + 1, EdgeKind::Forward);
    }
    if recirc_possible(sw) {
        cfg.add_edge(nodes.len() - 1, 0, EdgeKind::Back);
    }
    PipelineCfg { cfg, nodes }
}

fn node_table(sw: &Switch, n: Node) -> Option<&Table> {
    match n {
        Node::Table(pi, si, ti) => {
            let pipe = if pi == 0 { &sw.ingress } else { &sw.egress };
            Some(&pipe.stages[si].tables[ti])
        }
        _ => None,
    }
}

fn node_loc(sw: &Switch, n: Node) -> String {
    match n {
        Node::Entry => "entry".into(),
        Node::Tm => "traffic manager".into(),
        Node::Exit => "exit".into(),
        Node::Table(pi, si, ti) => {
            let (pname, pipe) = pipelines(sw)[pi];
            format!("{pname} stage {si} table {}", pipe.stages[si].tables[ti].name())
        }
        Node::Ext(pi, si, ei) => {
            let (pname, pipe) = pipelines(sw)[pi];
            format!("{pname} stage {si} extern {}", pipe.stages[si].externs[ei].name())
        }
    }
}

// ---------------------------------------------------------------------------
// Value analysis
// ---------------------------------------------------------------------------

fn slot(f: FieldId) -> usize {
    f.0 as usize
}

/// The environment of a packet at arrival: standard (parser-filled) fields
/// span their full lane, dynamic metadata is zero-initialized.
fn boundary_env(ft: &FieldTable) -> Env {
    let slots = (0..ft.len() as u16)
        .map(|i| {
            let f = FieldId(i);
            if is_dynamic(f) {
                ValueFact::exact(0)
            } else {
                ValueFact::full(ft.mask(f))
            }
        })
        .collect();
    Env { slots }
}

/// Mirrors `Switch::reset_metadata`, which runs at every arrival
/// (including recirculation re-entry): intrinsic routing metadata is
/// cleared, timestamps and the ingress port are re-latched.
fn apply_entry_reset(env: &mut Env, ft: &FieldTable) {
    env.set(slot(fields::IG_PORT), ValueFact::full(ft.mask(fields::IG_PORT)));
    env.set(slot(fields::IG_TS), ValueFact::full(ft.mask(fields::IG_TS)));
    env.set(slot(fields::EG_TS), ValueFact::exact(0));
    env.set(slot(fields::EG_PORT), ValueFact::exact(PORT_UNSET));
    for f in [fields::MCAST_GRP, fields::RID, fields::RECIRC_FLAG, fields::DROP_FLAG] {
        env.set(slot(f), ValueFact::exact(0));
    }
}

/// Refines a fact through one gateway predicate; `None` = contradiction.
fn gw_refine(fact: &ValueFact, gw: &Gateway) -> Option<ValueFact> {
    match gw.cmp {
        Cmp::Eq => fact.intersect(gw.value, gw.value),
        Cmp::Ne => fact.exclude(gw.value),
        Cmp::Lt => {
            if gw.value == 0 {
                None
            } else {
                fact.intersect(0, gw.value - 1)
            }
        }
        Cmp::Le => fact.intersect(0, gw.value),
        Cmp::Gt => gw.value.checked_add(1).and_then(|lo| fact.intersect(lo, u64::MAX)),
        Cmp::Ge => fact.intersect(gw.value, u64::MAX),
    }
}

/// Whether the gateway provably holds for every value the fact allows.
fn gw_provably_true(fact: &ValueFact, gw: &Gateway) -> bool {
    match gw.cmp {
        Cmp::Eq => fact.as_const() == Some(gw.value),
        Cmp::Ne => !fact.contains(gw.value),
        Cmp::Lt => fact.hi < gw.value,
        Cmp::Le => fact.hi <= gw.value,
        Cmp::Gt => fact.lo > gw.value,
        Cmp::Ge => fact.lo >= gw.value,
    }
}

/// Abstractly executes one VLIW op, mirroring
/// [`ht_asic::action`]'s masked execute semantics.
fn apply_op(env: &mut Env, op: &PrimitiveOp, sw: &Switch) {
    let ft = &sw.fields;
    match op {
        PrimitiveOp::SetConst { dst, value } => {
            env.set(slot(*dst), ValueFact::set_const(*value, ft.mask(*dst)));
        }
        PrimitiveOp::CopyField { dst, src } => {
            let f = env.get(slot(*src)).copy_into(ft.mask(*dst));
            env.set(slot(*dst), f);
        }
        PrimitiveOp::AddConst { dst, value } => {
            let f = env.get(slot(*dst)).add(&ValueFact::exact(*value), ft.mask(*dst));
            env.set(slot(*dst), f);
        }
        PrimitiveOp::AddField { dst, src } => {
            let f = env.get(slot(*dst)).add(env.get(slot(*src)), ft.mask(*dst));
            env.set(slot(*dst), f);
        }
        PrimitiveOp::SubField { dst, src } => {
            let f = env.get(slot(*dst)).sub(env.get(slot(*src)), ft.mask(*dst));
            env.set(slot(*dst), f);
        }
        PrimitiveOp::AndConst { dst, value } => {
            let f = env.get(slot(*dst)).and_const(*value);
            env.set(slot(*dst), f);
        }
        PrimitiveOp::OrConst { dst, value } => {
            let f = env.get(slot(*dst)).or_const(*value, ft.mask(*dst));
            env.set(slot(*dst), f);
        }
        PrimitiveOp::ShiftRight { dst, bits } => {
            let f = env.get(slot(*dst)).shr(*bits);
            env.set(slot(*dst), f);
        }
        PrimitiveOp::Hash { dst, mask_bits, .. } => {
            env.set(slot(*dst), ValueFact::full(mask_for(*mask_bits).min(ft.mask(*dst))));
        }
        PrimitiveOp::RngUniform { dst, bits, offset } => {
            let span = mask_for((*bits).min(63));
            let mask = ft.mask(*dst);
            let fact = match offset.checked_add(span) {
                Some(hi) if hi <= mask => ValueFact::range(*offset, hi),
                _ => ValueFact::full(mask),
            };
            env.set(slot(*dst), fact);
        }
        PrimitiveOp::Salu { reg, program, .. } => {
            if let Some(out) = program.output {
                let lane = mask_for(sw.regs.array(*reg).width());
                let fact = match out.src {
                    ht_asic::register::SaluOutputSrc::CondFlag => ValueFact::range(0, 1),
                    _ => ValueFact::full(lane),
                };
                env.set(slot(out.dst), fact.copy_into(ft.mask(out.dst)));
            }
        }
        PrimitiveOp::SetEgressPort(p) => {
            env.set(slot(fields::EG_PORT), ValueFact::exact(u64::from(*p)));
        }
        PrimitiveOp::SetMcastGroup(g) => {
            env.set(slot(fields::MCAST_GRP), ValueFact::exact(u64::from(*g)));
        }
        PrimitiveOp::Recirculate => {
            env.set(slot(fields::RECIRC_FLAG), ValueFact::exact(1));
        }
        PrimitiveOp::Drop => {
            env.set(slot(fields::DROP_FLAG), ValueFact::exact(1));
        }
        PrimitiveOp::Digest { .. } | PrimitiveOp::NoOp => {}
    }
}

/// Facts the reporting sweep extracts while re-running a table's transfer.
enum TableFact {
    /// Refinement through the `idx`-th gateway emptied the environment:
    /// the table is dead logic.
    DeadTable,
    /// The `idx`-th installed entry (in [`Table::entries`] order) can
    /// never match; the field named proves it.
    UnreachableEntry { entry_idx: usize, field: FieldId },
}

/// Refines an environment through an entry's match key; `None` when the
/// entry provably cannot match, naming the disproving field.
fn entry_refine(env: &Env, t: &Table, key: &MatchKey) -> Result<Env, FieldId> {
    let mut e = env.clone();
    match key {
        MatchKey::Exact(vals) => {
            for (f, v) in t.key_fields().iter().zip(vals) {
                match e.get(slot(*f)).intersect(*v, *v) {
                    Some(r) => e.set(slot(*f), r),
                    None => return Err(*f),
                }
            }
        }
        MatchKey::Range(ranges) => {
            for (f, (lo, hi)) in t.key_fields().iter().zip(ranges) {
                match e.get(slot(*f)).intersect(*lo, *hi) {
                    Some(r) => e.set(slot(*f), r),
                    None => return Err(*f),
                }
            }
        }
        MatchKey::Ternary(pairs) => {
            for (f, (v, m)) in t.key_fields().iter().zip(pairs) {
                let fact = e.get(slot(*f));
                // A known bit that disagrees with the required pattern is
                // a contradiction; otherwise ternary keys refine nothing.
                if fact.known_mask & m & (fact.known_val ^ v) != 0 {
                    return Err(*f);
                }
            }
        }
        MatchKey::Index(_) => {}
    }
    Ok(e)
}

/// The abstract effect of one table on an input environment: the join of
/// the skip path (unless every gateway provably holds), the default
/// action, and each small-table entry's action on its key-refined input.
/// Big tables havoc their precomputed write summary instead.
fn table_flow(
    sw: &Switch,
    t: &Table,
    state: &Env,
    summary: Option<&[FieldId]>,
    facts: &mut Vec<TableFact>,
) -> Env {
    let mut refined = state.clone();
    let mut all_true = true;
    for gw in t.gateways() {
        let cur = *refined.get(slot(gw.field));
        if !gw_provably_true(&cur, gw) {
            all_true = false;
        }
        match gw_refine(&cur, gw) {
            Some(f) => refined.set(slot(gw.field), f),
            None => {
                facts.push(TableFact::DeadTable);
                // Dead logic: no action ever executes.
                return state.clone();
            }
        }
    }
    let mut out: Option<Env> = if all_true { None } else { Some(state.clone()) };
    let merge = |out: &mut Option<Env>, env: Env| match out {
        Some(o) => {
            o.join(&env);
        }
        None => *out = Some(env),
    };
    if let Some(written) = summary {
        let mut hav = refined.clone();
        for &f in written {
            hav.set(slot(f), ValueFact::full(sw.fields.mask(f)));
        }
        merge(&mut out, hav);
    } else {
        let mut dfl = refined.clone();
        for op in &t.default_action().ops {
            apply_op(&mut dfl, op, sw);
        }
        merge(&mut out, dfl);
        for (ei, (key, _prio, action)) in t.entries().iter().enumerate() {
            match entry_refine(&refined, t, key) {
                Err(field) => facts.push(TableFact::UnreachableEntry { entry_idx: ei, field }),
                Ok(mut e) => {
                    for op in &action.ops {
                        apply_op(&mut e, op, sw);
                    }
                    merge(&mut out, e);
                }
            }
        }
    }
    out.unwrap_or_else(|| state.clone())
}

struct ValueTransfer<'a> {
    sw: &'a Switch,
    nodes: &'a [Node],
    /// Write summaries for big tables (`None` for small ones), aligned
    /// with `nodes`.
    summaries: Vec<Option<Vec<FieldId>>>,
}

impl<'a> ValueTransfer<'a> {
    fn new(sw: &'a Switch, nodes: &'a [Node]) -> Self {
        let summaries = nodes
            .iter()
            .map(|&n| {
                let t = node_table(sw, n)?;
                if t.entry_count() <= SMALL_TABLE_MAX {
                    return None;
                }
                let mut written: Vec<FieldId> = Vec::new();
                for a in t.actions() {
                    for op in &a.ops {
                        if let Some((w, _)) = op_write(op) {
                            if !written.contains(&w) {
                                written.push(w);
                            }
                        }
                    }
                }
                Some(written)
            })
            .collect();
        ValueTransfer { sw, nodes, summaries }
    }
}

impl Transfer<Env> for ValueTransfer<'_> {
    fn boundary(&self) -> Env {
        boundary_env(&self.sw.fields)
    }

    fn flow(&self, node: usize, state: &Env) -> Env {
        let ft = &self.sw.fields;
        match self.nodes[node] {
            Node::Entry => {
                let mut out = state.clone();
                apply_entry_reset(&mut out, ft);
                out
            }
            Node::Exit => state.clone(),
            Node::Tm => {
                // Packets reaching the TM survived the drop check.
                let mut base = state.clone();
                if let Some(f) = base.get(slot(fields::DROP_FLAG)).intersect(0, 0) {
                    base.set(slot(fields::DROP_FLAG), f);
                }
                // Unicast pass-through joined with replica generation
                // (replicas re-arrive with fresh rid/egress routing).
                let mut rep = base.clone();
                rep.set(slot(fields::RID), ValueFact::full(ft.mask(fields::RID)));
                rep.set(slot(fields::EG_PORT), ValueFact::full(ft.mask(fields::EG_PORT)));
                rep.set(slot(fields::MCAST_GRP), ValueFact::exact(0));
                rep.set(slot(fields::RECIRC_FLAG), ValueFact::exact(0));
                let mut out = base;
                out.join(&rep);
                out
            }
            Node::Ext(pi, si, ei) => {
                let (_, pipe) = pipelines(self.sw)[pi];
                let e = &pipe.stages[si].externs[ei];
                let mut out = state.clone();
                for f in e.writes() {
                    out.set(slot(f), ValueFact::full(ft.mask(f)));
                }
                out
            }
            n @ Node::Table(..) => {
                let t = node_table(self.sw, n).expect("table node");
                let mut sink = Vec::new();
                table_flow(self.sw, t, state, self.summaries[node].as_deref(), &mut sink)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Liveness analysis (backward, over the reversed CFG)
// ---------------------------------------------------------------------------

/// Live-in of one table given live-out: per-action backward scans (an
/// action's write kills, its reads generate, in op order), unioned across
/// actions, plus gateway and key reads, plus the skip path when gateways
/// may fail.
fn table_live(t: &Table, live_out: &BitSet) -> BitSet {
    let mut result = if t.gateways().is_empty() { BitSet::new() } else { live_out.clone() };
    for gw in t.gateways() {
        result.insert(slot(gw.field));
    }
    for k in t.key_fields() {
        result.insert(slot(*k));
    }
    for a in t.actions() {
        let mut l = live_out.clone();
        for op in a.ops.iter().rev() {
            if let Some((w, _)) = op_write(op) {
                l.remove(slot(w));
            }
            for r in op_reads(op) {
                l.insert(slot(r));
            }
        }
        result.join(&l);
    }
    result
}

struct LiveTransfer<'a> {
    sw: &'a Switch,
    nodes: &'a [Node],
}

impl Transfer<BitSet> for LiveTransfer<'_> {
    fn boundary(&self) -> BitSet {
        // Everything the deparser emits or the MAC/TM consumes: all
        // standard fields are observable at exit.
        let mut b = BitSet::new();
        for i in 0..fields::STANDARD_COUNT {
            b.insert(usize::from(i));
        }
        b
    }

    fn flow(&self, node: usize, live: &BitSet) -> BitSet {
        match self.nodes[node] {
            Node::Entry | Node::Tm | Node::Exit => live.clone(),
            Node::Ext(pi, si, ei) => {
                let (_, pipe) = pipelines(self.sw)[pi];
                let mut l = live.clone();
                // Externs write conditionally — no kill; their reads gen.
                for r in pipe.stages[si].externs[ei].reads() {
                    l.insert(slot(r));
                }
                l
            }
            n @ Node::Table(..) => table_live(node_table(self.sw, n).expect("table node"), live),
        }
    }
}

// ---------------------------------------------------------------------------
// The solved analysis
// ---------------------------------------------------------------------------

/// Both dataflow solutions over one built switch program.
pub struct SwitchAnalysis {
    nodes: Vec<Node>,
    recirc: bool,
    /// Forward value analysis: `value.pre[n]` is the proven environment
    /// on entry to node `n`.
    value: Solution<Env>,
    /// Backward liveness run forward over the reversed CFG:
    /// `live.pre[n]` is the live-out set of node `n` (reversed-graph
    /// pre-state = forward post-state).
    live: Solution<BitSet>,
}

/// Solves both analyses; `None` if a solver exceeded its visit budget
/// (lawful widening makes this unreachable, but callers degrade to "no
/// facts proven" rather than panicking inside a build).
pub fn analyze_switch(sw: &Switch) -> Option<SwitchAnalysis> {
    let PipelineCfg { cfg, nodes } = build_cfg(sw);
    let recirc = recirc_possible(sw);
    let value = solve(&cfg, &ValueTransfer::new(sw, &nodes)).ok()?;
    let exit = nodes.len() - 1;
    let live = solve(&cfg.reversed(exit), &LiveTransfer { sw, nodes: &nodes }).ok()?;
    Some(SwitchAnalysis { nodes, recirc, value, live })
}

impl SwitchAnalysis {
    /// Worklist iterations of the (value, liveness) solvers — tests
    /// assert these stay small to prove widening terminates.
    pub fn iterations(&self) -> (usize, usize) {
        (self.value.iterations, self.live.iterations)
    }

    /// Whether the pipeline CFG carries a recirculation back edge.
    pub fn has_back_edge(&self) -> bool {
        self.recirc
    }

    fn table_nodes(&self) -> impl Iterator<Item = (usize, Node)> + '_ {
        self.nodes.iter().copied().enumerate().filter(|(_, n)| matches!(n, Node::Table(..)))
    }
}

// ---------------------------------------------------------------------------
// Pass: reachability (gateway-false / gateway-contradiction / redundant)
// ---------------------------------------------------------------------------

/// The set of field values syntactically satisfying one gateway given the
/// field width; `None` = empty.
fn gw_syntactically_false(gw: &Gateway, mask: u64) -> bool {
    match gw.cmp {
        Cmp::Eq => gw.value > mask,
        Cmp::Ne => false,
        Cmp::Lt => gw.value == 0,
        Cmp::Le => false,
        Cmp::Gt => gw.value >= mask,
        Cmp::Ge => gw.value > mask,
    }
}

fn gw_is_tautology(gw: &Gateway, mask: u64) -> bool {
    match gw.cmp {
        Cmp::Eq => false,
        Cmp::Ne => gw.value > mask,
        Cmp::Lt => gw.value > mask,
        Cmp::Le => gw.value >= mask,
        Cmp::Gt => false,
        Cmp::Ge => gw.value == 0,
    }
}

fn gw_text(ft: &FieldTable, gw: &Gateway) -> String {
    let op = match gw.cmp {
        Cmp::Eq => "==",
        Cmp::Ne => "!=",
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
    };
    format!("{} {op} {}", ft.def(gw.field).name, gw.value)
}

/// Reachability over the value analysis: reports gateways that are
/// statically false for the field width (`gateway-false`, error),
/// semantically unsatisfiable under the proven environment — including
/// the old syntactic pair contradictions *and* contradictions only value
/// flow can see (`gateway-contradiction`, error) — and syntactic
/// tautologies (`gateway-redundant`, warning).
pub fn check_reachability(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let ft = &sw.fields;
    let Some(a) = analyze_switch(sw) else {
        return report;
    };
    for (ni, n) in a.table_nodes() {
        let t = node_table(sw, n).expect("table node");
        let at = node_loc(sw, n);
        for gw in t.gateways() {
            if gw_syntactically_false(gw, ft.mask(gw.field)) {
                report.push(Diagnostic::error(
                    "gateway-false",
                    at.clone(),
                    format!(
                        "gateway `{}` can never hold for a {}-bit field; the table is dead",
                        gw_text(ft, gw),
                        ft.width(gw.field)
                    ),
                    "remove the table or fix the constant",
                ));
            } else if gw_is_tautology(gw, ft.mask(gw.field)) {
                report.push(Diagnostic::warning(
                    "gateway-redundant",
                    at.clone(),
                    format!("gateway `{}` always holds and wastes a gateway unit", gw_text(ft, gw)),
                    "drop the predicate",
                ));
            }
        }
        let Some(pre) = &a.value.pre[ni] else { continue };
        // Sequentially refine the proven environment through the gateway
        // conjunction; the first refinement that empties it proves the
        // table dead.  Skip gateways that are already reported as
        // syntactically false.
        if t.gateways().iter().any(|gw| gw_syntactically_false(gw, ft.mask(gw.field))) {
            continue;
        }
        let mut env = pre.clone();
        for gw in t.gateways() {
            let cur = *env.get(slot(gw.field));
            match gw_refine(&cur, gw) {
                Some(f) => env.set(slot(gw.field), f),
                None => {
                    report.push(Diagnostic::error(
                        "gateway-contradiction",
                        at.clone(),
                        format!(
                            "gateway `{}` cannot hold: `{}` is proven in [{}, {}] here; \
                             the table is dead",
                            gw_text(ft, gw),
                            field_name(ft, gw.field),
                            cur.lo,
                            cur.hi
                        ),
                        "remove the table or correct the predicate",
                    ));
                    break;
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass: dead field edits
// ---------------------------------------------------------------------------

/// Reports writes to dynamic metadata that are provably overwritten (or
/// never observable) before any read on every path (`dead-field-edit`,
/// warning).  Fields nothing reads anywhere are left to `phv-dead-write`;
/// this pass claims only edits whose field *is* read somewhere, just never
/// after this particular write.
pub fn check_dead_field_edits(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let Some(a) = analyze_switch(sw) else {
        return report;
    };
    let ft = &sw.fields;

    // Fields read anywhere (tables, gateways, keys, externs) — writes to
    // never-read fields are phv-dead-write's finding, not ours.
    let mut read_anywhere: HashSet<FieldId> = HashSet::new();
    for (_, pipe) in pipelines(sw) {
        for stage in &pipe.stages {
            for t in &stage.tables {
                for gw in t.gateways() {
                    read_anywhere.insert(gw.field);
                }
                read_anywhere.extend(t.key_fields().iter().copied());
                for act in t.actions() {
                    for op in &act.ops {
                        read_anywhere.extend(op_reads(op));
                    }
                }
            }
            for e in &stage.externs {
                read_anywhere.extend(e.reads());
            }
        }
    }

    for (ni, n) in a.table_nodes() {
        let t = node_table(sw, n).expect("table node");
        // live.pre over the reversed graph = live-out in forward order.
        let Some(live_out) = &a.live.pre[ni] else { continue };
        let at = node_loc(sw, n);
        let mut reported: HashSet<(FieldId, String)> = HashSet::new();
        for act in t.actions() {
            let mut live = live_out.clone();
            for op in act.ops.iter().rev() {
                if let Some((w, plain)) = op_write(op) {
                    if plain
                        && is_dynamic(w)
                        && !live.contains(slot(w))
                        && read_anywhere.contains(&w)
                        && reported.insert((w, act.name.clone()))
                    {
                        report.push(Diagnostic::warning(
                            "dead-field-edit",
                            format!("{at} action {}", act.name),
                            format!(
                                "write to `{}` is dead: every later path overwrites it \
                                 before any read",
                                field_name(ft, w)
                            ),
                            "remove the write or move the consumer before the overwrite",
                        ));
                    }
                    live.remove(slot(w));
                }
                for r in op_reads(op) {
                    live.insert(slot(r));
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass: unreachable table entries
// ---------------------------------------------------------------------------

fn key_text(ft: &FieldTable, t: &Table, key: &MatchKey) -> String {
    let names = |vals: Vec<String>| {
        t.key_fields()
            .iter()
            .zip(vals)
            .map(|(f, v)| format!("{}={v}", ft.def(*f).name))
            .collect::<Vec<_>>()
            .join(", ")
    };
    match key {
        MatchKey::Exact(vs) => names(vs.iter().map(u64::to_string).collect()),
        MatchKey::Ternary(ps) => names(ps.iter().map(|(v, m)| format!("{v:#x}&{m:#x}")).collect()),
        MatchKey::Range(rs) => names(rs.iter().map(|(lo, hi)| format!("[{lo},{hi}]")).collect()),
        MatchKey::Index(i) => format!("index {i}"),
    }
}

/// Reports installed entries whose keys can never match under the proven
/// field values (`unreachable-action`, warning).  Index tables and tables
/// above [`SMALL_TABLE_MAX`] entries are skipped.
pub fn check_unreachable_actions(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let Some(a) = analyze_switch(sw) else {
        return report;
    };
    let ft = &sw.fields;
    for (ni, n) in a.table_nodes() {
        let t = node_table(sw, n).expect("table node");
        if t.kind() == MatchKind::Index || t.entry_count() > SMALL_TABLE_MAX {
            continue;
        }
        let Some(pre) = &a.value.pre[ni] else { continue };
        let mut facts = Vec::new();
        let _ = table_flow(sw, t, pre, None, &mut facts);
        let entries = t.entries();
        let at = node_loc(sw, n);
        for fact in facts {
            if let TableFact::UnreachableEntry { entry_idx, field } = fact {
                let (key, _, action) = &entries[entry_idx];
                let cur = pre.get(slot(field));
                report.push(Diagnostic::warning(
                    "unreachable-action",
                    format!("{at} action {}", action.name),
                    format!(
                        "entry ({}) can never match: `{}` is proven in [{}, {}] here",
                        key_text(ft, t, key),
                        field_name(ft, field),
                        cur.lo,
                        cur.hi
                    ),
                    "remove the entry or widen the producing edit",
                ));
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Pass: SALU value ranges
// ---------------------------------------------------------------------------

fn operand_hi(op: &SaluOperand, env: &Env) -> u64 {
    match op {
        SaluOperand::Const(c) => *c,
        SaluOperand::Field(f) => env.get(slot(*f)).hi,
    }
}

fn operand_text(ft: &FieldTable, op: &SaluOperand) -> String {
    match op {
        SaluOperand::Const(c) => c.to_string(),
        SaluOperand::Field(f) => format!("`{}`", ft.def(*f).name),
    }
}

/// Reports SALU update operands whose proven range exceeds the register
/// lane (`salu-range-overflow`, warning): a `Set` silently truncates, an
/// `Add`/`Sub` wraps the stored value.
pub fn check_salu_range(sw: &Switch) -> LintReport {
    let mut report = LintReport::new();
    let Some(a) = analyze_switch(sw) else {
        return report;
    };
    let ft = &sw.fields;
    for (ni, n) in a.table_nodes() {
        let t = node_table(sw, n).expect("table node");
        let Some(pre) = &a.value.pre[ni] else { continue };
        // Actions execute under the gateway-refined environment.
        let mut env = pre.clone();
        for gw in t.gateways() {
            if let Some(f) = gw_refine(env.get(slot(gw.field)), gw) {
                env.set(slot(gw.field), f);
            }
        }
        let at = node_loc(sw, n);
        for act in t.actions() {
            for op in &act.ops {
                let PrimitiveOp::Salu { reg, program, .. } = op else { continue };
                let width = sw.regs.array(*reg).width();
                let lane = mask_for(width);
                for (upd, branch) in [(program.on_true, "on_true"), (program.on_false, "on_false")]
                {
                    let (operand, verb) = match upd {
                        SaluUpdate::Keep => continue,
                        SaluUpdate::Set(o) => (o, "truncates"),
                        SaluUpdate::Add(o) | SaluUpdate::Sub(o) => (o, "wraps"),
                    };
                    let hi = operand_hi(&operand, &env);
                    if hi > lane {
                        report.push(Diagnostic::warning(
                            "salu-range-overflow",
                            format!("{at} action {}", act.name),
                            format!(
                                "{branch} operand {} may reach {hi}, beyond the {width}-bit \
                                 lane of register array `{}`; the SALU silently {verb}",
                                operand_text(ft, &operand),
                                sw.regs.array(*reg).name()
                            ),
                            "widen the register array or mask the operand first",
                        ));
                    }
                }
            }
        }
    }
    report
}

/// Whether one SALU program provably never wraps its register lane:
/// every update is `Keep`, a `Set` of an operand proven within the lane,
/// or the guarded-increment idiom `if reg < K { reg += c }` with
/// `K-1+c ≤ lane`.
fn salu_program_nowrap(prog: &SaluProgram, env: &Env, lane: u64) -> bool {
    let upd_ok = |u: &SaluUpdate| match u {
        SaluUpdate::Keep => true,
        SaluUpdate::Set(o) => operand_hi(o, env) <= lane,
        SaluUpdate::Add(_) | SaluUpdate::Sub(_) => false,
    };
    if upd_ok(&prog.on_true) && upd_ok(&prog.on_false) {
        return true;
    }
    if let Some(SaluCond { expr: CondExpr::Reg, cmp: Cmp::Lt, rhs: SaluOperand::Const(k) }) =
        prog.condition
    {
        if let (SaluUpdate::Add(SaluOperand::Const(c)), SaluUpdate::Keep) =
            (prog.on_true, prog.on_false)
        {
            return k
                .checked_sub(1)
                .and_then(|km1| km1.checked_add(c))
                .is_some_and(|max| max <= lane);
        }
    }
    false
}

/// Register arrays proven never to wrap: every table-side SALU program
/// touching them is no-wrap under the value analysis, and no extern owns
/// them (extern lowering is outside the analysis).  The fuzz oracle
/// cross-checks these certificates against execution-trace wrap events.
pub fn proven_nowrap_regs(sw: &Switch) -> Vec<RegId> {
    let Some(a) = analyze_switch(sw) else {
        return Vec::new();
    };
    let extern_owned: HashSet<RegId> = pipelines(sw)
        .iter()
        .flat_map(|(_, p)| p.stages.iter())
        .flat_map(|s| s.externs.iter())
        .flat_map(|e| e.registers())
        .collect();
    let mut touched: Vec<RegId> = Vec::new();
    let mut broken: HashSet<RegId> = HashSet::new();
    for (ni, n) in a.table_nodes() {
        let t = node_table(sw, n).expect("table node");
        let env = match &a.value.pre[ni] {
            Some(pre) => {
                let mut env = pre.clone();
                for gw in t.gateways() {
                    if let Some(f) = gw_refine(env.get(slot(gw.field)), gw) {
                        env.set(slot(gw.field), f);
                    }
                }
                env
            }
            None => continue,
        };
        for act in t.actions() {
            for op in &act.ops {
                let PrimitiveOp::Salu { reg, program, .. } = op else { continue };
                if !touched.contains(reg) {
                    touched.push(*reg);
                }
                let lane = mask_for(sw.regs.array(*reg).width());
                if !salu_program_nowrap(program, &env, lane) {
                    broken.insert(*reg);
                }
            }
        }
    }
    touched.retain(|r| !broken.contains(r) && !extern_owned.contains(r));
    touched
}

// ---------------------------------------------------------------------------
// Fact dumps (htctl analyze --dump-facts)
// ---------------------------------------------------------------------------

/// The fact-dump views `htctl analyze --dump-facts=PASS` accepts.
pub const FACT_PASSES: [&str; 4] = ["value", "liveness", "reachability", "salu-range"];

/// Renders one analysis view as deterministic text; `None` for an unknown
/// pass name (see [`FACT_PASSES`]).
pub fn dump_facts(sw: &Switch, pass: &str) -> Option<String> {
    let a = analyze_switch(sw)?;
    let ft = &sw.fields;
    let mut out = String::new();
    let w = &mut out;
    match pass {
        "value" => {
            let _ = writeln!(w, "# proven field intervals on entry to each table");
            for (ni, n) in a.table_nodes() {
                let Some(pre) = &a.value.pre[ni] else { continue };
                let _ = writeln!(w, "{}", node_loc(sw, n));
                for (i, fact) in pre.slots.iter().enumerate() {
                    let f = FieldId(i as u16);
                    if *fact == ValueFact::full(ft.mask(f)) {
                        continue;
                    }
                    let _ = writeln!(
                        w,
                        "  {} in [{}, {}]{}",
                        ft.def(f).name,
                        fact.lo,
                        fact.hi,
                        fact.as_const().map_or(String::new(), |_| " (const)".into())
                    );
                }
            }
        }
        "liveness" => {
            let _ = writeln!(w, "# fields live after each table");
            for (ni, n) in a.table_nodes() {
                let Some(live) = &a.live.pre[ni] else { continue };
                let names: Vec<&str> = live
                    .iter()
                    .filter(|&b| b < ft.len())
                    .map(|b| ft.def(FieldId(b as u16)).name.as_str())
                    .collect();
                let _ = writeln!(w, "{}: {}", node_loc(sw, n), names.join(" "));
            }
        }
        "reachability" => {
            let _ = writeln!(w, "# table and entry reachability");
            for (ni, n) in a.table_nodes() {
                let t = node_table(sw, n).expect("table node");
                let Some(pre) = &a.value.pre[ni] else {
                    let _ = writeln!(w, "{}: UNREACHABLE", node_loc(sw, n));
                    continue;
                };
                let mut facts = Vec::new();
                let summary = (t.entry_count() > SMALL_TABLE_MAX).then(Vec::new);
                let _ = table_flow(sw, t, pre, summary.as_deref(), &mut facts);
                let dead = facts.iter().any(|f| matches!(f, TableFact::DeadTable));
                let unreachable = facts
                    .iter()
                    .filter(|f| matches!(f, TableFact::UnreachableEntry { .. }))
                    .count();
                let _ = writeln!(
                    w,
                    "{}: {} ({} entries, {} unreachable)",
                    node_loc(sw, n),
                    if dead { "DEAD" } else { "reachable" },
                    t.entry_count(),
                    unreachable
                );
            }
        }
        "salu-range" => {
            let _ = writeln!(w, "# register arrays proven never to wrap");
            for reg in proven_nowrap_regs(sw) {
                let arr = sw.regs.array(reg);
                let _ = writeln!(w, "{} ({} x {}-bit)", arr.name(), arr.depth(), arr.width());
            }
        }
        _ => return None,
    }
    Some(out)
}
