//! Flat key spaces for the false-positive precompute (§5.2).
//!
//! The precompute and the Fig. 17 experiment enumerate millions of keys,
//! each a fixed-width tuple of `u64` field values.  Representing that as
//! `Vec<Vec<u64>>` costs one heap allocation per key; [`KeySpace`] stores
//! all keys in a single contiguous buffer with the width factored out, so
//! building and iterating a two-million-key space touches exactly one
//! allocation and rows are handed out as `&[u64]` slices.

use std::cmp::Ordering;

/// A set of fixed-width keys in one contiguous `u64` buffer.
///
/// Row `i` occupies `buf[i*width .. (i+1)*width]`.  The key count is
/// tracked explicitly so zero-width keys (an empty `distinct(keys=[])`
/// list is expressible in the surface syntax) still have a well-defined
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpace {
    width: usize,
    len: usize,
    buf: Vec<u64>,
}

impl KeySpace {
    /// An empty key space whose keys will have `width` fields each.
    pub fn new(width: usize) -> Self {
        KeySpace { width, len: 0, buf: Vec::new() }
    }

    /// An empty key space with room for `keys` keys pre-allocated.
    pub fn with_capacity(width: usize, keys: usize) -> Self {
        KeySpace { width, len: 0, buf: Vec::with_capacity(width * keys) }
    }

    /// Appends one key.
    ///
    /// # Panics
    /// If `key.len()` differs from the space's width.
    pub fn push(&mut self, key: &[u64]) {
        assert_eq!(key.len(), self.width, "key width mismatch");
        self.buf.extend_from_slice(key);
        self.len += 1;
    }

    /// Appends every key of `other`.
    ///
    /// # Panics
    /// If the widths differ.
    pub fn extend_from_space(&mut self, other: &KeySpace) {
        assert_eq!(other.width, self.width, "key width mismatch");
        self.buf.extend_from_slice(&other.buf[..other.len * other.width]);
        self.len += other.len;
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the space holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fields per key.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The `i`-th key as a slice.
    ///
    /// # Panics
    /// If `i` is out of bounds.
    pub fn key(&self, i: usize) -> &[u64] {
        assert!(i < self.len, "key index {i} out of bounds (len {})", self.len);
        &self.buf[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over the keys in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        let w = self.width;
        (0..self.len).map(move |i| &self.buf[i * w..(i + 1) * w])
    }

    /// Builds a space from cloned rows (all rows must share one width).
    ///
    /// # Panics
    /// If the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<u64>]) -> Self {
        let width = rows.first().map_or(0, Vec::len);
        let mut s = KeySpace::with_capacity(width, rows.len());
        for r in rows {
            s.push(r);
        }
        s
    }

    /// Clones the keys back out as rows (compat with `Vec<Vec<u64>>` APIs).
    pub fn to_rows(&self) -> Vec<Vec<u64>> {
        self.iter().map(<[u64]>::to_vec).collect()
    }

    /// Sorts the keys lexicographically and removes duplicates, matching
    /// `Vec<Vec<u64>>`'s `sort_unstable(); dedup()` row order.
    pub fn sort_dedup(&mut self) {
        let mut order: Vec<u32> = (0..self.len as u32).collect();
        order.sort_unstable_by(|&a, &b| cmp_rows(&self.buf, self.width, a as usize, b as usize));
        let mut out = Vec::with_capacity(self.buf.len());
        let mut kept = 0usize;
        let mut prev: Option<usize> = None;
        for &i in &order {
            let i = i as usize;
            if let Some(p) = prev {
                if cmp_rows(&self.buf, self.width, p, i) == Ordering::Equal {
                    continue;
                }
            }
            out.extend_from_slice(&self.buf[i * self.width..(i + 1) * self.width]);
            kept += 1;
            prev = Some(i);
        }
        self.buf = out;
        // Zero-width keys are all equal, so `kept` is at most 1 there too.
        self.len = kept;
    }
}

fn cmp_rows(buf: &[u64], width: usize, a: usize, b: usize) -> Ordering {
    buf[a * width..(a + 1) * width].cmp(&buf[b * width..(b + 1) * width])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut s = KeySpace::new(2);
        s.push(&[1, 2]);
        s.push(&[3, 4]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.width(), 2);
        assert_eq!(s.key(0), &[1, 2]);
        assert_eq!(s.key(1), &[3, 4]);
        let rows: Vec<&[u64]> = s.iter().collect();
        assert_eq!(rows, vec![&[1u64, 2][..], &[3, 4]]);
    }

    #[test]
    fn round_trips_rows() {
        let rows = vec![vec![5u64, 6], vec![7, 8], vec![1, 2]];
        let s = KeySpace::from_rows(&rows);
        assert_eq!(s.to_rows(), rows);
    }

    #[test]
    fn sort_dedup_matches_vec_of_rows() {
        let rows = vec![vec![3u64, 1], vec![1, 2], vec![3, 1], vec![1, 1], vec![1, 2]];
        let mut s = KeySpace::from_rows(&rows);
        s.sort_dedup();
        let mut expected = rows;
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(s.to_rows(), expected);
    }

    #[test]
    fn zero_width_keys_are_supported() {
        let mut s = KeySpace::new(0);
        s.push(&[]);
        s.push(&[]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.key(1), &[] as &[u64]);
        assert_eq!(s.iter().count(), 2);
        s.sort_dedup();
        assert_eq!(s.len(), 1, "zero-width keys are all duplicates");
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn push_rejects_wrong_width() {
        let mut s = KeySpace::new(2);
        s.push(&[1]);
    }
}
