//! Template-side IR: what each trigger lowers to (§5.1).
//!
//! A [`TemplateSpec`] is the packet-generation half of a compiled module —
//! the constant header values and payload the switch CPU bakes into the
//! template, the mcast port set, the replicator's rate-control interval,
//! and the editor modifications.

use crate::field::HeaderField;
use ht_asic::time::SimTime;

/// L4 protocol of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4Proto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// No L4 header.
    None,
}

impl L4Proto {
    /// Lower-case spelling used in IR dumps (`tcp`, `udp`, `none`).
    pub fn name(&self) -> &'static str {
        match self {
            L4Proto::Tcp => "tcp",
            L4Proto::Udp => "udp",
            L4Proto::None => "none",
        }
    }
}

/// One editor modification (§5.1 "Editor": the four modification types).
#[derive(Debug, Clone, PartialEq)]
pub enum EditSpec {
    /// Set the field from a value list indexed by the per-template packet
    /// id (modification type 2).
    ValueList {
        /// Target field.
        field: HeaderField,
        /// The values, walked in order and wrapped.
        values: Vec<u64>,
    },
    /// Arithmetic progression via a register (modification type 3).
    Progression {
        /// Target field.
        field: HeaderField,
        /// First value.
        start: u64,
        /// Last value (inclusive); wraps back to `start`.
        end: u64,
        /// Step.
        step: u64,
    },
    /// Uniform random draw `[offset, offset + 2^bits)` — the hardware RNG
    /// primitive with its power-of-two scope limitation (§6.1).
    RandomUniform {
        /// Target field.
        field: HeaderField,
        /// Range exponent.
        bits: u32,
        /// Offset compensating the zero lower bound.
        offset: u64,
    },
    /// Inverse-transform table for arbitrary distributions (modification
    /// type 4, "implemented with two tables").
    RandomTable {
        /// Target field.
        field: HeaderField,
        /// `2^bits` quantile values (the second table); the first table is
        /// the uniform RNG.
        values: Vec<u64>,
        /// Table exponent.
        bits: u32,
    },
}

impl EditSpec {
    /// The edited field.
    pub fn field(&self) -> HeaderField {
        match self {
            EditSpec::ValueList { field, .. }
            | EditSpec::Progression { field, .. }
            | EditSpec::RandomUniform { field, .. }
            | EditSpec::RandomTable { field, .. } => *field,
        }
    }
}

/// A field copied from a captured packet into a triggered response
/// (stateless connections, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCopy {
    /// Field of the generated packet.
    pub dst: HeaderField,
    /// Field of the captured packet.
    pub src: HeaderField,
    /// Constant offset (e.g. `ack_no = seq_no + 1`).
    pub offset: i64,
}

/// A compiled template packet.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateSpec {
    /// Template id (1-based; 0 means "not a template" in the PHV).
    pub id: u16,
    /// Source trigger name.
    pub trigger_name: String,
    /// Frame length in bytes.
    pub frame_len: usize,
    /// Constant payload bytes.
    pub payload: Vec<u8>,
    /// L4 protocol.
    pub protocol: L4Proto,
    /// Constant header initializations (done by the switch CPU).
    pub base: Vec<(HeaderField, u64)>,
    /// Rate-control interval; `None` = replicate at every template arrival
    /// (line rate).
    pub interval: Option<SimTime>,
    /// Random inter-departure time, when the interval is drawn from a
    /// distribution instead of constant (§3.1).
    pub interval_dist: Option<EditSpec>,
    /// Egress ports the mcast engine replicates to.
    pub ports: Vec<u16>,
    /// How many times the value lists are replayed (0 = forever).
    pub loop_count: u64,
    /// Editor modifications.
    pub edits: Vec<EditSpec>,
    /// For query-based triggers: the capturing query.
    pub source_query: Option<String>,
    /// Field copies from the captured packet.
    pub response_copies: Vec<ResponseCopy>,
}
