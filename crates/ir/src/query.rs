//! Query-side IR: what each packet stream query lowers to (§5.2).

use crate::field::{CmpOp, HeaderField, NtField, Predicate, QuerySource, ReduceFunc};
use crate::hashcfg::HashConfig;

/// Aggregation kind of a compiled query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// No aggregation: the query only captures packets (stateless
    /// connections) or counts all packets.
    PassThrough,
    /// One global aggregate (e.g. total bytes for throughput).
    ReduceGlobal {
        /// The function.
        func: ReduceFunc,
    },
    /// Per-key aggregation via the counter-based engine.
    ReduceKeyed {
        /// Key fields.
        keys: Vec<HeaderField>,
        /// The function.
        func: ReduceFunc,
    },
    /// Distinct key counting via the counter-based engine.
    Distinct {
        /// Key fields.
        keys: Vec<HeaderField>,
    },
}

/// Per-query false-positive configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FpConfig {
    /// Hash configuration.
    pub hash: HashConfig,
    /// Precomputed exact-key-matching entries.
    pub entries: Vec<Vec<u64>>,
    /// Size of the enumerated key space (diagnostic).
    pub space_size: usize,
}

/// A compiled query.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledQuery {
    /// Query name.
    pub name: String,
    /// Monitored traffic.
    pub source: QuerySource,
    /// Conjunction of filter predicates.
    pub filters: Vec<Predicate>,
    /// Projection (determines the reduce value; `pkt_len` for throughput).
    pub map: Vec<NtField>,
    /// Aggregation kind.
    pub kind: QueryKind,
    /// Filter over the running reduce result (web testing's
    /// `.filter(count < 5)`).
    pub result_filter: Option<(CmpOp, u64)>,
    /// Triggers fired by packets this query captures.
    pub capture_for: Vec<String>,
    /// Exact-key-matching configuration for keyed queries.
    pub fp: Option<FpConfig>,
}
