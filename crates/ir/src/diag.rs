//! Diagnostics shared by every pass: lowering passes in the compiler,
//! program passes in the verifier, and any backend that wants to report.
//!
//! These types originated in the static verifier (`ht-lint`) and moved
//! here when lowering and verification were unified behind one pass
//! manager; `ht-lint` re-exports them, so both spellings name the same
//! types.

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but loadable; reported, does not block.
    Warning,
    /// The program cannot (or must not) be loaded.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A resolved source position in the NTAPI task text a finding traces
/// back to: file, 1-based line/column, and a pre-rendered snippet of the
/// offending line (gutter + caret underline).
///
/// Purely additive provenance: a diagnostic without a span renders and
/// serializes exactly as it did before spans existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpan {
    /// Task or module file the finding points into.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Pre-rendered source snippet (may span several physical lines);
    /// empty when the source text was unavailable.
    pub snippet: String,
}

impl SourceSpan {
    /// Renders the `file:line:col` anchor.
    pub fn render(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

/// One finding of a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `salu-raw-hazard`.
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Where in the program the finding anchors, e.g.
    /// `ingress stage 3 table q0_reduce`.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
    /// Source provenance, when the front end could resolve the finding
    /// back to the task text.
    pub span: Option<SourceSpan>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            hint: hint.into(),
            span: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
            hint: hint.into(),
            span: None,
        }
    }

    /// Attaches source provenance (builder style).
    pub fn with_span(mut self, span: SourceSpan) -> Self {
        self.span = Some(span);
        self
    }

    /// Renders the diagnostic as one JSON object.  The `span` member is
    /// emitted only when provenance is present, so span-free diagnostics
    /// serialize byte-identically to the pre-span schema.
    pub fn to_json(&self) -> String {
        let span = match &self.span {
            Some(s) => format!(
                ",\"span\":{{\"file\":\"{}\",\"line\":{},\"col\":{}}}",
                json_escape(&s.file),
                s.line,
                s.col,
            ),
            None => String::new(),
        };
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"location\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"{span}}}",
            json_escape(self.rule),
            self.severity,
            json_escape(&self.location),
            json_escape(&self.message),
            json_escape(&self.hint),
        )
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.rule, self.location, self.message)?;
        if let Some(span) = &self.span {
            write!(f, "\n  --> {}", span.render())?;
            if !span.snippet.is_empty() {
                write!(f, "\n{}", span.snippet)?;
            }
        }
        if !self.hint.is_empty() {
            write!(f, "\n  hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The accumulated findings of one or more passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another report.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// The error diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Renders the findings as a JSON array (no trailing newline).
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

/// Renders one file's report as the single JSON object the CLI's `--json`
/// modes print — the one serializer shared by `htctl lint` and
/// `htctl analyze` (schema-snapshot-tested, so treat the shape as frozen):
/// `{"file":…,"diagnostics":[…],"errors":N,"warnings":N}`.
pub fn report_json(file: &str, report: &LintReport) -> String {
    format!(
        "{{\"file\":\"{}\",\"diagnostics\":{},\"errors\":{},\"warnings\":{}}}",
        json_escape(file),
        report.to_json(),
        report.error_count(),
        report.warning_count(),
    )
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{} error(s), {} warning(s)", self.error_count(), self.warning_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_display() {
        let mut r = LintReport::new();
        r.push(Diagnostic::error("a-rule", "here", "broken", "fix it"));
        r.push(Diagnostic::warning("b-rule", "there", "odd", ""));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        let text = r.to_string();
        assert!(text.contains("error[a-rule] here: broken"));
        assert!(text.contains("hint: fix it"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(!text.contains("odd\n  hint:"), "empty hints are omitted");
    }

    #[test]
    fn report_json_schema_snapshot() {
        // `htctl lint --json` and `htctl analyze --json` both print exactly
        // this shape; tests/cli.rs pins it end-to-end.  Change both or
        // neither.
        let mut r = LintReport::new();
        r.push(Diagnostic::error("gateway-false", "stage 0", "boom", "fix"));
        assert_eq!(
            report_json("tasks/x.ht", &r),
            "{\"file\":\"tasks/x.ht\",\"diagnostics\":[{\"rule\":\"gateway-false\",\
             \"severity\":\"error\",\"location\":\"stage 0\",\"message\":\"boom\",\
             \"hint\":\"fix\"}],\"errors\":1,\"warnings\":0}"
        );
        assert_eq!(
            report_json("a\"b", &LintReport::new()),
            "{\"file\":\"a\\\"b\",\"diagnostics\":[],\"errors\":0,\"warnings\":0}"
        );
    }

    #[test]
    fn spans_render_additively() {
        let bare = Diagnostic::warning("r", "trigger T1", "odd", "tweak it");
        assert_eq!(bare.to_string(), "warning[r] trigger T1: odd\n  hint: tweak it");

        let spanned = bare.clone().with_span(SourceSpan {
            file: "tasks/scan.nt".into(),
            line: 3,
            col: 10,
            snippet: "   3 |     .set(interval, 1us)\n     |          ^^^^^^^^".into(),
        });
        assert_eq!(
            spanned.to_string(),
            "warning[r] trigger T1: odd\n  --> tasks/scan.nt:3:10\n   3 |     \
             .set(interval, 1us)\n     |          ^^^^^^^^\n  hint: tweak it"
        );
        // First line (and the bare rendering) is unchanged by provenance.
        assert!(spanned
            .to_string()
            .starts_with(&bare.to_string().lines().next().unwrap().to_string()));

        // JSON: `span` member only when present.
        assert!(!bare.to_json().contains("span"));
        assert!(spanned
            .to_json()
            .ends_with(",\"span\":{\"file\":\"tasks/scan.nt\",\"line\":3,\"col\":10}}"));
    }

    #[test]
    fn json_escaping_is_safe() {
        let d = Diagnostic::error("r", "loc \"x\"", "line1\nline2", "tab\there");
        let j = d.to_json();
        assert!(j.contains("loc \\\"x\\\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("tab\\there"));
        assert_eq!(json_escape("ctrl\u{1}"), "ctrl\\u0001");
    }
}
