//! Deterministic IR dumps: a line-oriented text form (golden snapshot
//! tests, `htctl compile --dump-ir`) and a compact JSON form
//! (`--dump-ir --json`), both hand-rolled — this workspace carries no
//! serialization dependency.
//!
//! Synthesized inverse-transform tables (`EditSpec::RandomTable`) and
//! value lists longer than [`INLINE_VALUES`] render as a length plus an
//! FNV-1a 64 hash of their values instead of the full list: the content
//! is reproducible from the source program, and eliding it keeps dumps
//! and snapshots reviewable.  Every other part of the module renders in
//! full, in declaration order, with no map-backed collections — two
//! equal modules always produce byte-identical dumps.

use crate::diag::json_escape;
use crate::field::QuerySource;
use crate::module::Module;
use crate::query::{CompiledQuery, QueryKind};
use crate::template::{EditSpec, TemplateSpec};
use std::fmt::Write;

/// Value lists up to this length render inline; longer ones render as
/// `len` + FNV hash.
pub const INLINE_VALUES: usize = 16;

/// FNV-1a 64 over a slice of values (big-endian byte order), used to
/// summarize elided tables.
fn fnv_values(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_be_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn u64_list(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn edit_text(e: &EditSpec) -> String {
    match e {
        EditSpec::ValueList { field, values } if values.len() <= INLINE_VALUES => {
            format!("value_list {} {}", field.name(), u64_list(values))
        }
        EditSpec::ValueList { field, values } => {
            format!(
                "value_list {} len {} fnv {:016x}",
                field.name(),
                values.len(),
                fnv_values(values)
            )
        }
        EditSpec::Progression { field, start, end, step } => {
            format!("progression {} {start}..={end} step {step}", field.name())
        }
        EditSpec::RandomUniform { field, bits, offset } => {
            format!("random_uniform {} bits {bits} offset {offset}", field.name())
        }
        EditSpec::RandomTable { field, values, bits } => {
            format!(
                "random_table {} bits {bits} len {} fnv {:016x}",
                field.name(),
                values.len(),
                fnv_values(values)
            )
        }
    }
}

fn edit_json(e: &EditSpec) -> String {
    match e {
        EditSpec::ValueList { field, values } if values.len() <= INLINE_VALUES => {
            let items: Vec<String> = values.iter().map(u64::to_string).collect();
            format!(
                "{{\"edit\":\"value_list\",\"field\":\"{}\",\"values\":[{}]}}",
                field.name(),
                items.join(",")
            )
        }
        EditSpec::ValueList { field, values } => format!(
            "{{\"edit\":\"value_list\",\"field\":\"{}\",\"len\":{},\"fnv\":\"{:016x}\"}}",
            field.name(),
            values.len(),
            fnv_values(values)
        ),
        EditSpec::Progression { field, start, end, step } => format!(
            "{{\"edit\":\"progression\",\"field\":\"{}\",\"start\":{start},\"end\":{end},\"step\":{step}}}",
            field.name()
        ),
        EditSpec::RandomUniform { field, bits, offset } => format!(
            "{{\"edit\":\"random_uniform\",\"field\":\"{}\",\"bits\":{bits},\"offset\":{offset}}}",
            field.name()
        ),
        EditSpec::RandomTable { field, values, bits } => format!(
            "{{\"edit\":\"random_table\",\"field\":\"{}\",\"bits\":{bits},\"len\":{},\"fnv\":\"{:016x}\"}}",
            field.name(),
            values.len(),
            fnv_values(values)
        ),
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn template_text(w: &mut String, t: &TemplateSpec) {
    let _ = writeln!(w, "template {} \"{}\"", t.id, t.trigger_name);
    let _ = writeln!(w, "  frame_len {}", t.frame_len);
    let _ = writeln!(w, "  protocol {}", t.protocol.name());
    if t.payload.is_empty() {
        let _ = writeln!(w, "  payload 0 bytes");
    } else {
        let _ = writeln!(w, "  payload {} bytes {}", t.payload.len(), hex(&t.payload));
    }
    for (field, value) in &t.base {
        let _ = writeln!(w, "  base {} = {}", field.name(), value);
    }
    match t.interval {
        Some(ps) => {
            let _ = writeln!(w, "  interval {ps}ps");
        }
        None => {
            let _ = writeln!(w, "  interval line-rate");
        }
    }
    if let Some(dist) = &t.interval_dist {
        let _ = writeln!(w, "  interval_dist {}", edit_text(dist));
    }
    let ports: Vec<String> = t.ports.iter().map(u16::to_string).collect();
    let _ = writeln!(w, "  ports [{}]", ports.join(", "));
    let _ = writeln!(w, "  loop {}", t.loop_count);
    for e in &t.edits {
        let _ = writeln!(w, "  edit {}", edit_text(e));
    }
    if let Some(q) = &t.source_query {
        let _ = writeln!(w, "  source_query {q}");
    }
    for rc in &t.response_copies {
        let _ =
            writeln!(w, "  response_copy {} <- {} + {}", rc.dst.name(), rc.src.name(), rc.offset);
    }
}

fn source_text(s: &QuerySource) -> String {
    match s {
        QuerySource::Trigger(t) => format!("trigger {t}"),
        QuerySource::Received(Some(p)) => format!("received port {p}"),
        QuerySource::Received(None) => "received any".into(),
    }
}

fn kind_text(k: &QueryKind) -> String {
    let keys = |ks: &[crate::field::HeaderField]| {
        let names: Vec<&str> = ks.iter().map(|k| k.name()).collect();
        format!("[{}]", names.join(", "))
    };
    match k {
        QueryKind::PassThrough => "pass_through".into(),
        QueryKind::ReduceGlobal { func } => format!("reduce_global {}", func.name()),
        QueryKind::ReduceKeyed { keys: ks, func } => {
            format!("reduce_keyed {} {}", keys(ks), func.name())
        }
        QueryKind::Distinct { keys: ks } => format!("distinct {}", keys(ks)),
    }
}

fn query_text(w: &mut String, q: &CompiledQuery) {
    let _ = writeln!(w, "query \"{}\"", q.name);
    let _ = writeln!(w, "  source {}", source_text(&q.source));
    for p in &q.filters {
        let _ = writeln!(w, "  filter {} {} {}", p.field.name(), p.cmp.symbol(), p.value);
    }
    if !q.map.is_empty() {
        let names: Vec<&str> = q.map.iter().map(|f| f.name()).collect();
        let _ = writeln!(w, "  map [{}]", names.join(", "));
    }
    let _ = writeln!(w, "  kind {}", kind_text(&q.kind));
    if let Some((cmp, value)) = &q.result_filter {
        let _ = writeln!(w, "  result_filter {} {}", cmp.symbol(), value);
    }
    if !q.capture_for.is_empty() {
        let _ = writeln!(w, "  capture_for [{}]", q.capture_for.join(", "));
    }
    if let Some(fp) = &q.fp {
        let _ = writeln!(
            w,
            "  fp hash {}/{} entries {} space {}",
            fp.hash.array_bits,
            fp.hash.digest_bits,
            fp.entries.len(),
            fp.space_size
        );
    }
}

impl Module {
    /// Renders the module as the line-oriented text form (see module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ =
            writeln!(w, "module templates {} queries {}", self.templates.len(), self.queries.len());
        for t in &self.templates {
            template_text(w, t);
        }
        for q in &self.queries {
            query_text(w, q);
        }
        let _ = writeln!(w, "plan");
        let _ = writeln!(
            w,
            "  logical_stages {} / {}",
            self.plan.logical_stages, self.plan.stage_budget
        );
        let _ = writeln!(
            w,
            "  accelerator {} / {}",
            self.plan.accelerator.resident, self.plan.accelerator.capacity
        );
        for timer in &self.plan.timers {
            let cadence = match timer.interval {
                Some(ps) => format!("interval {ps}ps"),
                None => "line-rate".into(),
            };
            let dist = if timer.distribution { " dist" } else { "" };
            let _ = writeln!(w, "  timer template {} {}{}", timer.template_id, cadence, dist);
        }
        let facts = &self.plan.analysis;
        if !facts.is_empty() {
            let _ = writeln!(w, "analysis");
            for fr in &facts.field_ranges {
                let _ = writeln!(
                    w,
                    "  range template {} {} in [{}, {}]",
                    fr.template_id, fr.field, fr.lo, fr.hi
                );
            }
            for tf in &facts.timers {
                let verdict = if tf.feasible { "feasible" } else { "INFEASIBLE" };
                let _ = writeln!(
                    w,
                    "  timer template {} interval {}ps min {}ps {}",
                    tf.template_id, tf.interval_ps, tf.min_interval_ps, verdict
                );
            }
        }
        out
    }

    /// Renders the module as one compact JSON object (see module docs).
    pub fn to_json(&self) -> String {
        let templates: Vec<String> = self.templates.iter().map(template_json).collect();
        let queries: Vec<String> = self.queries.iter().map(query_json).collect();
        let timers: Vec<String> = self
            .plan
            .timers
            .iter()
            .map(|t| {
                format!(
                    "{{\"template\":{},\"interval\":{},\"distribution\":{}}}",
                    t.template_id,
                    t.interval.map_or("null".into(), |ps| ps.to_string()),
                    t.distribution
                )
            })
            .collect();
        let ranges: Vec<String> = self
            .plan
            .analysis
            .field_ranges
            .iter()
            .map(|fr| {
                format!(
                    "{{\"template\":{},\"field\":\"{}\",\"lo\":{},\"hi\":{}}}",
                    fr.template_id, fr.field, fr.lo, fr.hi
                )
            })
            .collect();
        let timer_facts: Vec<String> = self
            .plan
            .analysis
            .timers
            .iter()
            .map(|tf| {
                format!(
                    "{{\"template\":{},\"interval_ps\":{},\"min_interval_ps\":{},\"feasible\":{}}}",
                    tf.template_id, tf.interval_ps, tf.min_interval_ps, tf.feasible
                )
            })
            .collect();
        format!(
            "{{\"templates\":[{}],\"queries\":[{}],\"plan\":{{\"logical_stages\":{},\"stage_budget\":{},\"accelerator\":{{\"resident\":{},\"capacity\":{}}},\"timers\":[{}],\"analysis\":{{\"ranges\":[{}],\"timers\":[{}]}}}}}}",
            templates.join(","),
            queries.join(","),
            self.plan.logical_stages,
            self.plan.stage_budget,
            self.plan.accelerator.resident,
            self.plan.accelerator.capacity,
            timers.join(","),
            ranges.join(","),
            timer_facts.join(",")
        )
    }
}

fn template_json(t: &TemplateSpec) -> String {
    let base: Vec<String> = t
        .base
        .iter()
        .map(|(f, v)| format!("{{\"field\":\"{}\",\"value\":{v}}}", f.name()))
        .collect();
    let ports: Vec<String> = t.ports.iter().map(u16::to_string).collect();
    let edits: Vec<String> = t.edits.iter().map(edit_json).collect();
    let copies: Vec<String> = t
        .response_copies
        .iter()
        .map(|rc| {
            format!(
                "{{\"dst\":\"{}\",\"src\":\"{}\",\"offset\":{}}}",
                rc.dst.name(),
                rc.src.name(),
                rc.offset
            )
        })
        .collect();
    format!(
        "{{\"id\":{},\"trigger\":\"{}\",\"frame_len\":{},\"protocol\":\"{}\",\"payload\":\"{}\",\"base\":[{}],\"interval\":{},\"interval_dist\":{},\"ports\":[{}],\"loop\":{},\"edits\":[{}],\"source_query\":{},\"response_copies\":[{}]}}",
        t.id,
        json_escape(&t.trigger_name),
        t.frame_len,
        t.protocol.name(),
        hex(&t.payload),
        base.join(","),
        t.interval.map_or("null".into(), |ps| ps.to_string()),
        t.interval_dist.as_ref().map_or("null".into(), edit_json),
        ports.join(","),
        t.loop_count,
        edits.join(","),
        t.source_query
            .as_ref()
            .map_or("null".into(), |q| format!("\"{}\"", json_escape(q))),
        copies.join(",")
    )
}

fn query_json(q: &CompiledQuery) -> String {
    let source = match &q.source {
        QuerySource::Trigger(t) => format!("{{\"trigger\":\"{}\"}}", json_escape(t)),
        QuerySource::Received(p) => {
            format!("{{\"received\":{}}}", p.map_or("null".into(), |p| p.to_string()))
        }
    };
    let filters: Vec<String> = q
        .filters
        .iter()
        .map(|p| {
            format!(
                "{{\"field\":\"{}\",\"cmp\":\"{}\",\"value\":{}}}",
                p.field.name(),
                p.cmp.symbol(),
                p.value
            )
        })
        .collect();
    let map: Vec<String> = q.map.iter().map(|f| format!("\"{}\"", f.name())).collect();
    let keys_json = |ks: &[crate::field::HeaderField]| {
        let names: Vec<String> = ks.iter().map(|k| format!("\"{}\"", k.name())).collect();
        names.join(",")
    };
    let kind = match &q.kind {
        QueryKind::PassThrough => "{\"kind\":\"pass_through\"}".to_string(),
        QueryKind::ReduceGlobal { func } => {
            format!("{{\"kind\":\"reduce_global\",\"func\":\"{}\"}}", func.name())
        }
        QueryKind::ReduceKeyed { keys, func } => format!(
            "{{\"kind\":\"reduce_keyed\",\"keys\":[{}],\"func\":\"{}\"}}",
            keys_json(keys),
            func.name()
        ),
        QueryKind::Distinct { keys } => {
            format!("{{\"kind\":\"distinct\",\"keys\":[{}]}}", keys_json(keys))
        }
    };
    let capture: Vec<String> =
        q.capture_for.iter().map(|t| format!("\"{}\"", json_escape(t))).collect();
    format!(
        "{{\"name\":\"{}\",\"source\":{},\"filters\":[{}],\"map\":[{}],\"kind\":{},\"result_filter\":{},\"capture_for\":[{}],\"fp\":{}}}",
        json_escape(&q.name),
        source,
        filters.join(","),
        map.join(","),
        kind,
        q.result_filter.map_or("null".into(), |(cmp, value)| format!(
            "{{\"cmp\":\"{}\",\"value\":{value}}}",
            cmp.symbol()
        )),
        capture.join(","),
        q.fp.as_ref().map_or("null".into(), |fp| format!(
            "{{\"array_bits\":{},\"digest_bits\":{},\"entries\":{},\"space_size\":{}}}",
            fp.hash.array_bits,
            fp.hash.digest_bits,
            fp.entries.len(),
            fp.space_size
        ))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{CmpOp, HeaderField, NtField, Predicate, QuerySource};
    use crate::module::{AcceleratorPlan, PipelinePlan, TimerPlan};
    use crate::query::{CompiledQuery, FpConfig, QueryKind};
    use crate::template::{L4Proto, ResponseCopy};

    fn sample() -> Module {
        Module {
            templates: vec![TemplateSpec {
                id: 1,
                trigger_name: "T1".into(),
                frame_len: 64,
                payload: vec![0xde, 0xad],
                protocol: L4Proto::Udp,
                base: vec![(HeaderField::Dip, 0x0a000002)],
                interval: Some(1_000_000),
                interval_dist: None,
                ports: vec![0, 1],
                loop_count: 0,
                edits: vec![
                    EditSpec::Progression { field: HeaderField::Sport, start: 1, end: 5, step: 1 },
                    EditSpec::RandomTable {
                        field: HeaderField::Dport,
                        values: (0..1024).collect(),
                        bits: 10,
                    },
                ],
                source_query: Some("Q1".into()),
                response_copies: vec![ResponseCopy {
                    dst: HeaderField::AckNo,
                    src: HeaderField::SeqNo,
                    offset: 1,
                }],
            }],
            queries: vec![CompiledQuery {
                name: "Q1".into(),
                source: QuerySource::Received(None),
                filters: vec![Predicate {
                    field: HeaderField::TcpFlags,
                    cmp: CmpOp::Eq,
                    value: 18,
                }],
                map: vec![NtField::PktLen],
                kind: QueryKind::Distinct { keys: vec![HeaderField::Sip] },
                result_filter: Some((CmpOp::Lt, 5)),
                capture_for: vec!["T1".into()],
                fp: Some(FpConfig {
                    hash: crate::hashcfg::HashConfig::default(),
                    entries: vec![],
                    space_size: 7,
                }),
            }],
            plan: PipelinePlan {
                timers: vec![TimerPlan {
                    template_id: 1,
                    interval: Some(1_000_000),
                    distribution: false,
                }],
                accelerator: AcceleratorPlan { resident: 1, capacity: 89 },
                logical_stages: 8,
                stage_budget: 24,
                analysis: Default::default(),
                exec: Default::default(),
            },
            provenance: Default::default(),
        }
    }

    #[test]
    fn text_dump_is_deterministic_and_complete() {
        let m = sample();
        let a = m.to_text();
        assert_eq!(a, m.to_text());
        assert!(a.contains("template 1 \"T1\""));
        assert!(a.contains("  payload 2 bytes dead"));
        assert!(a.contains("  base dip = 167772162"));
        assert!(a.contains("  interval 1000000ps"));
        assert!(a.contains("  edit progression sport 1..=5 step 1"));
        assert!(a.contains("  edit random_table dport bits 10 len 1024 fnv "));
        assert!(a.contains("  response_copy ack_no <- seq_no + 1"));
        assert!(a.contains("  source received any"));
        assert!(a.contains("  kind distinct [sip]"));
        assert!(a.contains("  result_filter < 5"));
        assert!(a.contains("  fp hash 16/16 entries 0 space 7"));
        assert!(a.contains("  timer template 1 interval 1000000ps"));
        assert!(a.contains("  accelerator 1 / 89"));
    }

    #[test]
    fn json_dump_elides_synthesized_tables() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"trigger\":\"T1\""));
        assert!(j.contains("\"payload\":\"dead\""));
        assert!(j.contains("\"edit\":\"random_table\""));
        assert!(j.contains("\"len\":1024"));
        assert!(!j.contains("1017,1018"), "table values must be elided");
        assert!(j.contains("\"kind\":\"distinct\""));
        assert!(j.contains("\"space_size\":7"));
    }

    #[test]
    fn analysis_facts_render_after_the_plan_section() {
        let mut m = sample();
        assert!(!m.to_text().contains("analysis"), "empty facts add no section");
        m.plan.analysis = crate::module::AnalysisFacts {
            field_ranges: vec![crate::module::FieldRangeFact {
                template_id: 1,
                field: "sport",
                lo: 1,
                hi: 5,
            }],
            timers: vec![crate::module::TimerFact {
                template_id: 1,
                interval_ps: 1_000_000,
                min_interval_ps: 5_600_000,
                feasible: false,
            }],
        };
        let text = m.to_text();
        let plan_at = text.find("plan\n").unwrap();
        let analysis_at = text.find("analysis\n").unwrap();
        assert!(analysis_at > plan_at, "analysis section follows the plan section");
        assert!(text.contains("  range template 1 sport in [1, 5]"));
        assert!(text.contains("  timer template 1 interval 1000000ps min 5600000ps INFEASIBLE"));
        let json = m.to_json();
        assert!(json.contains(
            "\"analysis\":{\"ranges\":[{\"template\":1,\"field\":\"sport\",\"lo\":1,\"hi\":5}]"
        ));
        assert!(json.contains("\"min_interval_ps\":5600000,\"feasible\":false"));
    }

    #[test]
    fn long_value_lists_are_summarized_short_ones_inline() {
        let short = EditSpec::ValueList { field: HeaderField::Sport, values: vec![1, 2, 3] };
        assert_eq!(edit_text(&short), "value_list sport [1, 2, 3]");
        let long = EditSpec::ValueList { field: HeaderField::Sport, values: (0..100).collect() };
        assert!(edit_text(&long).starts_with("value_list sport len 100 fnv "));
    }
}
