//! The typed pipeline IR between the NTAPI surface syntax and every
//! backend of the toolchain.
//!
//! The NTAPI compiler (`ht-ntapi`) lowers a parsed program through an
//! ordered list of passes into a [`Module`] — template packet specs,
//! compiled queries, and a [`PipelinePlan`] of pass-computed annotations.
//! Three backends consume that one module:
//!
//! * the **sim builder** (`ht-core`) programs a `ht_asic::Switch` from it;
//! * the **P4 backend** (`ht-ntapi`'s codegen) renders it to P4 source;
//! * the **verifier** (`ht-lint`) runs its program passes over the built
//!   switch through the same [`Pass`] machinery.
//!
//! Module map:
//! * [`field`] — the Table 1 field vocabulary shared with the AST.
//! * [`template`] — template packet specs (triggers, §5.1).
//! * [`query`] — compiled queries (§5.2).
//! * [`module`] — the [`Module`] and its [`PipelinePlan`] annotations.
//! * [`hashcfg`] — cuckoo hash configuration carried by keyed queries.
//! * [`keyspace`] — flat key spaces for the false-positive precompute.
//! * [`pass`] — the [`Pass`] trait and [`PassManager`] with per-pass
//!   diagnostics and timing.
//! * [`diag`] — diagnostics ([`Diagnostic`], [`LintReport`]).
//! * [`render`] — deterministic text and JSON dumps of a [`Module`].
//! * [`execplan`] — planned flattened editor programs for the compiled
//!   pipeline executor (`ht_asic::exec`), filled by the `exec-lowering`
//!   pass and never rendered into IR dumps.
//! * [`dataflow`] — the abstract-interpretation engine (CFG, worklist
//!   solver with widening, interval/known-bits and powerset domains) the
//!   semantic verifier passes are built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod execplan;
pub mod field;
pub mod hashcfg;
pub mod keyspace;
pub mod module;
pub mod pass;
pub mod query;
pub mod render;
pub mod template;

pub use dataflow::{AbstractDomain, BitSet, Cfg, EdgeKind, Env, Solution, Transfer, ValueFact};
pub use diag::{json_escape, report_json, Diagnostic, LintReport, Severity, SourceSpan};
pub use execplan::{EditorProgramPlan, ExecPlan, OpMixPlan};
pub use field::{CmpOp, HeaderField, NtField, Predicate, QuerySource, ReduceFunc};
pub use hashcfg::HashConfig;
pub use keyspace::KeySpace;
pub use module::{
    AcceleratorPlan, AnalysisFacts, FieldRangeFact, Module, PipelinePlan, Provenance, TimerFact,
    TimerPlan,
};
pub use pass::{Pass, PassCx, PassManager, PassRun, PassTrace};
pub use query::{CompiledQuery, FpConfig, QueryKind};
pub use template::{EditSpec, L4Proto, ResponseCopy, TemplateSpec};
