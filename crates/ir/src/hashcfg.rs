//! Hash configuration of the counter-based query engine (§5.2).
//!
//! [`HashConfig`] is carried by the IR (`FpConfig`) because every backend
//! needs it: the sim builder programs the cuckoo externs from it, the P4
//! backend sizes its register arrays from it, and the compiler's
//! false-positive precompute (`ht-ntapi`'s `fp` module) enumerates
//! colliding key pairs with it.

use ht_asic::hash::{hash_words, HashAlgo};

/// Hash configuration of one compiled query's cuckoo engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashConfig {
    /// Each of the two cuckoo arrays has `2^array_bits` slots.
    pub array_bits: u32,
    /// Stored digest width in bits (16 or 32 in the paper's Fig. 17).
    pub digest_bits: u32,
}

impl Default for HashConfig {
    fn default() -> Self {
        HashConfig { array_bits: 16, digest_bits: 16 }
    }
}

impl HashConfig {
    /// First cuckoo bucket of a key.
    pub fn h1(&self, key: &[u64]) -> u64 {
        hash_words(HashAlgo::Crc32, key) & ((1 << self.array_bits) - 1)
    }

    /// Second cuckoo bucket of a key: partial-key cuckoo hashing,
    /// `h2 = h1 XOR H(digest)` (Cuckoo Filter, the paper's reference \[70\]).  Storing
    /// only the digest still lets an eviction compute the alternate bucket,
    /// which full-key cuckoo hashing could not do on the data plane.
    pub fn h2(&self, key: &[u64]) -> u64 {
        self.alt_bucket(self.h1(key), self.digest(key))
    }

    /// The alternate bucket of a stored `(bucket, digest)` pair — usable
    /// during eviction without knowing the full key.
    pub fn alt_bucket(&self, bucket: u64, digest: u64) -> u64 {
        let mask = (1u64 << self.array_bits) - 1;
        let off = hash_words(HashAlgo::Crc32c, &[digest]) & mask;
        // A zero offset would make h2 == h1 (one candidate bucket); force a
        // non-zero offset the way cuckoo-filter implementations do.
        (bucket ^ off.max(1)) & mask
    }

    /// Stored digest of a key.
    ///
    /// Must be *independent* of the bucket hashes: CRCs over the same data
    /// are linear maps, so deriving the digest from the same polynomial
    /// (even with a different seed or prefix) makes every same-digest pair
    /// also share a bucket, defeating the scheme.  Real deployments use a
    /// CRC with a custom polynomial; the reproduction stands in FNV-1a,
    /// which is non-linear in the key bytes.
    pub fn digest(&self, key: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            for b in w.to_be_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h & ((1u64 << self.digest_bits) - 1)
    }

    /// Memory of one exact-match entry in bits: full key + action.
    pub fn exact_entry_bits(&self, key_fields: usize) -> u64 {
        key_fields as u64 * 32 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_independent_of_buckets() {
        let cfg = HashConfig::default();
        let k = vec![1234u64, 80];
        assert_ne!(cfg.digest(&k), cfg.h1(&k));
        assert!(cfg.digest(&k) < 1 << 16);
        assert!(cfg.h1(&k) < 1 << 16);
        assert_ne!(cfg.h1(&k), cfg.h2(&k));
    }
}
