//! Hash configuration of the counter-based query engine (§5.2).
//!
//! [`HashConfig`] is carried by the IR (`FpConfig`) because every backend
//! needs it: the sim builder programs the cuckoo externs from it, the P4
//! backend sizes its register arrays from it, and the compiler's
//! false-positive precompute (`ht-ntapi`'s `fp` module) enumerates
//! colliding key pairs with it.

use crate::KeySpace;
use ht_asic::hash::{crc32_words_x8, hash_words, Crc32Fold, HashAlgo};

/// Hash configuration of one compiled query's cuckoo engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashConfig {
    /// Each of the two cuckoo arrays has `2^array_bits` slots.
    pub array_bits: u32,
    /// Stored digest width in bits (16 or 32 in the paper's Fig. 17).
    pub digest_bits: u32,
}

impl Default for HashConfig {
    fn default() -> Self {
        HashConfig { array_bits: 16, digest_bits: 16 }
    }
}

impl HashConfig {
    /// First cuckoo bucket of a key.
    pub fn h1(&self, key: &[u64]) -> u64 {
        hash_words(HashAlgo::Crc32, key) & ((1 << self.array_bits) - 1)
    }

    /// Second cuckoo bucket of a key: partial-key cuckoo hashing,
    /// `h2 = h1 XOR H(digest)` (Cuckoo Filter, the paper's reference \[70\]).  Storing
    /// only the digest still lets an eviction compute the alternate bucket,
    /// which full-key cuckoo hashing could not do on the data plane.
    ///
    /// Invariant: `h2(key) == alt_bucket(h1(key), digest(key))` — this is
    /// the relation the data plane relies on during evictions, and
    /// [`triple`](Self::triple) preserves it while hashing the key only
    /// once.
    pub fn h2(&self, key: &[u64]) -> u64 {
        self.triple(key).2
    }

    /// Computes `(digest, h1, h2)` of a key in one pass.
    ///
    /// `digest`, `h1`, and `h2` called separately walk the key bytes five
    /// times (`h2` recomputes both of the others internally); the
    /// false-positive precompute hashes millions of keys, so this fuses
    /// the FNV-1a digest and the CRC-32 bucket into a single byte walk
    /// and derives `h2` from the invariant
    /// `h2 = alt_bucket(h1, digest)` — one extra 8-byte CRC-32C over the
    /// digest instead of a third pass over the key.
    pub fn triple(&self, key: &[u64]) -> (u64, u64, u64) {
        let mut crc = Crc32Fold::ieee();
        let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            let bytes = w.to_be_bytes();
            crc.fold8(bytes);
            for b in bytes {
                fnv ^= u64::from(b);
                fnv = fnv.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let digest = fnv & ((1u64 << self.digest_bits) - 1);
        let h1 = u64::from(crc.finish()) & ((1 << self.array_bits) - 1);
        (digest, h1, self.alt_bucket(h1, digest))
    }

    /// [`triple`](Self::triple) over every key of a space, eight keys at
    /// a time through the interleaved CRC fold
    /// ([`Crc32FoldX8`](ht_asic::hash::Crc32FoldX8)).
    ///
    /// Identical output to mapping `triple` over `space.iter()`; the
    /// false-positive precompute calls this on key spaces of tens of
    /// millions of keys, where the independent CRC chains roughly halve
    /// the hashing wall time versus the scalar fold.  The FNV-1a digest
    /// chains are interleaved the same way: eight accumulators advance in
    /// lockstep per key word, so the digest multiply latency overlaps
    /// across lanes instead of serialising per key.
    pub fn triple_batch(&self, space: &KeySpace) -> Vec<(u64, u64, u64)> {
        let n = space.len();
        let mut out = Vec::with_capacity(n);
        let digest_mask = (1u64 << self.digest_bits) - 1;
        let h1_mask = (1u64 << self.array_bits) - 1;
        let width = space.width();
        let mut i = 0;
        while i + 8 <= n {
            let keys: [&[u64]; 8] = std::array::from_fn(|l| space.key(i + l));
            let crcs = crc32_words_x8(keys);
            let mut fnv = [0xcbf2_9ce4_8422_2325u64; 8];
            for w in 0..width {
                for (lane, key) in keys.iter().enumerate() {
                    for b in key[w].to_be_bytes() {
                        fnv[lane] ^= u64::from(b);
                        fnv[lane] = fnv[lane].wrapping_mul(0x0000_0100_0000_01b3);
                    }
                }
            }
            for lane in 0..8 {
                let digest = fnv[lane] & digest_mask;
                let h1 = u64::from(crcs[lane]) & h1_mask;
                out.push((digest, h1, self.alt_bucket(h1, digest)));
            }
            i += 8;
        }
        for j in i..n {
            out.push(self.triple(space.key(j)));
        }
        out
    }

    /// The alternate bucket of a stored `(bucket, digest)` pair — usable
    /// during eviction without knowing the full key.
    pub fn alt_bucket(&self, bucket: u64, digest: u64) -> u64 {
        let mask = (1u64 << self.array_bits) - 1;
        let off = hash_words(HashAlgo::Crc32c, &[digest]) & mask;
        // A zero offset would make h2 == h1 (one candidate bucket); force a
        // non-zero offset the way cuckoo-filter implementations do.
        (bucket ^ off.max(1)) & mask
    }

    /// Stored digest of a key.
    ///
    /// Must be *independent* of the bucket hashes: CRCs over the same data
    /// are linear maps, so deriving the digest from the same polynomial
    /// (even with a different seed or prefix) makes every same-digest pair
    /// also share a bucket, defeating the scheme.  Real deployments use a
    /// CRC with a custom polynomial; the reproduction stands in FNV-1a,
    /// which is non-linear in the key bytes.
    pub fn digest(&self, key: &[u64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            for b in w.to_be_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h & ((1u64 << self.digest_bits) - 1)
    }

    /// Memory of one exact-match entry in bits: full key + action.
    pub fn exact_entry_bits(&self, key_fields: usize) -> u64 {
        key_fields as u64 * 32 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_independent_of_buckets() {
        let cfg = HashConfig::default();
        let k = vec![1234u64, 80];
        assert_ne!(cfg.digest(&k), cfg.h1(&k));
        assert!(cfg.digest(&k) < 1 << 16);
        assert!(cfg.h1(&k) < 1 << 16);
        assert_ne!(cfg.h1(&k), cfg.h2(&k));
    }

    #[test]
    fn triple_agrees_with_individual_hashes() {
        for cfg in [
            HashConfig::default(),
            HashConfig { array_bits: 14, digest_bits: 32 },
            HashConfig { array_bits: 20, digest_bits: 8 },
        ] {
            for key in [vec![], vec![7u64], vec![1234, 80], vec![u64::MAX, 0, 42]] {
                let (d, h1, h2) = cfg.triple(&key);
                assert_eq!(d, cfg.digest(&key));
                assert_eq!(h1, cfg.h1(&key));
                assert_eq!(h2, cfg.h2(&key));
                assert_eq!(h2, cfg.alt_bucket(h1, d), "h2 = alt_bucket(h1, digest)");
            }
        }
    }

    #[test]
    fn triple_batch_matches_scalar_triple() {
        // 19 keys: two full x8 blocks plus a 3-key scalar tail.
        for cfg in [HashConfig::default(), HashConfig { array_bits: 14, digest_bits: 10 }] {
            let mut space = KeySpace::new(2);
            for i in 0..19u64 {
                space.push(&[i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 80 + i]);
            }
            let batch = cfg.triple_batch(&space);
            let scalar: Vec<_> = space.iter().map(|k| cfg.triple(k)).collect();
            assert_eq!(batch, scalar);
        }
    }

    #[test]
    fn triple_batch_handles_tiny_spaces() {
        let cfg = HashConfig::default();
        for n in 0..8u64 {
            let mut space = KeySpace::new(1);
            for i in 0..n {
                space.push(&[i]);
            }
            let batch = cfg.triple_batch(&space);
            let scalar: Vec<_> = space.iter().map(|k| cfg.triple(k)).collect();
            assert_eq!(batch, scalar);
        }
    }
}
