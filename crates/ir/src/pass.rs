//! The pass manager: an ordered list of named passes over some program
//! representation, with per-pass diagnostics and timing.
//!
//! Both halves of the toolchain run on this machinery:
//!
//! * the NTAPI compiler lowers AST → [`crate::Module`] through a pass
//!   list (template extraction, field-edit planning, timer synthesis,
//!   query lowering, resource annotation, task lint);
//! * the static verifier (`ht-lint`) runs its six program passes over a
//!   built `Switch` through the same trait.
//!
//! A pass reports findings into the shared [`PassCx`] and may fail with a
//! typed error `E`; the manager records how long each pass took and how
//! many findings it added, so `htctl compile --dump-ir` can show where
//! compile time goes.

use crate::diag::LintReport;
use std::time::{Duration, Instant};

/// Shared context threaded through a pass pipeline: the accumulated
/// diagnostics of every pass run so far.
#[derive(Debug, Default)]
pub struct PassCx {
    /// Findings reported by the passes, in pass order.
    pub diagnostics: LintReport,
}

impl PassCx {
    /// An empty context.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One named pass over a program representation `M`, failing with `E`.
pub trait Pass<M, E> {
    /// Stable pass name (kebab-case), e.g. `template-extraction`.
    fn name(&self) -> &'static str;

    /// Runs the pass.  Non-fatal findings go into `cx.diagnostics`; a
    /// returned error aborts the pipeline.
    fn run(&self, module: &mut M, cx: &mut PassCx) -> Result<(), E>;
}

/// The record of one executed pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRun {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
    /// Diagnostics the pass added to the context.
    pub diagnostics: usize,
}

/// Per-pass execution record of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassTrace {
    /// One entry per executed pass, in execution order.
    pub runs: Vec<PassRun>,
}

impl PassTrace {
    /// Total wall-clock time across all executed passes.
    pub fn total(&self) -> Duration {
        self.runs.iter().map(|r| r.duration).sum()
    }
}

/// An ordered list of passes over `M`.
pub struct PassManager<M, E> {
    passes: Vec<Box<dyn Pass<M, E>>>,
}

impl<M, E> Default for PassManager<M, E> {
    fn default() -> Self {
        PassManager { passes: Vec::new() }
    }
}

impl<M, E> PassManager<M, E> {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pass to the end of the pipeline.
    pub fn register(&mut self, pass: impl Pass<M, E> + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// The registered pass names, in execution order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Whether a pass with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.passes.iter().any(|p| p.name() == name)
    }

    /// Runs every pass in order.  Stops at the first pass error; findings
    /// of completed passes remain in `cx`.
    pub fn run(&self, module: &mut M, cx: &mut PassCx) -> Result<PassTrace, E> {
        self.run_until(module, cx, None)
    }

    /// Runs passes in order, stopping *after* the pass named `stop_after`
    /// when given (unknown names run the full pipeline — validate with
    /// [`PassManager::contains`] first when the name is user input).
    pub fn run_until(
        &self,
        module: &mut M,
        cx: &mut PassCx,
        stop_after: Option<&str>,
    ) -> Result<PassTrace, E> {
        let mut trace = PassTrace::default();
        for pass in &self.passes {
            let before = cx.diagnostics.diagnostics.len();
            let start = Instant::now();
            let result = pass.run(module, cx);
            trace.runs.push(PassRun {
                name: pass.name(),
                duration: start.elapsed(),
                diagnostics: cx.diagnostics.diagnostics.len() - before,
            });
            result?;
            if stop_after == Some(pass.name()) {
                break;
            }
        }
        Ok(trace)
    }
}

impl<M, E> std::fmt::Debug for PassManager<M, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager").field("passes", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    struct Append(&'static str);

    impl Pass<Vec<&'static str>, String> for Append {
        fn name(&self) -> &'static str {
            self.0
        }
        fn run(&self, m: &mut Vec<&'static str>, cx: &mut PassCx) -> Result<(), String> {
            if self.0 == "boom" {
                return Err("boom failed".into());
            }
            m.push(self.0);
            cx.diagnostics.push(Diagnostic::warning("w", self.0, "note", ""));
            Ok(())
        }
    }

    fn manager() -> PassManager<Vec<&'static str>, String> {
        let mut pm = PassManager::new();
        pm.register(Append("first"));
        pm.register(Append("second"));
        pm.register(Append("third"));
        pm
    }

    #[test]
    fn runs_passes_in_order_with_trace() {
        let pm = manager();
        assert_eq!(pm.names(), vec!["first", "second", "third"]);
        assert!(pm.contains("second") && !pm.contains("boom"));
        let mut m = Vec::new();
        let mut cx = PassCx::new();
        let trace = pm.run(&mut m, &mut cx).unwrap();
        assert_eq!(m, vec!["first", "second", "third"]);
        assert_eq!(trace.runs.len(), 3);
        assert!(trace.runs.iter().all(|r| r.diagnostics == 1));
        assert_eq!(cx.diagnostics.diagnostics.len(), 3);
        assert!(trace.total() >= trace.runs[0].duration);
    }

    #[test]
    fn stop_after_halts_the_pipeline() {
        let pm = manager();
        let mut m = Vec::new();
        let mut cx = PassCx::new();
        let trace = pm.run_until(&mut m, &mut cx, Some("second")).unwrap();
        assert_eq!(m, vec!["first", "second"]);
        assert_eq!(trace.runs.len(), 2);
    }

    #[test]
    fn pass_error_aborts_but_keeps_earlier_findings() {
        let mut pm = PassManager::new();
        pm.register(Append("first"));
        pm.register(Append("boom"));
        pm.register(Append("never"));
        let mut m = Vec::new();
        let mut cx = PassCx::new();
        let err = pm.run(&mut m, &mut cx).unwrap_err();
        assert_eq!(err, "boom failed");
        assert_eq!(m, vec!["first"], "third pass must not run");
        assert_eq!(cx.diagnostics.diagnostics.len(), 1);
    }
}
