//! Generic abstract-interpretation engine over pipeline control-flow
//! graphs.
//!
//! The engine is deliberately target-agnostic: `ht-ir` knows nothing about
//! `ht-asic` tables or PHVs, so the [`Cfg`] is plain node indices and
//! edges, and clients (the `ht-lint` semantic passes) supply a
//! [`Transfer`] function that interprets their own node payloads over a
//! pluggable [`AbstractDomain`].
//!
//! Two domains ship here:
//!
//! * [`ValueFact`] / [`Env`] — a combined interval + known-bits analysis
//!   of bounded unsigned values (PHV fields, template counters).  All
//!   arithmetic mirrors the ASIC's masked wrapping semantics: an update
//!   that may exceed the field mask widens to the full lane range instead
//!   of wrapping point-wise.
//! * [`BitSet`] — a finite powerset domain for reachability and liveness
//!   facts (live fields, reachable stages/actions).  Backward analyses run
//!   the same forward solver over [`Cfg::reversed`].
//!
//! The solver is a classic forward worklist fixpoint: `⊥` is represented
//! as `Option::None`, joins happen edge-wise, and **widening** is applied
//! when merging along [`EdgeKind::Back`] edges (recirculation), which
//! bounds the interval domain's ascent to one widening per bit of lane
//! width.  A per-node visit budget backstops divergence in buggy domains.

/// An abstract domain element: a lattice value with `join` (least upper
/// bound) and `widen` (accelerated join for back edges).
///
/// Both return `true` when `self` changed, which drives the worklist.
/// `⊥` is not part of the trait — the solver models unreachable states as
/// `None`.
pub trait AbstractDomain: Clone {
    /// Joins `other` into `self`; returns whether `self` grew.
    fn join(&mut self, other: &Self) -> bool;

    /// Widening join used on back edges.  Must guarantee a finite ascent
    /// chain; defaults to plain [`join`](Self::join) for finite lattices.
    fn widen(&mut self, other: &Self) -> bool {
        self.join(other)
    }
}

/// Edge classification: forward program order, or a loop back edge
/// (recirculation) where the solver widens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary program-order edge.
    Forward,
    /// A loop back edge; the solver applies [`AbstractDomain::widen`]
    /// when merging along it.
    Back,
}

/// A control-flow graph over opaque node indices `0..len`.
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: usize,
    succs: Vec<Vec<(usize, EdgeKind)>>,
}

impl Cfg {
    /// Creates a graph with `nodes` nodes and no edges, entering at
    /// `entry`.
    pub fn new(nodes: usize, entry: usize) -> Self {
        assert!(entry < nodes, "entry {entry} out of range for {nodes} nodes");
        Cfg { entry, succs: vec![Vec::new(); nodes] }
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The entry node.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        assert!(from < self.len() && to < self.len(), "edge out of range");
        self.succs[from].push((to, kind));
    }

    /// The successors of `node` with their edge kinds.
    pub fn successors(&self, node: usize) -> &[(usize, EdgeKind)] {
        &self.succs[node]
    }

    /// The edge-reversed graph entering at `new_entry` — backward analyses
    /// (liveness) run the forward solver over this.  Edge kinds are
    /// preserved, so recirculation back edges still widen.
    pub fn reversed(&self, new_entry: usize) -> Cfg {
        let mut rev = Cfg::new(self.len(), new_entry);
        for (from, succs) in self.succs.iter().enumerate() {
            for &(to, kind) in succs {
                rev.add_edge(to, from, kind);
            }
        }
        rev
    }
}

/// The transfer function of one analysis: how a node transforms an input
/// state, and which outgoing edges are feasible under a given state.
pub trait Transfer<D: AbstractDomain> {
    /// The state on entry to the graph.
    fn boundary(&self) -> D;

    /// The state after `node` executes on input `state`.
    fn flow(&self, node: usize, state: &D) -> D;

    /// The state propagated along the edge `from → to`, or `None` when
    /// the edge is infeasible under `state` (a proven-dead branch).
    /// Defaults to propagating `state` unchanged.
    fn edge(&self, from: usize, to: usize, kind: EdgeKind, state: &D) -> Option<D> {
        let _ = (from, to, kind);
        Some(state.clone())
    }
}

/// A solved dataflow problem: per-node input and output states.
/// `None` means the node was proven unreachable.
#[derive(Debug, Clone)]
pub struct Solution<D> {
    /// State on entry to each node (`None` = unreachable).
    pub pre: Vec<Option<D>>,
    /// State on exit from each node (`None` = unreachable).
    pub post: Vec<Option<D>>,
    /// Total worklist pops until the fixpoint — tests assert this stays
    /// small to prove widening terminates.
    pub iterations: usize,
}

/// Solver failure: a node exceeded its visit budget, meaning the domain's
/// widening does not enforce a finite ascent chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diverged {
    /// The node whose state kept growing.
    pub node: usize,
    /// The per-node visit budget that was exhausted.
    pub budget: usize,
}

impl std::fmt::Display for Diverged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataflow solver diverged at node {} (budget {})", self.node, self.budget)
    }
}

impl std::error::Error for Diverged {}

/// Per-node visit budget: generous for any lawful widening (the interval
/// domain needs at most ~64 widenings per field), tight enough to fail
/// fast on a broken domain.
pub const VISIT_BUDGET: usize = 512;

/// Runs the forward worklist solver to fixpoint.
///
/// States merge with [`AbstractDomain::join`] along forward edges and
/// [`AbstractDomain::widen`] along [`EdgeKind::Back`] edges.
pub fn solve<D: AbstractDomain, T: Transfer<D>>(
    cfg: &Cfg,
    transfer: &T,
) -> Result<Solution<D>, Diverged> {
    let n = cfg.len();
    let mut pre: Vec<Option<D>> = vec![None; n];
    let mut post: Vec<Option<D>> = vec![None; n];
    let mut visits = vec![0usize; n];
    let mut queued = vec![false; n];
    let mut worklist = std::collections::VecDeque::new();

    pre[cfg.entry()] = Some(transfer.boundary());
    worklist.push_back(cfg.entry());
    queued[cfg.entry()] = true;

    let mut iterations = 0;
    while let Some(node) = worklist.pop_front() {
        queued[node] = false;
        iterations += 1;
        visits[node] += 1;
        if visits[node] > VISIT_BUDGET {
            return Err(Diverged { node, budget: VISIT_BUDGET });
        }
        let input = pre[node].clone().expect("queued node has a pre-state");
        let out = transfer.flow(node, &input);
        post[node] = Some(out.clone());
        for &(succ, kind) in cfg.successors(node) {
            let Some(st) = transfer.edge(node, succ, kind, &out) else { continue };
            let changed = match &mut pre[succ] {
                Some(cur) => match kind {
                    EdgeKind::Forward => cur.join(&st),
                    EdgeKind::Back => cur.widen(&st),
                },
                slot @ None => {
                    *slot = Some(st);
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                worklist.push_back(succ);
            }
        }
    }
    Ok(Solution { pre, post, iterations })
}

// --------------------------------------------------------------------------
// Interval + known-bits value domain
// --------------------------------------------------------------------------

/// Rounds `v` up to `2^k - 1 ≥ v` (saturating at `u64::MAX`) — the
/// widening targets, giving a ≤64-step ascent chain per bound.
fn pow2_ceil_minus_one(v: u64) -> u64 {
    match v.checked_add(1) {
        Some(n) => n.next_power_of_two().checked_sub(1).unwrap_or(u64::MAX).max(v),
        None => u64::MAX,
    }
}

/// What one bounded unsigned value (a PHV field, a template counter) may
/// be: a closed interval `[lo, hi]` plus known-bits information
/// (`value & known_mask == known_val` for every concrete value).
///
/// All transformers take the lane `mask` (`2^width - 1`) and mirror the
/// ASIC's truncating/wrapping semantics conservatively: any update that
/// may exceed the mask goes to the full lane range rather than wrapping
/// the interval point-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueFact {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Bits whose value is known in every concrete value.
    pub known_mask: u64,
    /// The values of the known bits (`known_val & !known_mask == 0`).
    pub known_val: u64,
}

impl ValueFact {
    /// The fact for exactly `v`.
    pub fn exact(v: u64) -> Self {
        ValueFact { lo: v, hi: v, known_mask: u64::MAX, known_val: v }
    }

    /// The fact for the closed interval `[lo, hi]`.
    pub fn range(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        ValueFact { lo, hi, known_mask: 0, known_val: 0 }
    }

    /// The unconstrained fact for a lane of the given `mask`: anything in
    /// `[0, mask]`, with the bits above the lane known zero.
    pub fn full(mask: u64) -> Self {
        ValueFact { lo: 0, hi: mask, known_mask: !mask, known_val: 0 }
    }

    /// Whether this fact pins a single value (returned if so).
    pub fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether the concrete value `v` is possible under this fact.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi && (v & self.known_mask) == self.known_val
    }

    /// Intersects with the interval `[lo, hi]`; `None` when the result is
    /// provably empty (a contradiction).
    pub fn intersect(&self, lo: u64, hi: u64) -> Option<Self> {
        let nlo = self.lo.max(lo);
        let nhi = self.hi.min(hi);
        if nlo > nhi {
            return None;
        }
        // An exact intersection must also satisfy the known bits.
        if nlo == nhi && (nlo & self.known_mask) != self.known_val {
            return None;
        }
        Some(ValueFact { lo: nlo, hi: nhi, ..*self })
    }

    /// Excludes the single value `v` (a `!=` gateway); `None` when this
    /// fact was exactly `v` (the branch is a contradiction).
    pub fn exclude(&self, v: u64) -> Option<Self> {
        if self.as_const() == Some(v) {
            return None;
        }
        let mut r = *self;
        if r.lo == v {
            r.lo += 1;
        } else if r.hi == v {
            r.hi -= 1;
        }
        Some(r)
    }

    /// The fact after writing a masked constant (`phv.set` semantics).
    pub fn set_const(value: u64, mask: u64) -> Self {
        Self::exact(value & mask)
    }

    /// The fact after copying this value into a lane of `mask` width
    /// (truncating writes keep the low bits).
    pub fn copy_into(&self, mask: u64) -> Self {
        if self.hi <= mask {
            let mut r = *self;
            // Bits above the destination lane are known zero.
            r.known_mask |= !mask;
            r.known_val &= mask;
            return r;
        }
        Self::full(mask)
    }

    /// The fact after `self + other` in a lane of `mask` (wrapping).
    pub fn add(&self, other: &Self, mask: u64) -> Self {
        let hi = u128::from(self.hi) + u128::from(other.hi);
        if hi <= u128::from(mask) {
            Self::range(self.lo + other.lo, hi as u64)
        } else {
            Self::full(mask)
        }
    }

    /// The fact after `self - other` in a lane of `mask` (wrapping).
    pub fn sub(&self, other: &Self, mask: u64) -> Self {
        if other.hi <= self.lo && self.hi <= mask {
            Self::range(self.lo - other.hi, self.hi - other.lo)
        } else {
            Self::full(mask)
        }
    }

    /// The fact after `self & c`.
    pub fn and_const(&self, c: u64) -> Self {
        ValueFact {
            lo: 0,
            hi: self.hi.min(c),
            // Zero bits of `c` force zeros; known bits that survive keep
            // their value.
            known_mask: !c | self.known_mask,
            known_val: self.known_val & c,
        }
    }

    /// The fact after `self | c` in a lane of `mask`.
    pub fn or_const(&self, c: u64, mask: u64) -> Self {
        let c = c & mask;
        ValueFact {
            lo: self.lo.max(c),
            hi: (pow2_ceil_minus_one(self.hi) | c).min(mask),
            // Bits of `c` become known ones; other bits keep what was known.
            known_mask: self.known_mask | c,
            known_val: self.known_val | c,
        }
        .normalized()
    }

    /// The fact after `self >> k`.
    pub fn shr(&self, k: u32) -> Self {
        if k >= 64 {
            return Self::exact(0);
        }
        ValueFact {
            lo: self.lo >> k,
            hi: self.hi >> k,
            known_mask: (self.known_mask >> k) | !(u64::MAX >> k),
            known_val: self.known_val >> k,
        }
    }

    /// Drops known-bit claims that the interval contradicts (keeps the
    /// representation canonical after bit-level transformers).
    fn normalized(mut self) -> Self {
        self.known_val &= self.known_mask;
        if self.lo == self.hi {
            self.known_mask = u64::MAX;
            self.known_val = self.lo;
        }
        self
    }
}

impl AbstractDomain for ValueFact {
    fn join(&mut self, other: &Self) -> bool {
        let merged = ValueFact {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            // A bit stays known only if both sides know it and agree.
            known_mask: self.known_mask & other.known_mask & !(self.known_val ^ other.known_val),
            known_val: self.known_val & other.known_val,
        };
        let merged =
            ValueFact { known_val: merged.known_val & merged.known_mask, ..merged }.normalized();
        let changed = merged != *self;
        *self = merged;
        changed
    }

    fn widen(&mut self, other: &Self) -> bool {
        let mut target = *self;
        if other.lo < target.lo {
            target.lo = 0;
        }
        if other.hi > target.hi {
            // Jump to the next power-of-two boundary: at most 64 widening
            // steps per bound.
            target.hi = pow2_ceil_minus_one(other.hi);
        }
        target.known_mask &= other.known_mask & !(target.known_val ^ other.known_val);
        target.known_val &= target.known_mask;
        let changed = target != *self;
        *self = target;
        changed
    }
}

/// A PHV-wide environment: one [`ValueFact`] per field slot, joined
/// point-wise.  The field-id → slot mapping is the client's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    /// Per-slot value facts.
    pub slots: Vec<ValueFact>,
}

impl Env {
    /// An environment of `n` slots, each unconstrained over `u64`.
    pub fn top(n: usize) -> Self {
        Env { slots: vec![ValueFact::full(u64::MAX); n] }
    }

    /// The fact for a slot.
    pub fn get(&self, slot: usize) -> &ValueFact {
        &self.slots[slot]
    }

    /// Replaces the fact for a slot.
    pub fn set(&mut self, slot: usize, fact: ValueFact) {
        self.slots[slot] = fact;
    }
}

impl AbstractDomain for Env {
    fn join(&mut self, other: &Self) -> bool {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let mut changed = false;
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            changed |= a.join(b);
        }
        changed
    }

    fn widen(&mut self, other: &Self) -> bool {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let mut changed = false;
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            changed |= a.widen(b);
        }
        changed
    }
}

// --------------------------------------------------------------------------
// Powerset domain for reachability / liveness
// --------------------------------------------------------------------------

/// A finite bit set — the powerset domain used for liveness (live field
/// ids) and reachability (visited stages/actions).  `join` is set union;
/// the lattice is finite so widening is plain join.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Inserts `bit`; returns whether it was new.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `bit`.
    pub fn remove(&mut self, bit: usize) {
        let (w, b) = (bit / 64, bit % 64);
        if w < self.words.len() {
            self.words[w] &= !(1 << b);
        }
    }

    /// Whether `bit` is in the set.
    pub fn contains(&self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter(move |b| word & (1 << b) != 0).map(move |b| w * 64 + b)
        })
    }

    /// The number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl AbstractDomain for BitSet {
    fn join(&mut self, other: &Self) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy straight-line transfer: node `i` adds `incr[i]` to slot 0.
    struct Adder {
        incr: Vec<u64>,
        mask: u64,
        dead_edges: Vec<(usize, usize)>,
    }

    impl Transfer<Env> for Adder {
        fn boundary(&self) -> Env {
            let mut e = Env::top(1);
            e.set(0, ValueFact::exact(0));
            e
        }
        fn flow(&self, node: usize, state: &Env) -> Env {
            let mut out = state.clone();
            let f = out.get(0).add(&ValueFact::exact(self.incr[node]), self.mask);
            out.set(0, f);
            out
        }
        fn edge(&self, from: usize, to: usize, _kind: EdgeKind, state: &Env) -> Option<Env> {
            if self.dead_edges.contains(&(from, to)) {
                return None;
            }
            Some(state.clone())
        }
    }

    #[test]
    fn straight_line_propagates_constants() {
        // 0 → 1 → 2, adding 1 then 2.
        let mut cfg = Cfg::new(3, 0);
        cfg.add_edge(0, 1, EdgeKind::Forward);
        cfg.add_edge(1, 2, EdgeKind::Forward);
        let t = Adder { incr: vec![1, 2, 0], mask: u64::MAX, dead_edges: vec![] };
        let s = solve(&cfg, &t).unwrap();
        assert_eq!(s.post[1].as_ref().unwrap().get(0).as_const(), Some(3));
        assert_eq!(s.pre[2].as_ref().unwrap().get(0).as_const(), Some(3));
    }

    #[test]
    fn infeasible_edges_leave_targets_unreachable() {
        let mut cfg = Cfg::new(3, 0);
        cfg.add_edge(0, 1, EdgeKind::Forward);
        cfg.add_edge(0, 2, EdgeKind::Forward);
        let t = Adder { incr: vec![0, 0, 0], mask: u64::MAX, dead_edges: vec![(0, 2)] };
        let s = solve(&cfg, &t).unwrap();
        assert!(s.pre[1].is_some());
        assert!(s.pre[2].is_none(), "edge filter must prove node 2 unreachable");
    }

    #[test]
    fn widening_terminates_a_counting_loop() {
        // 0 → 1 → 2 with a back edge 2 → 1: slot 0 grows by 1 per trip.
        let mut cfg = Cfg::new(3, 0);
        cfg.add_edge(0, 1, EdgeKind::Forward);
        cfg.add_edge(1, 2, EdgeKind::Forward);
        cfg.add_edge(2, 1, EdgeKind::Back);
        let t = Adder { incr: vec![0, 1, 0], mask: 0xffff, dead_edges: vec![] };
        let s = solve(&cfg, &t).unwrap();
        // Far fewer pops than the 65536 trips a naive join would take.
        assert!(s.iterations < 100, "{} iterations", s.iterations);
        let at_loop = s.pre[1].as_ref().unwrap().get(0);
        assert_eq!(at_loop.lo, 0);
        assert!(at_loop.hi >= 1, "loop head must include later trips");
    }

    #[test]
    fn reversed_cfg_flips_edges() {
        let mut cfg = Cfg::new(3, 0);
        cfg.add_edge(0, 1, EdgeKind::Forward);
        cfg.add_edge(1, 2, EdgeKind::Forward);
        let rev = cfg.reversed(2);
        assert_eq!(rev.entry(), 2);
        assert_eq!(rev.successors(2), &[(1, EdgeKind::Forward)]);
        assert_eq!(rev.successors(1), &[(0, EdgeKind::Forward)]);
        assert!(rev.successors(0).is_empty());
    }

    #[test]
    fn value_fact_transfer_functions_are_sound() {
        let mask16 = 0xffffu64;
        let f = ValueFact::range(10, 20);
        let g = f.add(&ValueFact::exact(5), mask16);
        assert_eq!((g.lo, g.hi), (15, 25));
        // Overflowing adds widen to the lane.
        let h = ValueFact::range(0xfff0, 0xffff).add(&ValueFact::exact(0x20), mask16);
        assert_eq!((h.lo, h.hi), (0, 0xffff));
        // AND bounds above by the constant and forces zeros.
        let a = ValueFact::full(mask16).and_const(0x00f0);
        assert!(a.hi <= 0x00f0);
        assert!(!a.contains(0x0001), "bit 0 is known zero");
        // OR raises the floor.
        let o = ValueFact::exact(0).or_const(0x8000, mask16);
        assert_eq!(o.as_const(), Some(0x8000));
        // Shifts move both bounds.
        let s = ValueFact::range(0x100, 0x1ff).shr(4);
        assert_eq!((s.lo, s.hi), (0x10, 0x1f));
        // Truncating copy into a narrower lane.
        let c = ValueFact::exact(0x1ffff).copy_into(mask16);
        assert_eq!((c.lo, c.hi), (0, 0xffff));
    }

    #[test]
    fn intersect_and_exclude_refine_or_contradict() {
        let f = ValueFact::range(5, 10);
        assert!(f.intersect(11, 20).is_none(), "disjoint ranges contradict");
        let r = f.intersect(7, 20).unwrap();
        assert_eq!((r.lo, r.hi), (7, 10));
        assert!(ValueFact::exact(3).exclude(3).is_none());
        let e = ValueFact::range(3, 5).exclude(3).unwrap();
        assert_eq!(e.lo, 4);
    }

    #[test]
    fn known_bits_join_keeps_only_agreement() {
        let mut a = ValueFact::exact(0b1100);
        let b = ValueFact::exact(0b1010);
        assert!(a.join(&b));
        assert!(a.contains(0b1100) && a.contains(0b1010));
        // Bit 3 agrees (set), bit 0 agrees (clear).
        assert_eq!(a.known_mask & 0b1001, 0b1001);
        assert_eq!(a.known_val & 0b1000, 0b1000);
        assert!(!a.contains(0b0100), "bit 3 must stay set");
    }

    #[test]
    fn bitset_is_a_union_lattice() {
        let mut a = BitSet::new();
        a.insert(3);
        a.insert(70);
        let mut b = BitSet::new();
        b.insert(5);
        assert!(b.join(&a));
        assert!(!b.join(&a), "second join is a no-op");
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 5, 70]);
        assert!(b.contains(70) && !b.contains(4));
        b.remove(70);
        assert!(!b.contains(70));
        assert_eq!(b.len(), 2);
    }

    /// A domain whose widen is (illegally) plain join: the solver's visit
    /// budget must catch the divergence instead of hanging.
    #[derive(Clone, Debug)]
    struct BadCounter(u64);
    impl AbstractDomain for BadCounter {
        fn join(&mut self, other: &Self) -> bool {
            let n = self.0.max(other.0);
            let changed = n != self.0;
            self.0 = n;
            changed
        }
    }
    struct BadTransfer;
    impl Transfer<BadCounter> for BadTransfer {
        fn boundary(&self) -> BadCounter {
            BadCounter(0)
        }
        fn flow(&self, _node: usize, state: &BadCounter) -> BadCounter {
            BadCounter(state.0 + 1)
        }
    }

    #[test]
    fn divergent_domains_fail_fast() {
        let mut cfg = Cfg::new(2, 0);
        cfg.add_edge(0, 1, EdgeKind::Forward);
        cfg.add_edge(1, 0, EdgeKind::Back);
        let err = solve(&cfg, &BadTransfer).unwrap_err();
        assert_eq!(err.budget, VISIT_BUDGET);
    }
}
