//! The IR module: everything a compiled testing task says, in one typed,
//! serializable value.
//!
//! A [`Module`] is what the lowering passes of the NTAPI compiler produce
//! and what every backend consumes: the sim builder programs a
//! [`ht_asic::Switch`] from it, the P4 backend renders it to source, and
//! the verifier's task-level passes walk it.  The [`PipelinePlan`] carries
//! the pass-computed annotations that are *about* the module rather than
//! *in* it — timer synthesis and resource accounting.

use crate::diag::SourceSpan;
use crate::query::CompiledQuery;
use crate::template::TemplateSpec;
use ht_asic::time::SimTime;

/// One synthesized rate-control timer (§5.1 "Replicator"): the cadence at
/// which a template's replicas leave, derived from its `interval` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerPlan {
    /// Template the timer drives.
    pub template_id: u16,
    /// Constant inter-departure interval; `None` = line rate (replicate at
    /// every recirculation arrival, no timer gating).
    pub interval: Option<SimTime>,
    /// Whether the interval is drawn from a distribution per departure
    /// (the template carries an `interval_dist` edit).
    pub distribution: bool,
}

/// Accelerator occupancy (§5.1/§6.1): how many templates reside in the
/// recirculation loop versus how many fit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcceleratorPlan {
    /// Start-time templates permanently occupying the loop.
    pub resident: usize,
    /// Loop capacity at the task's minimum frame length, times the number
    /// of available recirculation loops.
    pub capacity: usize,
}

/// One proven value interval for a template-edited header field — the
/// `analysis-annotation` pass's abstract interpretation of the edit plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRangeFact {
    /// Template the edit belongs to.
    pub template_id: u16,
    /// NTAPI field name (e.g. `tcp.sport`).
    pub field: &'static str,
    /// Proven inclusive lower bound of every value the editor writes.
    pub lo: u64,
    /// Proven inclusive upper bound.
    pub hi: u64,
}

/// Feasibility of one synthesized rate-control timer against the proven
/// per-loop byte budget: a template cannot depart faster than its frame
/// serializes through the recirculation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerFact {
    /// Template the timer drives.
    pub template_id: u16,
    /// Configured interval in picoseconds.
    pub interval_ps: u64,
    /// Minimum sustainable interval: one frame's recirculation occupancy.
    pub min_interval_ps: u64,
    /// Whether the configured cadence is provably sustainable.
    pub feasible: bool,
}

/// Facts the `analysis-annotation` pass proves about the module, rendered
/// into the golden IR snapshots.  Empty (the default) when the pass has
/// not run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisFacts {
    /// Proven value intervals of edited header fields, in template order
    /// then edit order.
    pub field_ranges: Vec<FieldRangeFact>,
    /// Timer feasibility verdicts, in template order (timed triggers
    /// only).
    pub timers: Vec<TimerFact>,
}

impl AnalysisFacts {
    /// Whether the pass has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.field_ranges.is_empty() && self.timers.is_empty()
    }
}

/// Pass-computed annotations over the module: timers and resource use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelinePlan {
    /// One timer per template, in template order.
    pub timers: Vec<TimerPlan>,
    /// Accelerator occupancy.
    pub accelerator: AcceleratorPlan,
    /// Logical match-action stages the task occupies (accelerator +
    /// replicator + per-template editor chains + per-query engines).
    pub logical_stages: usize,
    /// Stage budget the task was admitted against.
    pub stage_budget: usize,
    /// Facts proven by the `analysis-annotation` pass (empty until it
    /// runs).
    pub analysis: AnalysisFacts,
    /// Planned flattened editor programs, filled by the `exec-lowering`
    /// pass.  Like [`Provenance`], deliberately *not* rendered by
    /// [`Module::to_text`]/[`Module::to_json`] — golden IR snapshots are
    /// unaffected by executor planning.
    pub exec: crate::execplan::ExecPlan,
}

/// Source provenance of a lowered module: where each trigger and query
/// was declared in the NTAPI task text.  Filled by the front end when the
/// module was lowered from a resolved DSL program; empty (the default)
/// for builder-constructed programs.  Deliberately *not* rendered by
/// [`Module::to_text`]/[`Module::to_json`], so golden IR snapshots are
/// unaffected by provenance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Span of the task entry file as a whole (line 1 of the entry file).
    pub task: Option<SourceSpan>,
    /// Declaration spans by trigger name.
    pub triggers: Vec<(String, SourceSpan)>,
    /// Declaration spans by query name.
    pub queries: Vec<(String, SourceSpan)>,
}

impl Provenance {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.task.is_none() && self.triggers.is_empty() && self.queries.is_empty()
    }

    /// The span recorded for a trigger, by name.
    pub fn trigger(&self, name: &str) -> Option<&SourceSpan> {
        self.triggers.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The span recorded for a query, by name.
    pub fn query(&self, name: &str) -> Option<&SourceSpan> {
        self.queries.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The span a diagnostic's `location` string anchors to: the named
    /// trigger/query when the location follows one of the pass
    /// conventions (`trigger T1`, `query Q1`, `template 1 "T1"`, or any
    /// location quoting a declared name), else `None`.
    pub fn span_for_location(&self, location: &str) -> Option<&SourceSpan> {
        if let Some(rest) = location.strip_prefix("trigger ") {
            let name = rest.split_whitespace().next().unwrap_or(rest);
            if let Some(s) = self.trigger(name) {
                return Some(s);
            }
        }
        if let Some(rest) = location.strip_prefix("query ") {
            let name = rest.split_whitespace().next().unwrap_or(rest);
            if let Some(s) = self.query(name) {
                return Some(s);
            }
        }
        let mut quoted = location.split('"').skip(1).step_by(2);
        if let Some(name) = quoted.next() {
            return self.trigger(name).or_else(|| self.query(name));
        }
        None
    }

    /// Attaches source provenance to every span-less diagnostic in the
    /// report: the declaring construct's span when the location names
    /// one, else the task span.  Diagnostics that already carry a span
    /// are left alone.
    pub fn attach(&self, report: &mut crate::diag::LintReport) {
        if self.is_empty() {
            return;
        }
        for d in &mut report.diagnostics {
            if d.span.is_none() {
                d.span = self.span_for_location(&d.location).cloned().or_else(|| self.task.clone());
            }
        }
    }
}

/// A lowered testing task: the typed IR between the NTAPI AST and every
/// backend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Template packet specs, one per trigger, in declaration order.
    pub templates: Vec<TemplateSpec>,
    /// Compiled queries, in declaration order.
    pub queries: Vec<CompiledQuery>,
    /// Pass-computed annotations.
    pub plan: PipelinePlan,
    /// Source provenance (never rendered into IR dumps).
    pub provenance: Provenance,
}

impl Module {
    /// Looks up a template by its source trigger name.
    pub fn template(&self, trigger_name: &str) -> Option<&TemplateSpec> {
        self.templates.iter().find(|t| t.trigger_name == trigger_name)
    }

    /// Looks up a compiled query by name.
    pub fn query(&self, name: &str) -> Option<&CompiledQuery> {
        self.queries.iter().find(|q| q.name == name)
    }
}
