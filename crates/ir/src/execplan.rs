//! IR-level executor plan: the flattened op-program shape each template's
//! editor chain lowers to in the compiled pipeline executor
//! (`ht_asic::exec`).
//!
//! The `exec-lowering` pass mirrors, at the IR level, what the backend's
//! threaded-code compiler will do to the per-template editor actions when
//! the built switch is flipped to `ExecMode::Compiled`: each
//! [`EditSpec`](crate::template::EditSpec) becomes a short run of flat
//! ops, single-value lists constant-fold away into the CPU-installed
//! template base, and the remaining op mix is recorded per template.  The
//! plan lets `htctl compile --dump-ir` consumers and the `--profile`
//! report reason about executor cost without building a switch.
//!
//! Like [`Provenance`](crate::module::Provenance), the plan is
//! deliberately **not** rendered by `Module::to_text`/`Module::to_json`,
//! so golden IR snapshots are unaffected by executor planning.

/// Planned op mix of one editor program, by op class of the compiled
/// executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMixPlan {
    /// Constant field stores (`Set`/`SetBatch` stores).
    pub sets: usize,
    /// Stateful-ALU register programs (value lists and progressions
    /// advance an index register per packet).
    pub salus: usize,
    /// Hardware RNG draws.
    pub rngs: usize,
    /// Hash computations (inverse-transform table indexing).
    pub hashes: usize,
}

impl OpMixPlan {
    /// Total planned ops across all classes.
    pub fn total(&self) -> usize {
        self.sets + self.salus + self.rngs + self.hashes
    }
}

/// The planned flattened program of one template's editor chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditorProgramPlan {
    /// Template the program edits.
    pub template_id: u16,
    /// Ops the naive one-op-per-edit-step lowering would emit.
    pub raw_ops: usize,
    /// Ops after constant folding (single-value lists fold into the
    /// CPU-installed template base and cost nothing per loop).
    pub ops: usize,
    /// Edits folded away entirely.
    pub folded_edits: usize,
    /// Post-folding op mix.
    pub mix: OpMixPlan,
}

impl EditorProgramPlan {
    /// Whether the backend's vector planner can lane-batch this editor
    /// program: RNG draws consume the world RNG stream in packet order,
    /// so any `rngs > 0` forces the per-packet fallback.  (The remaining
    /// vector hazards — externs, digest emission, aliased stateful
    /// ALUs — are properties of the assembled pipeline, not of a single
    /// editor chain, and are decided by `ht_asic::exec::vector_plan` on
    /// the built switch; this flag mirrors the one hazard knowable at
    /// the IR level.)
    pub fn vector_safe(&self) -> bool {
        self.mix.rngs == 0
    }
}

/// The module-wide executor plan: one entry per template, in template
/// order.  Empty (the default) until the `exec-lowering` pass runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecPlan {
    /// Per-template editor programs.
    pub editors: Vec<EditorProgramPlan>,
}

impl ExecPlan {
    /// Whether the pass has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.editors.is_empty()
    }

    /// Total planned post-folding ops across all templates.
    pub fn total_ops(&self) -> usize {
        self.editors.iter().map(|e| e.ops).sum()
    }

    /// Whether every planned editor program is free of IR-level vector
    /// hazards ([`EditorProgramPlan::vector_safe`]): a `false` here
    /// predicts the backend's vector planner will reject the ingress and
    /// `--exec vector` will run the compiled fallback.
    pub fn vector_safe(&self) -> bool {
        self.editors.iter().all(EditorProgramPlan::vector_safe)
    }
}

/// Plans the flattened editor program of one template's edit list.
///
/// Lowering rules (mirroring the backend threaded-code compiler):
///
/// * a single-value `ValueList` is a constant — it folds into the
///   template base installed by the switch CPU and costs no per-loop ops;
/// * a multi-value `ValueList` costs a SALU index advance plus one store;
/// * a `Progression` is a single SALU program (the register carries the
///   running value);
/// * a `RandomUniform` is one RNG draw;
/// * a `RandomTable` is one RNG draw plus one hash-indexed store.
pub fn plan_editor(template_id: u16, edits: &[crate::template::EditSpec]) -> EditorProgramPlan {
    use crate::template::EditSpec;
    let mut plan = EditorProgramPlan { template_id, ..Default::default() };
    for e in edits {
        match e {
            EditSpec::ValueList { values, .. } if values.len() <= 1 => {
                plan.raw_ops += 1;
                plan.folded_edits += 1;
            }
            EditSpec::ValueList { .. } => {
                plan.raw_ops += 2;
                plan.mix.salus += 1;
                plan.mix.sets += 1;
            }
            EditSpec::Progression { .. } => {
                plan.raw_ops += 1;
                plan.mix.salus += 1;
            }
            EditSpec::RandomUniform { .. } => {
                plan.raw_ops += 1;
                plan.mix.rngs += 1;
            }
            EditSpec::RandomTable { .. } => {
                plan.raw_ops += 2;
                plan.mix.rngs += 1;
                plan.mix.hashes += 1;
            }
        }
    }
    plan.ops = plan.mix.total();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::HeaderField;
    use crate::template::EditSpec;

    #[test]
    fn single_value_lists_fold_away() {
        let edits = vec![
            EditSpec::ValueList { field: HeaderField::Sport, values: vec![7] },
            EditSpec::ValueList { field: HeaderField::Dport, values: vec![1, 2, 3] },
            EditSpec::Progression { field: HeaderField::Sip, start: 0, end: 10, step: 1 },
            EditSpec::RandomUniform { field: HeaderField::Ident, bits: 8, offset: 0 },
            EditSpec::RandomTable { field: HeaderField::Dip, values: vec![1, 2, 3, 4], bits: 2 },
        ];
        let p = plan_editor(3, &edits);
        assert_eq!(p.template_id, 3);
        assert_eq!(p.raw_ops, 7);
        assert_eq!(p.folded_edits, 1);
        assert_eq!(p.ops, 6);
        assert_eq!(p.mix, OpMixPlan { sets: 1, salus: 2, rngs: 2, hashes: 1 });
        // Two RNG draws → the vector planner must fall back per packet.
        assert!(!p.vector_safe());
        assert!(!ExecPlan { editors: vec![p] }.vector_safe());
    }

    #[test]
    fn rng_free_editors_are_vector_safe() {
        let edits = vec![
            EditSpec::ValueList { field: HeaderField::Dport, values: vec![1, 2, 3] },
            EditSpec::Progression { field: HeaderField::Sip, start: 0, end: 10, step: 1 },
        ];
        let p = plan_editor(2, &edits);
        assert!(p.vector_safe());
        assert!(ExecPlan { editors: vec![p] }.vector_safe());
        assert!(ExecPlan::default().vector_safe());
    }

    #[test]
    fn empty_edit_list_plans_no_ops() {
        let p = plan_editor(1, &[]);
        assert_eq!(p.ops, 0);
        assert_eq!(p.raw_ops, 0);
        let plan = ExecPlan { editors: vec![p] };
        assert!(!plan.is_empty());
        assert_eq!(plan.total_ops(), 0);
        assert!(ExecPlan::default().is_empty());
    }
}
