//! End-to-end tests: NTAPI source → compiler → programmed switch →
//! discrete-event run → query results, over simulated testbeds.

use ht_asic::phv::fields;
use ht_asic::time::{ms, us, PS_PER_SEC};
use ht_asic::{LinkSpec, Switch, World};
use ht_core::{build, distinct_count, global_value, keyed_results, Gbps, TesterConfig};
use ht_cpu::SwitchCpu;
use ht_dut::{Sink, TcpResponder};
use ht_ntapi::{compile, parse};
use ht_packet::wire::{gbps, line_rate_pps};

/// Builds, installs and starts a task; returns `(world, switch id, sink id)`
/// with the tester's port 0 wired to the sink's port 0.
fn testbed(src: &str, copies: usize, sink: Sink) -> (World, usize, usize) {
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut bt =
        build(&task, &TesterConfig::builder().ports(4).speed(Gbps(100)).build().unwrap()).unwrap();
    let mut all = Vec::new();
    for i in 0..bt.templates.len() {
        all.extend(bt.template_copies(i, copies));
    }
    let mut w = World::builder().seed(1).build().unwrap();
    let sw = w.add_device(Box::new(bt.switch));
    let sk = w.add_device(Box::new(sink));
    w.link((sw, 0), (sk, 0), LinkSpec::new());
    let cpu = SwitchCpu::new();
    cpu.inject_templates(&mut w, sw, all, 0);
    (w, sw, sk)
}

fn handles(src: &str) -> ht_core::BuiltTester {
    let task = compile(&parse(src).unwrap()).unwrap();
    build(&task, &TesterConfig::builder().ports(4).speed(Gbps(100)).build().unwrap()).unwrap()
}

const THROUGHPUT_SRC: &str = r#"
T1 = trigger()
    .set([dip, sip, proto, dport, sport], [10.0.0.2, 10.0.0.1, udp, 1, 1])
    .set([loop, pkt_len], [0, 64])
Q1 = query(T1).map(p -> (pkt_len)).reduce(func=sum)
Q2 = query().map(p -> (pkt_len)).reduce(func=sum)
"#;

#[test]
fn throughput_task_reaches_line_rate() {
    // 89 64-byte templates saturate a 100G port (Fig. 9a).  Injection over
    // PCIe takes ~890 µs; measure a clean window after the ramp.
    let (mut w, sw, sk) = testbed(THROUGHPUT_SRC, 89, Sink::new("sink"));
    w.run_until(ms(1));
    w.device_mut::<Sink>(sk).reset();
    w.run_until(ms(2));

    let sink: &Sink = w.device(sk);
    let pps = sink.ports[&0].pps();
    let line = line_rate_pps(64, gbps(100));
    assert!((pps - line).abs() / line < 0.01, "measured {pps:.0} pps, line rate {line:.0} pps");

    // Q1 (sent bytes) agrees with what the sink saw, modulo in-flight
    // packets.
    let sw_ref: &Switch = w.device(sw);
    let bt = handles(THROUGHPUT_SRC);
    // Rebuild handles against the same program layout: register ids are
    // deterministic, so reading through a fresh build's handles is valid.
    let q1 = &bt.handles.queries["Q1"];
    let sent_bytes = global_value(sw_ref, q1);
    // Every transmitted frame is a 64-byte replica, so the sent-traffic
    // query must agree exactly with the MAC counter.
    assert_eq!(sent_bytes, sw_ref.counters.tx_frames * 64);
    assert!(sent_bytes > 0);

    // Q2 (received) saw nothing — no traffic returns to the tester.
    let q2 = &bt.handles.queries["Q2"];
    assert_eq!(global_value(sw_ref, q2), 0);
}

#[test]
fn rate_control_spacing_matches_interval() {
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64).set(interval, 1us)
"#;
    let (mut w, _sw, sk) = testbed(src, 64, Sink::new("sink").logging_arrivals());
    w.run_until(ms(2));

    let sink: &Sink = w.device(sk);
    let gaps = sink.inter_arrivals_ns(0);
    assert!(gaps.len() > 1500, "only {} packets", gaps.len());
    let metrics = ht_stats::ErrorMetrics::against_target(&gaps, 1000.0).unwrap();
    // Quantization is bounded by the template arrival spacing (≈ RTT/64 ≈
    // 9 ns) plus mcast jitter.
    assert!((metrics.mean - 1000.0).abs() < 20.0, "mean gap {} ns", metrics.mean);
    assert!(metrics.mae < 20.0, "MAE {} ns", metrics.mae);
}

#[test]
fn keyed_reduce_on_sent_traffic_matches_oracle() {
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(sport, range(1000, 1019, 1)).set(interval, 1us)
Q1 = query(T1).reduce(keys=[sport], func=count)
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut bt =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().unwrap()).unwrap();
    let copies = bt.template_copies(0, 8);

    let mut w = World::builder().seed(1).build().unwrap();
    let sink = Sink::new("sink").capturing(vec![fields::UDP_SPORT]);
    let sw = w.add_device(Box::new(bt.switch));
    let sk = w.add_device(Box::new(sink));
    w.link((sw, 0), (sk, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut w, sw, copies, 0);
    w.run_until(ms(2));

    // Oracle: the sink's captured sport values.
    let mut oracle = std::collections::HashMap::new();
    for (_, _, vals) in &w.device::<Sink>(sk).captured {
        *oracle.entry(vec![vals[0]]).or_insert(0u64) += 1;
    }
    assert!(!oracle.is_empty());
    // The editor must have cycled through all 20 sports.
    assert_eq!(oracle.len(), 20, "sports seen: {}", oracle.len());

    let sw_ref: &Switch = w.device(sw);
    let q = &bt.handles.queries["Q1"];
    let space = ht_ntapi::headerspace::global_space(
        &task.templates,
        &[ht_ntapi::ast::HeaderField::Sport],
        false,
    )
    .unwrap();
    let measured = keyed_results(sw_ref, q, &space);
    // Query counts include in-flight packets; allow the last few.
    for (key, &n) in &oracle {
        let m = measured.get(key).copied().unwrap_or(0);
        assert!(m >= n && m <= n + 5, "key {key:?}: query {m} vs oracle {n}");
    }
}

#[test]
fn distinct_counts_received_flows() {
    // The tester talks to itself: port 0 → port 1 via a wire; Q1 counts
    // distinct received source ports.
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(sport, range(5000, 5099, 1)).set(interval, 1us)
Q1 = query().distinct(keys=[sport])
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut bt =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().unwrap()).unwrap();
    let copies = bt.template_copies(0, 8);

    let mut w = World::builder().seed(1).build().unwrap();
    let sw = w.add_device(Box::new(bt.switch));
    // Loop port 0 back into port 1 of the same device.
    w.link((sw, 0), (sw, 1), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut w, sw, copies, 0);
    w.run_until(ms(2));

    let sw_ref: &Switch = w.device(sw);
    let q = &bt.handles.queries["Q1"];
    assert_eq!(distinct_count(sw_ref, q), 100);
}

#[test]
fn web_testing_walkthrough_completes_handshakes() {
    // §5.4, trimmed to the handshake+request+release core.
    let src = r#"
T1 = trigger().set([dip, dport, proto, flag, seq_no], [9.9.9.9, 80, tcp, SYN, 1])
    .set(sport, range(1024, 1087, 1)).set(interval, 10us)
Q1 = query().filter(tcp_flag == SYN+ACK)
T2 = trigger(Q1).set([dip, sip], [Q1.sip, Q1.dip])
    .set([dport, sport], [Q1.sport, Q1.dport])
    .set([flag, seq_no, ack_no], [ACK, Q1.ack_no, Q1.seq_no + 1])
T3 = trigger(Q1).set([dip, sip], [Q1.sip, Q1.dip])
    .set([dport, sport], [Q1.sport, Q1.dport])
    .set([flag, seq_no, ack_no], [PSH+ACK, Q1.ack_no, Q1.seq_no + 1])
    .set(payload, "GET index.html")
Q5 = query().filter(tcp_flag == SYN+ACK).reduce(func=count)
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut bt =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().unwrap()).unwrap();
    // T1 needs copies for rate; T2/T3 fire from captures, one copy each.
    let mut all = bt.template_copies(0, 4);
    all.extend(bt.template_copies(1, 4));
    all.extend(bt.template_copies(2, 4));

    let mut w = World::builder().seed(1).build().unwrap();
    let sw = w.add_device(Box::new(bt.switch));
    let srv = w.add_device(Box::new(TcpResponder::new("server", us(1))));
    w.link((sw, 0), (srv, 0), LinkSpec::new().delay(us(1)));
    SwitchCpu::new().inject_templates(&mut w, sw, all, 0);
    w.run_until(ms(5));

    let server: &TcpResponder = w.device(srv);
    assert!(server.stats.syns > 100, "syns {}", server.stats.syns);
    // Every SYN+ACK triggers an ACK (T2) and a request (T3).
    assert!(
        server.stats.acks as f64 > server.stats.syns as f64 * 0.8,
        "acks {} vs syns {}",
        server.stats.acks,
        server.stats.syns
    );
    assert!(
        server.stats.requests as f64 > server.stats.syns as f64 * 0.8,
        "requests {} vs syns {}",
        server.stats.requests,
        server.stats.syns
    );
    assert!(server.stats.data_sent >= 5 * server.stats.requests);

    // Q5 counted the SYN+ACKs.
    let sw_ref: &Switch = w.device(sw);
    let q5 = &bt.handles.queries["Q5"];
    assert_eq!(global_value(sw_ref, q5), server.stats.syns);
}

#[test]
fn loop_count_caps_generated_packets() {
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(sport, range(1, 10, 1)).set([loop, interval], [3, 1us])
"#;
    let (mut w, _sw, sk) = testbed(src, 8, Sink::new("sink"));
    w.run_until(ms(5));
    // 3 loops × 10 list values = 30 packets.
    assert_eq!(w.device::<Sink>(sk).total_frames(), 30);
}

#[test]
fn editor_value_list_cycles_in_order() {
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(dport, [80, 81, 82]).set(interval, 10us)
"#;
    let (mut w, _sw, sk) = testbed(src, 4, Sink::new("sink").capturing(vec![fields::UDP_DPORT]));
    w.run_until(ms(1));
    let sink: &Sink = w.device(sk);
    assert!(sink.captured.len() > 50);
    for (i, (_, _, vals)) in sink.captured.iter().enumerate() {
        assert_eq!(vals[0], 80 + (i as u64 % 3), "packet {i}");
    }
}

#[test]
fn random_normal_editor_matches_distribution() {
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(dport, random(normal, 30000, 2000, 12))
"#;
    let (mut w, _sw, sk) = testbed(src, 16, Sink::new("sink").capturing(vec![fields::UDP_DPORT]));
    w.run_until(ms(1));
    let sink: &Sink = w.device(sk);
    let samples: Vec<f64> = sink.captured.iter().map(|(_, _, v)| v[0] as f64).collect();
    assert!(samples.len() > 10_000, "{} samples", samples.len());
    let s = ht_stats::Summary::new(&samples).unwrap();
    assert!((s.mean() - 30000.0).abs() < 100.0, "mean {}", s.mean());
    assert!((s.stddev() - 2000.0).abs() < 150.0, "stddev {}", s.stddev());
}

#[test]
fn sent_counter_rate_is_stable_under_interval() {
    // 100 kpps for 2 ms ≈ 200 packets.
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64).set(interval, 10us)
Q1 = query(T1).reduce(func=count)
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut bt =
        build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().unwrap()).unwrap();
    let copies = bt.template_copies(0, 8);
    let mut w = World::builder().seed(1).build().unwrap();
    let sw = w.add_device(Box::new(bt.switch));
    let sk = w.add_device(Box::new(Sink::new("sink")));
    w.link((sw, 0), (sk, 0), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut w, sw, copies, 0);
    let horizon = ms(2);
    w.run_until(horizon);
    let sw_ref: &Switch = w.device(sw);
    let sent = global_value(sw_ref, &bt.handles.queries["Q1"]);
    let expected = (horizon as f64 / us(10) as f64) as u64;
    assert!(
        (sent as i64 - expected as i64).unsigned_abs() <= expected / 50 + 2,
        "sent {sent}, expected ≈{expected}"
    );
    let _ = PS_PER_SEC;
}

#[test]
fn random_interval_produces_exponential_gaps() {
    // §3.1: "random inter-departure time" — the interval is drawn from an
    // exponential distribution per fire, via the deadline register.
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(interval, random(exp, 20us, 12))
"#;
    let (mut w, _sw, sk) = testbed(src, 16, Sink::new("sink").logging_arrivals());
    w.run_until(ms(60));

    let gaps = w.device::<Sink>(sk).inter_arrivals_ns(0);
    assert!(gaps.len() > 2000, "only {} gaps", gaps.len());
    let s = ht_stats::Summary::new(&gaps).unwrap();
    // Exponential(mean 20 µs): mean ≈ stddev ≈ 20000 ns.
    assert!((s.mean() - 20_000.0).abs() < 1_500.0, "mean gap {} ns", s.mean());
    assert!((s.stddev() - 20_000.0).abs() < 2_500.0, "stddev {} ns", s.stddev());
    // KS check against the analytic distribution.
    let dist = ht_stats::Distribution::Exponential { rate: 1.0 / s.mean() };
    let ks = ht_stats::Ecdf::new(&gaps).unwrap().ks_statistic(&dist);
    assert!(ks < 0.05, "KS {ks}");
}

#[test]
fn random_interval_uniform_gaps() {
    // Uniform on [2^23, 2^24) ps = [8.39 µs, 16.78 µs) — an exact
    // power-of-two span, so §6.1's scope limiting leaves it unchanged.
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)
    .set(interval, random(uniform, 8388608, 16777216, 23))
"#;
    let (mut w, _sw, sk) = testbed(src, 16, Sink::new("sink").logging_arrivals());
    w.run_until(ms(40));
    let gaps = w.device::<Sink>(sk).inter_arrivals_ns(0);
    assert!(gaps.len() > 1500, "only {} gaps", gaps.len());
    let s = ht_stats::Summary::new(&gaps).unwrap();
    let expected_mean = (8_388_608.0 + 16_777_216.0) / 2.0 / 1000.0;
    assert!((s.mean() - expected_mean).abs() < 300.0, "mean {} vs {expected_mean}", s.mean());
    assert!(s.min() >= 8_388.0, "min gap {} below lower bound", s.min());
}

#[test]
fn global_max_reduce_tracks_largest_frame() {
    // Two templates of different sizes; Q1 keeps the largest sent frame.
    let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set([pkt_len, interval], [64, 10us])
T2 = trigger().set([dip, proto], [10.0.0.2, udp]).set([pkt_len, interval], [512, 40us])
Q1 = query().map(p -> (pkt_len)).reduce(func=max)
"#;
    let task = compile(&parse(src).unwrap()).unwrap();
    let mut bt =
        build(&task, &TesterConfig::builder().ports(2).speed(Gbps(100)).build().unwrap()).unwrap();
    let mut all = bt.template_copies(0, 1);
    all.extend(bt.template_copies(1, 1));
    let mut w = World::builder().seed(1).build().unwrap();
    let sw = w.add_device(Box::new(bt.switch));
    // Self-wire so the received-traffic query sees the generated frames.
    w.link((sw, 0), (sw, 1), LinkSpec::new());
    SwitchCpu::new().inject_templates(&mut w, sw, all, 0);

    // After only small frames returned, the max is 64…
    w.run_until(us(35));
    let sw_ref: &Switch = w.device(sw);
    assert_eq!(global_value(sw_ref, &bt.handles.queries["Q1"]), 64);
    // …and once a 512-byte frame arrives it sticks.
    w.run_until(ms(1));
    let sw_ref: &Switch = w.device(sw);
    assert_eq!(global_value(sw_ref, &bt.handles.queries["Q1"]), 512);
}
