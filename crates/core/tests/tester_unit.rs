//! Unit tests for the tester builder's sizing helpers and rejection paths.

use ht_core::{build, BuildError, Gbps, TesterConfig};
use ht_ntapi::{compile, parse};
use ht_packet::wire::gbps;

fn built(src: &str) -> ht_core::BuiltTester {
    let task = compile(&parse(src).unwrap()).unwrap();
    build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().unwrap()).unwrap()
}

#[test]
fn line_rate_copies_scale_with_frame_size() {
    let small = built("T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)");
    let big = built("T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 1500)");
    let c_small = small.copies_for_line_rate(0, gbps(100));
    let c_big = big.copies_for_line_rate(0, gbps(100));
    // 64 B needs ~86 copies, 1500 B a handful; both bounded by capacity+2.
    assert!(c_small > 80 && c_small <= 91, "{c_small}");
    assert!(c_big <= 6, "{c_big}");
    // Lower port speed needs fewer copies.
    assert!(small.copies_for_line_rate(0, gbps(10)) < c_small);
}

#[test]
fn interval_copies_shrink_with_slower_rates() {
    let fast = built(
        "T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64).set(interval, 200ns)",
    );
    let slow = built(
        "T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64).set(interval, 10us)",
    );
    let c_fast = fast.copies_for_interval(0, gbps(100));
    let c_slow = slow.copies_for_interval(0, gbps(100));
    assert!(c_fast > c_slow, "fast {c_fast} slow {c_slow}");
    assert_eq!(c_slow, 1, "a 10 µs interval needs a single circulating copy");
    // 2 × 570 ns / 200 ns = 6 copies.
    assert_eq!(c_fast, 6);
}

#[test]
fn no_interval_falls_back_to_line_rate_count() {
    let t = built("T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)");
    assert_eq!(t.copies_for_interval(0, gbps(100)), t.copies_for_line_rate(0, gbps(100)));
}

#[test]
fn oversized_random_table_is_a_build_error() {
    // bits 18 passes NTAPI validation (≤20) but exceeds the editor's 2^16
    // table capacity.
    let task =
        compile(&parse("T1 = trigger().set(dport, random(normal, 30000, 2000, 18))").unwrap())
            .unwrap();
    match build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().unwrap()) {
        Err(BuildError::RandomTableTooLarge { bits: 18 }) => {}
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn template_copies_have_unique_uids_and_same_template_id() {
    let mut t = built("T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(pkt_len, 64)");
    let copies = t.template_copies(0, 5);
    let mut uids: Vec<u64> = copies.iter().map(|p| p.uid).collect();
    uids.sort_unstable();
    uids.dedup();
    assert_eq!(uids.len(), 5, "uids must be unique");
    assert!(copies.iter().all(|p| p.template_id() == 1));
    assert!(copies.iter().all(|p| p.len() == 64));
}
