//! Property-based tests for HyperTester's counter-based query engine:
//! against a HashMap oracle, the merged readout (arrays + FIFO +
//! evictions + exact table) must be **exactly** right for any workload — the paper's
//! headline accuracy claim for `reduce`/`distinct`.

use ht_asic::action::ExecCtx;
use ht_asic::digest::{DigestId, DigestRecord};
use ht_asic::phv::{fields, FieldTable};
use ht_asic::pipeline::Extern;
use ht_asic::register::RegisterFile;
use ht_core::fifo::RegFifo;
use ht_core::htpr::{CuckooEngine, CuckooExtern, CuckooStats};
use ht_ntapi::ast::ReduceFunc;
use ht_ntapi::fp::{compute_fp_entries, HashConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// A miniature harness driving a cuckoo engine directly: packets are PHVs
/// with (sport, dport) keys; template "pops" are interleaved.
struct Harness {
    ft: FieldTable,
    regs: RegisterFile,
    rng: StdRng,
    digests: Vec<DigestRecord>,
    ext: CuckooExtern,
    match_flag: ht_asic::FieldId,
    exact_miss: ht_asic::FieldId,
}

impl Harness {
    fn new(array_bits: u32, digest_bits: u32, fifo_cap: usize, func: ReduceFunc) -> Self {
        let mut ft = FieldTable::new();
        let mut regs = RegisterFile::new();
        let match_flag = ft.intern("meta.match", 1);
        let exact_miss = ft.intern("meta.exmiss", 1);
        let count_out = ft.intern("meta.count", 64);
        let cfg = HashConfig { array_bits, digest_bits };
        let arr_key =
            [regs.alloc("a1k", 64, 1 << array_bits), regs.alloc("a2k", 64, 1 << array_bits)];
        let arr_cnt =
            [regs.alloc("a1c", 64, 1 << array_bits), regs.alloc("a2c", 64, 1 << array_bits)];
        let fifo = RegFifo::new("kv", &mut regs, &mut ft, 3, fifo_cap);
        let engine = Arc::new(Mutex::new(CuckooEngine {
            cfg,
            key_fields: vec![fields::TCP_SPORT, fields::TCP_DPORT],
            func,
            value_field: None,
            match_flag,
            exact_miss_flag: exact_miss,
            count_out,
            arr_key,
            arr_cnt,
            fifo,
            evict_digest: DigestId(1),
            stats: CuckooStats::default(),
        }));
        Harness {
            ft,
            regs,
            rng: StdRng::seed_from_u64(5),
            digests: Vec::new(),
            ext: CuckooExtern::new("cuckoo", engine),
            match_flag,
            exact_miss,
        }
    }

    fn packet(&mut self, sport: u64, dport: u64, exact_keys: &[Vec<u64>]) {
        let mut phv = self.ft.new_phv();
        phv.set(&self.ft, fields::TCP_SPORT, sport);
        phv.set(&self.ft, fields::TCP_DPORT, dport);
        phv.set(&self.ft, self.match_flag, 1);
        // Model the exact table: diverted keys never reach the engine.
        let diverted = exact_keys.iter().any(|k| k[0] == sport && k[1] == dport);
        phv.set(&self.ft, self.exact_miss, u64::from(!diverted));
        let mut ctx = ExecCtx {
            table: &self.ft,
            regs: &mut self.regs,
            rng: &mut self.rng,
            digests: &mut self.digests,
            now: 0,
        };
        self.ext.execute(&mut phv, &mut ctx);
    }

    /// One recirculating-template pass (drives a FIFO pop).
    fn template_pass(&mut self) {
        let mut phv = self.ft.new_phv();
        phv.set(&self.ft, fields::TEMPLATE_ID, 1);
        let mut ctx = ExecCtx {
            table: &self.ft,
            regs: &mut self.regs,
            rng: &mut self.rng,
            digests: &mut self.digests,
            now: 0,
        };
        self.ext.execute(&mut phv, &mut ctx);
    }

    /// Merged digest-level readout including CPU-side evictions.
    fn merged(&self) -> HashMap<(u64, u64), u64> {
        let eng = self.ext.engine.lock().unwrap();
        let mut map = eng.resident_counts(&self.regs);
        for d in self.digests.iter().filter(|d| d.id == DigestId(1)) {
            let (b, dg, c) = (d.values[0], d.values[1], d.values[2]);
            let alt = eng.cfg.alt_bucket(b, dg);
            *map.entry((b.min(alt), dg)).or_insert(0) += c;
        }
        map
    }
}

fn keys_of(pkts: &[(u16, u16)]) -> Vec<Vec<u64>> {
    let mut v: Vec<Vec<u64>> =
        pkts.iter().map(|&(s, d)| vec![u64::from(s), u64::from(d)]).collect();
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With the fp precompute diverting ambiguous keys, the engine's merged
    /// counts equal a HashMap oracle exactly, for any packet sequence and
    /// (small, collision-heavy) hash configuration.
    #[test]
    fn keyed_count_matches_oracle(
        pkts in prop::collection::vec((0u16..64, 0u16..8), 1..400),
        array_bits in 2u32..8,
        pops_every in 1usize..5,
    ) {
        let space = keys_of(&pkts);
        let cfg = HashConfig { array_bits, digest_bits: 8 };
        let exact = compute_fp_entries(&space, &cfg);
        let mut h = Harness::new(array_bits, 8, 64, ReduceFunc::Count);

        let mut oracle: HashMap<(u64, u64), u64> = HashMap::new();
        for (i, &(s, d)) in pkts.iter().enumerate() {
            let (s, d) = (u64::from(s), u64::from(d));
            let diverted = exact.iter().any(|k| k[0] == s && k[1] == d);
            h.packet(s, d, &exact);
            if !diverted {
                *oracle.entry((s, d)).or_insert(0) += 1;
            }
            if i % pops_every == 0 {
                h.template_pass();
            }
        }
        // Drain the FIFO completely.
        for _ in 0..200 {
            h.template_pass();
        }

        // Oracle keyed by canonical (bucket, digest); by construction the
        // kept keys are unambiguous, so this mapping is injective.
        let eng = h.ext.engine.lock().unwrap();
        let mut oracle_canon: HashMap<(u64, u64), u64> = HashMap::new();
        for ((s, d), n) in &oracle {
            let canon = eng.canonical_of_key(&[*s, *d]);
            let prev = oracle_canon.insert(canon, *n);
            prop_assert!(prev.is_none(), "fp precompute left ambiguous keys");
        }
        drop(eng);
        prop_assert_eq!(h.merged(), oracle_canon);
    }

    /// Distinct counting: merged map size equals the number of distinct
    /// non-diverted keys.
    #[test]
    fn distinct_matches_oracle(
        pkts in prop::collection::vec((0u16..128, 0u16..4), 1..300),
        array_bits in 3u32..8,
    ) {
        let space = keys_of(&pkts);
        let cfg = HashConfig { array_bits, digest_bits: 8 };
        let exact = compute_fp_entries(&space, &cfg);
        let mut h = Harness::new(array_bits, 8, 128, ReduceFunc::Count);
        for &(s, d) in &pkts {
            h.packet(u64::from(s), u64::from(d), &exact);
            h.template_pass();
        }
        for _ in 0..300 {
            h.template_pass();
        }
        let expected = space
            .iter()
            .filter(|k| !exact.contains(k))
            .count();
        prop_assert_eq!(h.merged().len(), expected);
    }

    /// The FIFO preserves order and never loses records for arbitrary
    /// enqueue/dequeue interleavings (bounded by capacity).
    #[test]
    fn fifo_is_a_fifo(ops in prop::collection::vec(any::<bool>(), 1..400)) {
        let mut ft = FieldTable::new();
        let mut regs = RegisterFile::new();
        let mut fifo = RegFifo::new("f", &mut regs, &mut ft, 1, 32);
        let mut phv = ft.new_phv();
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for op in ops {
            if op {
                let ok = fifo.enqueue(&mut regs, &ft, &mut phv, &[next]);
                if model.len() < 32 {
                    prop_assert!(ok);
                    model.push_back(next);
                } else {
                    prop_assert!(!ok, "model full but enqueue succeeded");
                }
                next += 1;
            } else {
                let got = fifo.dequeue(&mut regs, &ft, &mut phv);
                let want = model.pop_front().map(|v| vec![v]);
                prop_assert_eq!(got, want);
            }
        }
        prop_assert_eq!(fifo.len(&regs) as usize, model.len());
    }
}
