//! HyperTester Packet Sender (HTPS, §5.1): accelerator → replicator →
//! editor.
//!
//! * **Accelerator** — an ingress table recirculates every template packet,
//!   keeping a stable packet source looping at the recirculation bandwidth.
//! * **Replicator** — a register-based rate-control timer (`if now − last ≥
//!   interval { last = now; fire }`) gates a multicast-group assignment;
//!   the mcast engine then clones the template to the configured ports.
//! * **Editor** — egress tables apply the four modification types to each
//!   replica: constant values (already baked into the template by the
//!   CPU), value lists indexed by a per-template packet id, arithmetic
//!   progressions in registers, and random values (uniform RNG primitive /
//!   two-table inverse transform).
//!
//! Query-based triggers (stateless connections, §5.3) replace the timer
//! with a [`StatelessExtern`] that pops one captured record per template
//! loop from the trigger FIFO and fires only when a record was available.

use crate::fieldmap::resolve;
use crate::fifo::RegFifo;
use crate::htpr::{record_index, RECORD_FIELDS};
use ht_asic::action::{ActionSet, ExecCtx, PrimitiveOp};
use ht_asic::phv::{fields, FieldId, Phv};
use ht_asic::pipeline::Extern;
use ht_asic::register::{
    Cmp, CondExpr, SaluCond, SaluOperand, SaluOutput, SaluOutputSrc, SaluProgram, SaluUpdate,
};
use ht_asic::resources::ResourceUsage;
use ht_asic::switch::Switch;
use ht_asic::table::{Gateway, MatchKey, MatchKind, Table};
use ht_ntapi::compile::{EditSpec, TemplateSpec};
use std::sync::Arc;
use std::sync::Mutex;

/// Fires a query-based trigger: pops one trigger record per template loop,
/// loading the captured fields into `meta.rec_*` and setting the fire flag.
#[derive(Debug)]
pub struct StatelessExtern {
    name: String,
    /// The template this extern drives.
    pub template_id: u16,
    /// The trigger FIFO filled by the capturing query.
    pub fifo: Arc<Mutex<RegFifo>>,
    /// Fire flag (consumed by the replicate table's gateway).
    pub fire_field: FieldId,
    /// `meta.rec_*` fields, parallel to [`RECORD_FIELDS`].
    pub rec_fields: Vec<FieldId>,
}

impl Extern for StatelessExtern {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        if phv.get(fields::TEMPLATE_ID) != u64::from(self.template_id) {
            return;
        }
        match self.fifo.lock().unwrap().dequeue(ctx.regs, ctx.table, phv) {
            Some(rec) => {
                for (f, v) in self.rec_fields.iter().zip(&rec) {
                    phv.set(ctx.table, *f, *v);
                }
                phv.set(ctx.table, self.fire_field, 1);
            }
            None => phv.set(ctx.table, self.fire_field, 0),
        }
    }

    fn resources(&self) -> ResourceUsage {
        ResourceUsage {
            vliw_slots: RECORD_FIELDS.len() as u64 + 1,
            gateways: 1,
            ..Default::default()
        }
    }

    fn reads(&self) -> Vec<FieldId> {
        vec![fields::TEMPLATE_ID]
    }

    fn writes(&self) -> Vec<FieldId> {
        let mut w = self.rec_fields.clone();
        w.push(self.fire_field);
        w
    }

    fn registers(&self) -> Vec<ht_asic::register::RegId> {
        self.fifo.lock().unwrap().registers()
    }
}

impl StatelessExtern {
    /// Creates the extern, interning its `meta.rec_*` fields.
    pub fn new(
        sw: &mut Switch,
        template_id: u16,
        fifo: Arc<Mutex<RegFifo>>,
        fire_field: FieldId,
    ) -> Self {
        let rec_fields = (0..RECORD_FIELDS.len())
            .map(|i| sw.fields.intern(&format!("meta.rec{i}"), 64))
            .collect();
        StatelessExtern {
            name: format!("stateless_t{template_id}"),
            template_id,
            fifo,
            fire_field,
            rec_fields,
        }
    }

    /// The `meta.rec_*` field carrying a given captured PHV field.
    pub fn rec_field_for(&self, src: FieldId) -> Option<FieldId> {
        record_index(src).map(|i| self.rec_fields[i])
    }
}

/// Handles to the sender's per-template state, for tests and result
/// readback.
#[derive(Debug, Clone)]
pub struct TemplateHandles {
    /// Template id.
    pub id: u16,
    /// The fire-flag field.
    pub fire_field: FieldId,
    /// The rate timer register (interval-based templates).
    pub timer_reg: Option<ht_asic::register::RegId>,
    /// The loop-guard register (templates with a finite loop count).
    pub loop_reg: Option<ht_asic::register::RegId>,
    /// The `meta.rec_*` fields (query-based templates), parallel to
    /// [`RECORD_FIELDS`].
    pub rec_fields: Vec<FieldId>,
}

/// Builds the HTPS ingress components for one template: timer or stateless
/// pop, optional loop guard, replication and recirculation entries.
///
/// The caller supplies `timer_table`, `replicate_table` and
/// `recirc_table` locations (shared across templates) plus the per-template
/// trigger FIFO for query-based triggers.
#[allow(clippy::too_many_arguments)]
pub fn build_template_ingress(
    sw: &mut Switch,
    tpl: &TemplateSpec,
    fire_field: FieldId,
    timer_table: (usize, usize),
    guard_table: (usize, usize),
    replicate_table: (usize, usize),
    recirc_table: (usize, usize),
    trigger_fifo: Option<Arc<Mutex<RegFifo>>>,
) -> TemplateHandles {
    let mut handles = TemplateHandles {
        id: tpl.id,
        fire_field,
        timer_reg: None,
        loop_reg: None,
        rec_fields: Vec::new(),
    };

    // Fire source: timer (start-time trigger) or trigger FIFO pop.
    if let Some(fifo) = trigger_fifo {
        let ext = StatelessExtern::new(sw, tpl.id, fifo, fire_field);
        handles.rec_fields = ext.rec_fields.clone();
        // Stateless pops run in their own stage before the replicate table.
        sw.ingress.stages[timer_table.0].externs.push(Box::new(ext));
    } else if let Some(dist) = &tpl.interval_dist {
        // Random inter-departure time (§3.1): each fire arms a *deadline*
        // register with `now + draw`.  The draw happens in a stage before
        // the timer, the deadline SALU consumes it exactly once per fire —
        // so the inter-departure distribution is the drawn one, unbiased
        // by the template arrival rate.
        let rand_field = sw.fields.intern(&format!("meta.t{}_ival", tpl.id), 64);
        let deadline_field = sw.fields.intern(&format!("meta.t{}_deadline", tpl.id), 64);
        build_interval_draw(sw, tpl, dist, rand_field, deadline_field, timer_table.0 - 1);

        let reg = sw.regs.alloc(&format!("t{}_deadline", tpl.id), 64, 1);
        handles.timer_reg = Some(reg);
        sw.ingress
            .table_mut(timer_table)
            .insert(
                MatchKey::Exact(vec![u64::from(tpl.id)]),
                ActionSet::new(
                    &format!("t{}_fire_rand", tpl.id),
                    vec![PrimitiveOp::Salu {
                        reg,
                        index: ht_asic::action::IndexSource::Const(0),
                        program: SaluProgram {
                            condition: Some(SaluCond {
                                expr: CondExpr::Reg,
                                cmp: Cmp::Le,
                                rhs: SaluOperand::Field(fields::IG_TS),
                            }),
                            on_true: SaluUpdate::Set(SaluOperand::Field(deadline_field)),
                            on_false: SaluUpdate::Keep,
                            output: Some(SaluOutput {
                                dst: fire_field,
                                src: SaluOutputSrc::CondFlag,
                            }),
                        },
                    }],
                ),
                0,
            )
            .expect("random timer entry");
    } else {
        let ops = match tpl.interval {
            Some(interval) => {
                let reg = sw.regs.alloc(&format!("t{}_timer", tpl.id), 64, 1);
                handles.timer_reg = Some(reg);
                vec![PrimitiveOp::Salu {
                    reg,
                    index: ht_asic::action::IndexSource::Const(0),
                    program: SaluProgram {
                        condition: Some(SaluCond {
                            expr: CondExpr::OperandMinusReg(SaluOperand::Field(fields::IG_TS)),
                            cmp: Cmp::Ge,
                            rhs: SaluOperand::Const(interval),
                        }),
                        on_true: SaluUpdate::Set(SaluOperand::Field(fields::IG_TS)),
                        on_false: SaluUpdate::Keep,
                        output: Some(SaluOutput { dst: fire_field, src: SaluOutputSrc::CondFlag }),
                    },
                }]
            }
            // No interval: fire on every template arrival (line rate).
            None => vec![PrimitiveOp::SetConst { dst: fire_field, value: 1 }],
        };
        sw.ingress
            .table_mut(timer_table)
            .insert(
                MatchKey::Exact(vec![u64::from(tpl.id)]),
                ActionSet::new(&format!("t{}_fire", tpl.id), ops),
                0,
            )
            .expect("timer entry");
    }

    // Loop guard: cap total fires at loop_count × cycle length.
    if tpl.loop_count > 0 {
        let cycle = tpl
            .edits
            .iter()
            .map(|e| match e {
                EditSpec::ValueList { values, .. } => values.len() as u64,
                EditSpec::Progression { start, end, step, .. } => (end - start) / step + 1,
                _ => 1,
            })
            .max()
            .unwrap_or(1);
        let bound = tpl.loop_count * cycle;
        let reg = sw.regs.alloc(&format!("t{}_loopguard", tpl.id), 64, 1);
        handles.loop_reg = Some(reg);
        sw.ingress
            .table_mut(guard_table)
            .insert(
                MatchKey::Exact(vec![u64::from(tpl.id)]),
                ActionSet::new(
                    &format!("t{}_guard", tpl.id),
                    vec![PrimitiveOp::Salu {
                        reg,
                        index: ht_asic::action::IndexSource::Const(0),
                        program: SaluProgram {
                            condition: Some(SaluCond {
                                expr: CondExpr::Reg,
                                cmp: Cmp::Lt,
                                rhs: SaluOperand::Const(bound),
                            }),
                            on_true: SaluUpdate::Add(SaluOperand::Const(1)),
                            on_false: SaluUpdate::Keep,
                            output: Some(SaluOutput {
                                dst: fire_field,
                                src: SaluOutputSrc::CondFlag,
                            }),
                        },
                    }],
                ),
                0,
            )
            .expect("loop guard entry");
    }

    // Replication: on fire, hand the template to the mcast engine.
    sw.ingress
        .table_mut(replicate_table)
        .insert(
            MatchKey::Exact(vec![u64::from(tpl.id)]),
            ActionSet::new(
                &format!("t{}_replicate", tpl.id),
                vec![PrimitiveOp::SetMcastGroup(tpl.id)],
            ),
            0,
        )
        .expect("replicate entry");
    sw.mcast.set_group(
        tpl.id,
        tpl.ports
            .iter()
            .enumerate()
            .map(|(i, &p)| ht_asic::tm::McastMember { port: p, rid: (i + 1) as u16 })
            .collect(),
    );

    // Accelerator: recirculate the template regardless of fire.
    sw.ingress
        .table_mut(recirc_table)
        .insert(
            MatchKey::Exact(vec![u64::from(tpl.id)]),
            ActionSet::new(&format!("t{}_recirc", tpl.id), vec![PrimitiveOp::Recirculate]),
            0,
        )
        .expect("recirc entry");

    handles
}

/// Builds the egress editor for one template: one stage per edit plus the
/// stateless respond stage, each gated on `(template_id == id, rid > 0)`.
pub fn build_template_editor(sw: &mut Switch, tpl: &TemplateSpec, handles: &TemplateHandles) {
    let gate = |t: Table, id: u16| -> Table {
        t.with_gateway(Gateway { field: fields::TEMPLATE_ID, cmp: Cmp::Eq, value: u64::from(id) })
            .with_gateway(Gateway { field: fields::RID, cmp: Cmp::Gt, value: 0 })
    };

    // Per-template packet id, when any value-list edit needs it.
    let needs_pkt_id = tpl.edits.iter().any(|e| matches!(e, EditSpec::ValueList { .. }));
    let pkt_id_field = sw.fields.intern(&format!("meta.t{}_pkt_id", tpl.id), 32);
    if needs_pkt_id {
        let reg = sw.regs.alloc(&format!("t{}_pkt_id", tpl.id), 32, 1);
        let t = gate(
            Table::new(
                &format!("t{}_pktid", tpl.id),
                MatchKind::Exact,
                vec![fields::TEMPLATE_ID],
                2,
                ActionSet::new(
                    &format!("t{}_pktid_inc", tpl.id),
                    vec![PrimitiveOp::Salu {
                        reg,
                        index: ht_asic::action::IndexSource::Const(0),
                        program: SaluProgram::fetch_add(pkt_id_field),
                    }],
                ),
            ),
            tpl.id,
        );
        sw.egress.push_table(t);
    }

    for (i, edit) in tpl.edits.iter().enumerate() {
        build_edit(sw, tpl, i, edit, pkt_id_field, &gate);
    }

    // Stateless respond stage: copy captured fields into the headers.
    if !tpl.response_copies.is_empty() {
        let mut ops = Vec::new();
        for rc in &tpl.response_copies {
            let src_phv = resolve(rc.src, tpl.protocol);
            let rec = record_index(src_phv).expect("record field");
            let rec_field = handles.rec_fields[rec];
            let dst = resolve(rc.dst, tpl.protocol);
            ops.push(PrimitiveOp::CopyField { dst, src: rec_field });
            if rc.offset != 0 {
                ops.push(PrimitiveOp::AddConst { dst, value: rc.offset as u64 });
            }
        }
        let t = gate(
            Table::new(
                &format!("t{}_respond", tpl.id),
                MatchKind::Exact,
                vec![fields::TEMPLATE_ID],
                2,
                ActionSet::new(&format!("t{}_respond_act", tpl.id), ops),
            ),
            tpl.id,
        );
        sw.egress.push_table(t);
    }
}

/// Builds the threshold-draw tables of a random inter-departure interval
/// into the reserved pre-timer stage: draw a value from the distribution
/// into `rand_field`, then compute `deadline_field = now + draw`.
fn build_interval_draw(
    sw: &mut Switch,
    tpl: &TemplateSpec,
    dist: &EditSpec,
    rand_field: FieldId,
    deadline_field: FieldId,
    draw_stage: usize,
) {
    let tpl_gate = Gateway { field: fields::TEMPLATE_ID, cmp: Cmp::Eq, value: u64::from(tpl.id) };
    let arm_ops = vec![
        PrimitiveOp::CopyField { dst: deadline_field, src: fields::IG_TS },
        PrimitiveOp::AddField { dst: deadline_field, src: rand_field },
    ];
    match dist {
        EditSpec::RandomUniform { bits, offset, .. } => {
            let mut ops =
                vec![PrimitiveOp::RngUniform { dst: rand_field, bits: *bits, offset: *offset }];
            ops.extend(arm_ops);
            let t = Table::new(
                &format!("t{}_ival_draw", tpl.id),
                MatchKind::Exact,
                vec![fields::TEMPLATE_ID],
                2,
                ActionSet::new("ival_draw", ops),
            )
            .with_gateway(tpl_gate);
            sw.ingress.stages[draw_stage].tables.push(t);
        }
        EditSpec::RandomTable { values, bits, .. } => {
            // Two tables: uniform draw, then the inverse-CDF range lookup,
            // then arm the deadline.
            let draw = Table::new(
                &format!("t{}_ival_rng", tpl.id),
                MatchKind::Exact,
                vec![fields::TEMPLATE_ID],
                2,
                ActionSet::new(
                    "ival_rng",
                    vec![PrimitiveOp::RngUniform { dst: rand_field, bits: *bits, offset: 0 }],
                ),
            )
            .with_gateway(tpl_gate);
            sw.ingress.stages[draw_stage].tables.push(draw);

            let mut ranges: Vec<(u64, u64, u64)> = Vec::new();
            for (i, &v) in values.iter().enumerate() {
                match ranges.last_mut() {
                    Some((_, hi, val)) if *val == v && *hi + 1 == i as u64 => *hi += 1,
                    _ => ranges.push((i as u64, i as u64, v)),
                }
            }
            let mut lookup = Table::new(
                &format!("t{}_ival_cdf", tpl.id),
                MatchKind::Range,
                vec![rand_field],
                ranges.len().max(1),
                ActionSet::nop(),
            )
            .with_gateway(tpl_gate);
            for (lo, hi, v) in ranges {
                let mut ops = vec![PrimitiveOp::SetConst { dst: rand_field, value: v }];
                ops.extend(arm_ops.clone());
                lookup
                    .insert(MatchKey::Range(vec![(lo, hi)]), ActionSet::new("", ops), 0)
                    .expect("ival cdf entry");
            }
            sw.ingress.stages[draw_stage].tables.push(lookup);
        }
        other => unreachable!("interval_dist is always a random edit, got {other:?}"),
    }
}

fn build_edit(
    sw: &mut Switch,
    tpl: &TemplateSpec,
    idx: usize,
    edit: &EditSpec,
    pkt_id_field: FieldId,
    gate: &dyn Fn(Table, u16) -> Table,
) {
    match edit {
        EditSpec::ValueList { field, values } => {
            let dst = resolve(*field, tpl.protocol);
            let mut t = Table::new(
                &format!("t{}_edit{idx}_list", tpl.id),
                MatchKind::Index,
                vec![pkt_id_field],
                values.len(),
                ActionSet::nop(),
            );
            for (i, &v) in values.iter().enumerate() {
                t.insert(
                    MatchKey::Index(i as u64),
                    ActionSet::new("", vec![PrimitiveOp::SetConst { dst, value: v }]),
                    0,
                )
                .expect("value list entry");
            }
            sw.egress.push_table(gate(t, tpl.id));
        }
        EditSpec::Progression { field, start, end, step } => {
            let dst = resolve(*field, tpl.protocol);
            let reg = sw.regs.alloc(&format!("t{}_edit{idx}_prog", tpl.id), 64, 1);
            sw.regs.array_mut(reg).cp_write(0, *start);
            // Wrap: while reg ≤ end − step advance, else reset to start;
            // the pre-update value goes to the field.
            let threshold = end.saturating_sub(*step);
            let t = gate(
                Table::new(
                    &format!("t{}_edit{idx}_prog", tpl.id),
                    MatchKind::Exact,
                    vec![fields::TEMPLATE_ID],
                    2,
                    ActionSet::new(
                        "progression",
                        vec![PrimitiveOp::Salu {
                            reg,
                            index: ht_asic::action::IndexSource::Const(0),
                            program: SaluProgram {
                                condition: Some(SaluCond {
                                    expr: CondExpr::Reg,
                                    cmp: Cmp::Gt,
                                    rhs: SaluOperand::Const(threshold),
                                }),
                                on_true: SaluUpdate::Set(SaluOperand::Const(*start)),
                                on_false: SaluUpdate::Add(SaluOperand::Const(*step)),
                                output: Some(SaluOutput { dst, src: SaluOutputSrc::OldValue }),
                            },
                        }],
                    ),
                ),
                tpl.id,
            );
            sw.egress.push_table(t);
        }
        EditSpec::RandomUniform { field, bits, offset } => {
            let dst = resolve(*field, tpl.protocol);
            let t = gate(
                Table::new(
                    &format!("t{}_edit{idx}_rng", tpl.id),
                    MatchKind::Exact,
                    vec![fields::TEMPLATE_ID],
                    2,
                    ActionSet::new(
                        "rng_uniform",
                        vec![PrimitiveOp::RngUniform { dst, bits: *bits, offset: *offset }],
                    ),
                ),
                tpl.id,
            );
            sw.egress.push_table(t);
        }
        EditSpec::RandomTable { field, values, bits } => {
            // Two tables (§5.1): draw a uniform value, then map it through
            // the inverse-CDF table.  Consecutive uniform values sharing a
            // quantile are merged into one range entry (lowered to TCAM on
            // real targets), so the table holds one entry per distinct
            // quantile value rather than 2^bits entries.
            let dst = resolve(*field, tpl.protocol);
            let rand_field = sw.fields.intern(&format!("meta.t{}_rand{idx}", tpl.id), 32);
            let draw = gate(
                Table::new(
                    &format!("t{}_edit{idx}_draw", tpl.id),
                    MatchKind::Exact,
                    vec![fields::TEMPLATE_ID],
                    2,
                    ActionSet::new(
                        "rng_draw",
                        vec![PrimitiveOp::RngUniform { dst: rand_field, bits: *bits, offset: 0 }],
                    ),
                ),
                tpl.id,
            );
            sw.egress.push_table(draw);

            // Merge equal-quantile runs into ranges.
            let mut ranges: Vec<(u64, u64, u64)> = Vec::new(); // (lo, hi, value)
            for (i, &v) in values.iter().enumerate() {
                match ranges.last_mut() {
                    Some((_, hi, val)) if *val == v && *hi + 1 == i as u64 => *hi += 1,
                    _ => ranges.push((i as u64, i as u64, v)),
                }
            }
            let mut lookup = Table::new(
                &format!("t{}_edit{idx}_cdf", tpl.id),
                MatchKind::Range,
                vec![rand_field],
                ranges.len().max(1),
                ActionSet::nop(),
            );
            for (lo, hi, v) in ranges {
                lookup
                    .insert(
                        MatchKey::Range(vec![(lo, hi)]),
                        ActionSet::new("", vec![PrimitiveOp::SetConst { dst, value: v }]),
                        0,
                    )
                    .expect("cdf range entry");
            }
            sw.egress.push_table(gate(lookup, tpl.id));
        }
    }
}
