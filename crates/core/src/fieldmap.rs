//! Mapping NTAPI header fields onto PHV fields.

use ht_asic::phv::{fields, FieldId};
use ht_ntapi::ast::HeaderField;
use ht_ntapi::compile::L4Proto;

/// Resolves an NTAPI header field to the PHV field it touches, given the
/// template's L4 protocol (NTAPI's `sport`/`dport` are protocol-generic).
pub fn resolve(h: HeaderField, proto: L4Proto) -> FieldId {
    match h {
        HeaderField::EthSrc => fields::ETH_SRC,
        HeaderField::EthDst => fields::ETH_DST,
        HeaderField::Sip => fields::IPV4_SRC,
        HeaderField::Dip => fields::IPV4_DST,
        HeaderField::Proto => fields::IPV4_PROTO,
        HeaderField::Ttl => fields::IPV4_TTL,
        HeaderField::Ident => fields::IPV4_IDENT,
        HeaderField::Sport => match proto {
            L4Proto::Udp => fields::UDP_SPORT,
            _ => fields::TCP_SPORT,
        },
        HeaderField::Dport => match proto {
            L4Proto::Udp => fields::UDP_DPORT,
            _ => fields::TCP_DPORT,
        },
        HeaderField::TcpFlags => fields::TCP_FLAGS,
        HeaderField::SeqNo => fields::TCP_SEQ,
        HeaderField::AckNo => fields::TCP_ACK,
        HeaderField::Window => fields::TCP_WINDOW,
    }
}

/// The protocol hint for a set of compiled templates: TCP when any template
/// is TCP (queries on received traffic then interpret `sport`/`dport` as
/// TCP ports), otherwise UDP.
pub fn proto_hint(templates: &[ht_ntapi::compile::TemplateSpec]) -> L4Proto {
    if templates.iter().any(|t| t.protocol == L4Proto::Tcp) {
        L4Proto::Tcp
    } else {
        L4Proto::Udp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_resolve_by_protocol() {
        assert_eq!(resolve(HeaderField::Sport, L4Proto::Udp), fields::UDP_SPORT);
        assert_eq!(resolve(HeaderField::Sport, L4Proto::Tcp), fields::TCP_SPORT);
        assert_eq!(resolve(HeaderField::Dport, L4Proto::Udp), fields::UDP_DPORT);
        assert_eq!(resolve(HeaderField::Dport, L4Proto::Tcp), fields::TCP_DPORT);
    }

    #[test]
    fn tcp_fields_are_protocol_independent() {
        assert_eq!(resolve(HeaderField::SeqNo, L4Proto::Udp), fields::TCP_SEQ);
        assert_eq!(resolve(HeaderField::Dip, L4Proto::Tcp), fields::IPV4_DST);
    }
}
