//! HyperTester core: the paper's primary contribution, assembled.
//!
//! This crate turns a compiled NTAPI task ([`ht_ntapi::CompiledTask`]) into
//! a programmed switch:
//!
//! * [`htps`] — the Packet Sender (§5.1): accelerator, replicator with
//!   register-timer rate control, and the four-mode editor.
//! * [`htpr`] — the Packet Receiver (§5.2): filters, the
//!   false-positive-free counter-based query engine (exact key matching +
//!   partial-key cuckoo hashing + KV FIFO), and capture stages.
//! * [`fifo`] — the register FIFO of §6.1 (Fig. 7), shared by the KV FIFO
//!   and the trigger FIFO.
//! * [`tester`] — building it all onto an `ht-asic` switch, with typed
//!   runtime handles.
//! * [`results`] — switch-CPU result merging (arrays + FIFO + evictions +
//!   exact counters).
//! * [`fieldmap`] — NTAPI field → PHV field resolution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fieldmap;
pub mod fifo;
pub mod htpr;
pub mod htps;
pub mod results;
pub mod tester;

pub use results::{distinct_count, global_value, keyed_results, query_result, QueryResult};
pub use tester::{
    build, BuildError, BuiltTester, ConfigError, Gbps, QueryHandle, TaskHandles, TesterConfig,
    TesterConfigBuilder,
};

/// Common HyperTester items: `use ht_core::prelude::*;`.
pub mod prelude {
    pub use crate::results::{
        distinct_count, global_value, keyed_results, query_result, QueryResult,
    };
    pub use crate::tester::{
        build, BuildError, BuiltTester, ConfigError, Gbps, TesterConfig, TesterConfigBuilder,
    };
    pub use ht_asic::switch::CPU_PORT;
    pub use ht_asic::{QueueKind, SimTime, Switch, World};
    pub use ht_cpu::SwitchCpu;
}
