//! The register-based FIFO of §6.1 (Fig. 7).
//!
//! "Each FIFO is composed of two parts.  The first part is the 32-bit
//! counters for queue front and queue rear. … `update` of the rear counter
//! depends on the value of the front counter to prevent queue underflows."
//!
//! HyperTester uses this FIFO twice: as the KV FIFO buffering cuckoo
//! insertions (§5.2, Fig. 5) and as the *trigger FIFO* carrying captured
//! packet records from HTPR to HTPS for stateless connections (§5.3,
//! Fig. 6).  Both live entirely in register arrays and are driven by the
//! SALU read-modify-write discipline: every operation touches each counter
//! register exactly once.
//!
//! The paper admits its FIFO "cannot guarantee freedom of queue overflows";
//! the reproduction counts overflows (and §7 of DESIGN.md documents the
//! optional guard as the implemented future-work item: enqueue drops and
//! reports instead of overwriting).

use ht_asic::phv::{FieldId, FieldTable, Phv};
use ht_asic::register::{
    Cmp, CondExpr, RegId, RegisterFile, SaluCond, SaluOperand, SaluOutput, SaluOutputSrc,
    SaluProgram, SaluUpdate,
};

/// A FIFO with `width`-word records laid across parallel register arrays.
#[derive(Debug, Clone)]
pub struct RegFifo {
    front: RegId,
    rear: RegId,
    data: Vec<RegId>,
    capacity: usize,
    // Scratch PHV fields used by the SALU programs.
    f_front: FieldId,
    f_rear: FieldId,
    f_flag: FieldId,
    /// Enqueue attempts dropped because the queue was full.
    pub overflows: u64,
}

impl RegFifo {
    /// Allocates the FIFO's registers and scratch fields.
    ///
    /// `record_words` is the number of 64-bit words per record; `capacity`
    /// the number of records.
    pub fn new(
        name: &str,
        regs: &mut RegisterFile,
        fields: &mut FieldTable,
        record_words: usize,
        capacity: usize,
    ) -> Self {
        assert!(capacity.is_power_of_two(), "FIFO capacity must be a power of two");
        assert!(record_words > 0);
        let front = regs.alloc(&format!("{name}_front"), 32, 1);
        let rear = regs.alloc(&format!("{name}_rear"), 32, 1);
        let data = (0..record_words)
            .map(|i| regs.alloc(&format!("{name}_data{i}"), 64, capacity))
            .collect();
        RegFifo {
            front,
            rear,
            data,
            capacity,
            f_front: fields.intern(&format!("meta.{name}_front"), 32),
            f_rear: fields.intern(&format!("meta.{name}_rear"), 32),
            f_flag: fields.intern(&format!("meta.{name}_flag"), 1),
            overflows: 0,
        }
    }

    /// Number of records currently queued (control-plane view).
    pub fn len(&self, regs: &RegisterFile) -> u64 {
        let front = regs.array(self.front).cp_read(0);
        let rear = regs.array(self.rear).cp_read(0);
        rear.wrapping_sub(front) & 0xffff_ffff
    }

    /// True when no records are queued.
    pub fn is_empty(&self, regs: &RegisterFile) -> bool {
        self.len(regs) == 0
    }

    /// Record width in words.
    pub fn record_words(&self) -> usize {
        self.data.len()
    }

    /// Capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Every register array the FIFO occupies (counters + data lanes), for
    /// static analysis of register ownership.
    pub fn registers(&self) -> Vec<RegId> {
        let mut r = vec![self.front, self.rear];
        r.extend(self.data.iter().copied());
        r
    }

    /// Control-plane view of all queued records, front to rear, without
    /// mutating any state (the switch CPU reads registers over PCIe).
    pub fn peek_all(&self, regs: &RegisterFile) -> Vec<Vec<u64>> {
        let front = regs.array(self.front).cp_read(0);
        let rear = regs.array(self.rear).cp_read(0);
        (front..rear)
            .map(|i| {
                let slot = (i as usize) % self.capacity;
                self.data.iter().map(|&r| regs.array(r).cp_read(slot)).collect()
            })
            .collect()
    }

    /// Data-plane enqueue: one access to each counter and data register.
    ///
    /// Returns `false` (and counts an overflow) when the queue is full —
    /// the optional overflow guard; the paper's unguarded variant would
    /// overwrite instead.
    pub fn enqueue(
        &mut self,
        regs: &mut RegisterFile,
        ft: &FieldTable,
        phv: &mut Phv,
        record: &[u64],
    ) -> bool {
        assert_eq!(record.len(), self.data.len(), "record width mismatch");
        // Stage A: read front into the PHV.
        regs.execute(self.front, 0, &SaluProgram::read(self.f_front), phv, ft);
        // Stage B: increment rear only while rear − front < capacity,
        // exporting the pre-increment value (the slot) and the condition.
        let prog = SaluProgram {
            condition: Some(SaluCond {
                expr: CondExpr::RegMinusOperand(SaluOperand::Field(self.f_front)),
                cmp: Cmp::Lt,
                rhs: SaluOperand::Const(self.capacity as u64),
            }),
            on_true: SaluUpdate::Add(SaluOperand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst: self.f_rear, src: SaluOutputSrc::OldValue }),
        };
        let slot_or_keep = regs.execute(self.rear, 0, &prog, phv, ft);
        // Re-derive the condition: when rear did not move, the queue was
        // full.  (The SALU exports one value; hardware pairs lo/hi outputs —
        // we reconstruct from the front value we already hold.)
        let front = phv.get(self.f_front);
        if slot_or_keep.wrapping_sub(front) & 0xffff_ffff >= self.capacity as u64 {
            self.overflows += 1;
            phv.set(ft, self.f_flag, 0);
            return false;
        }
        let slot = (slot_or_keep as usize) % self.capacity;
        // Stage C: write the record words.
        for (&reg, &w) in self.data.iter().zip(record) {
            regs.execute(reg, slot as u64, &SaluProgram::write(SaluOperand::Const(w)), phv, ft);
        }
        phv.set(ft, self.f_flag, 1);
        true
    }

    /// Data-plane dequeue: returns the record, or `None` when empty.
    ///
    /// "`update` of the \[front\] counter depends on the value of the \[rear\]
    /// counter to prevent queue underflows."
    pub fn dequeue(
        &mut self,
        regs: &mut RegisterFile,
        ft: &FieldTable,
        phv: &mut Phv,
    ) -> Option<Vec<u64>> {
        // Stage A: read rear.
        regs.execute(self.rear, 0, &SaluProgram::read(self.f_rear), phv, ft);
        // Stage B: increment front only while front < rear; export the old
        // front (the slot) and the condition flag.
        let prog = SaluProgram {
            condition: Some(SaluCond {
                expr: CondExpr::Reg,
                cmp: Cmp::Lt,
                rhs: SaluOperand::Field(self.f_rear),
            }),
            on_true: SaluUpdate::Add(SaluOperand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst: self.f_front, src: SaluOutputSrc::OldValue }),
        };
        let old_front = regs.execute(self.front, 0, &prog, phv, ft);
        let rear = phv.get(self.f_rear);
        if old_front >= rear {
            phv.set(ft, self.f_flag, 0);
            return None;
        }
        phv.set(ft, self.f_flag, 1);
        let slot = (old_front as usize) % self.capacity;
        // Stage C: read the record words.
        let rec = self
            .data
            .iter()
            .map(|&reg| regs.execute(reg, slot as u64, &SaluProgram::read(self.f_rear), phv, ft))
            .collect();
        // Restore f_rear (the data reads reused it as scratch output).
        phv.set(ft, self.f_rear, rear);
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(words: usize, cap: usize) -> (FieldTable, RegisterFile, RegFifo, Phv) {
        let mut ft = FieldTable::new();
        let mut regs = RegisterFile::new();
        let fifo = RegFifo::new("t", &mut regs, &mut ft, words, cap);
        let phv = ft.new_phv();
        (ft, regs, fifo, phv)
    }

    #[test]
    fn fifo_preserves_order() {
        let (ft, mut regs, mut fifo, mut phv) = setup(2, 8);
        for i in 0..5u64 {
            assert!(fifo.enqueue(&mut regs, &ft, &mut phv, &[i, i * 10]));
        }
        for i in 0..5u64 {
            assert_eq!(fifo.dequeue(&mut regs, &ft, &mut phv), Some(vec![i, i * 10]));
        }
        assert_eq!(fifo.dequeue(&mut regs, &ft, &mut phv), None);
        assert_eq!(fifo.overflows, 0);
    }

    #[test]
    fn dequeue_on_empty_never_underflows() {
        let (ft, mut regs, mut fifo, mut phv) = setup(1, 4);
        for _ in 0..10 {
            assert_eq!(fifo.dequeue(&mut regs, &ft, &mut phv), None);
        }
        // Front must not have moved past rear.
        assert!(fifo.is_empty(&regs));
        assert!(fifo.enqueue(&mut regs, &ft, &mut phv, &[42]));
        assert_eq!(fifo.dequeue(&mut regs, &ft, &mut phv), Some(vec![42]));
    }

    #[test]
    fn overflow_is_detected_and_counted() {
        let (ft, mut regs, mut fifo, mut phv) = setup(1, 4);
        for i in 0..4u64 {
            assert!(fifo.enqueue(&mut regs, &ft, &mut phv, &[i]));
        }
        assert!(!fifo.enqueue(&mut regs, &ft, &mut phv, &[99]));
        assert_eq!(fifo.overflows, 1);
        // The queued records survive intact.
        for i in 0..4u64 {
            assert_eq!(fifo.dequeue(&mut regs, &ft, &mut phv), Some(vec![i]));
        }
    }

    #[test]
    fn wrap_around_across_capacity_boundary() {
        let (ft, mut regs, mut fifo, mut phv) = setup(1, 4);
        for round in 0..10u64 {
            assert!(fifo.enqueue(&mut regs, &ft, &mut phv, &[round]));
            assert_eq!(fifo.dequeue(&mut regs, &ft, &mut phv), Some(vec![round]));
        }
        assert!(fifo.is_empty(&regs));
    }

    #[test]
    fn len_tracks_occupancy() {
        let (ft, mut regs, mut fifo, mut phv) = setup(1, 8);
        assert_eq!(fifo.len(&regs), 0);
        fifo.enqueue(&mut regs, &ft, &mut phv, &[1]);
        fifo.enqueue(&mut regs, &ft, &mut phv, &[2]);
        assert_eq!(fifo.len(&regs), 2);
        fifo.dequeue(&mut regs, &ft, &mut phv);
        assert_eq!(fifo.len(&regs), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_rejected() {
        let mut ft = FieldTable::new();
        let mut regs = RegisterFile::new();
        RegFifo::new("bad", &mut regs, &mut ft, 1, 3);
    }
}
