//! Building a HyperTester switch from a compiled task.
//!
//! [`build`] takes the NTAPI compiler's output and programs a simulated
//! switch: HTPS components into ingress+egress (accelerator, replicator,
//! editor), HTPR components per query (filters, exact key matching, cuckoo
//! engines, captures), the trigger FIFOs of stateless connections, and the
//! template packets the switch CPU will inject.  The returned handles give
//! tests and benches typed access to every register and engine after a run.

use crate::fieldmap::{proto_hint, resolve};
use crate::fifo::RegFifo;
use crate::htpr::{
    CaptureExtern, CaptureStats, CuckooEngine, CuckooExtern, CuckooStats, FilterExtern,
};
use crate::htps::{build_template_editor, build_template_ingress, TemplateHandles};
use ht_asic::action::{ActionSet, IndexSource, PrimitiveOp};
use ht_asic::digest::DigestId;
use ht_asic::phv::{fields, FieldId};
use ht_asic::register::{
    Cmp, RegId, SaluCond, SaluOperand, SaluOutput, SaluOutputSrc, SaluProgram, SaluUpdate,
};
use ht_asic::switch::Switch;
use ht_asic::table::{Gateway, MatchKey, MatchKind, Table};
use ht_asic::SimPacket;
use ht_ntapi::ast::{CmpOp, HeaderField, NtField, QuerySource, ReduceFunc};
use ht_ntapi::compile::{CompiledQuery, CompiledTask, L4Proto, QueryKind, TemplateSpec};
use ht_packet::tcp::TcpFlags;
use ht_packet::{EthernetAddress, Ipv4Address, PacketBuilder};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Build-time errors (everything NTAPI-level is already rejected by the
/// compiler; these are switch-capacity constraints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An inverse-transform table exponent larger than the editor supports.
    RandomTableTooLarge {
        /// The requested exponent.
        bits: u32,
    },
    /// A response copy references a field the trigger record does not carry.
    UnsupportedResponseField(
        /// The field's NTAPI name.
        &'static str,
    ),
    /// The built program failed static verification; the switch refuses to
    /// load it.  Carries the error diagnostics.
    Lint(
        /// The lint errors that blocked the load.
        Vec<ht_lint::Diagnostic>,
    ),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::RandomTableTooLarge { bits } => {
                write!(f, "inverse-transform table 2^{bits} exceeds editor capacity (2^16)")
            }
            BuildError::UnsupportedResponseField(n) => {
                write!(f, "response copies cannot source field {n}")
            }
            BuildError::Lint(diags) => {
                write!(f, "program rejected by static verification:")?;
                for d in diags {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Switch configuration for a tester build.
#[derive(Debug, Clone)]
pub struct TesterConfig {
    /// Device name.
    pub name: String,
    /// RNG seed (jitter + RNG primitive).
    pub seed: u64,
    /// External ports: `(port id, speed bps)`.
    pub ports: Vec<(u16, u64)>,
    /// Ports configured in loopback mode (accelerator capacity extension).
    pub loopback_ports: Vec<u16>,
    /// KV FIFO capacity per keyed query (power of two).
    pub kv_fifo_capacity: usize,
    /// Trigger FIFO capacity per stateless consumer (power of two).
    pub trigger_fifo_capacity: usize,
}

impl TesterConfig {
    /// Starts a fluent builder:
    /// `TesterConfig::builder().ports(4).speed(Gbps(100)).build()?`.
    pub fn builder() -> TesterConfigBuilder {
        TesterConfigBuilder::default()
    }
}

/// A port speed in gigabits per second, for [`TesterConfigBuilder::speed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Gbps(pub u64);

impl Gbps {
    /// The speed in bits per second.
    pub fn bps(self) -> u64 {
        self.0 * 1_000_000_000
    }
}

/// Validation errors from [`TesterConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No ports were configured.
    NoPorts,
    /// A port speed of zero bits per second.
    ZeroSpeed,
    /// A FIFO capacity that is not a power of two (the ring indices are
    /// computed with bitmasks).
    FifoNotPowerOfTwo {
        /// Which FIFO: `"kv"` or `"trigger"`.
        which: &'static str,
        /// The offending capacity.
        got: usize,
    },
    /// A loopback port id that is not among the configured ports.
    LoopbackUnknownPort(
        /// The offending port id.
        u16,
    ),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoPorts => write!(f, "a tester needs at least one port"),
            ConfigError::ZeroSpeed => write!(f, "port speed must be non-zero"),
            ConfigError::FifoNotPowerOfTwo { which, got } => {
                write!(f, "{which} FIFO capacity must be a power of two, got {got}")
            }
            ConfigError::LoopbackUnknownPort(p) => {
                write!(f, "loopback port {p} is not a configured port")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`TesterConfig`], with validation at
/// [`build`](Self::build) time instead of silent clamping.
#[derive(Debug, Clone)]
pub struct TesterConfigBuilder {
    name: String,
    seed: u64,
    ports: u16,
    speed_bps: u64,
    loopback_ports: Vec<u16>,
    kv_fifo_capacity: usize,
    trigger_fifo_capacity: usize,
}

impl Default for TesterConfigBuilder {
    /// The defaults of the original constructor: one 100 Gb/s port,
    /// seed 7, 4096-entry FIFOs.
    fn default() -> Self {
        TesterConfigBuilder {
            name: "hypertester".into(),
            seed: 7,
            ports: 1,
            speed_bps: Gbps(100).bps(),
            loopback_ports: Vec::new(),
            kv_fifo_capacity: 4096,
            trigger_fifo_capacity: 4096,
        }
    }
}

impl TesterConfigBuilder {
    /// Device name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// RNG seed (jitter + RNG primitive).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of external ports (ids `0..n`).
    pub fn ports(mut self, n: u16) -> Self {
        self.ports = n;
        self
    }

    /// Uniform port speed.
    pub fn speed(self, speed: Gbps) -> Self {
        self.speed_bps(speed.bps())
    }

    /// Uniform port speed in bits per second (for odd rates).
    pub fn speed_bps(mut self, bps: u64) -> Self {
        self.speed_bps = bps;
        self
    }

    /// Ports configured in loopback mode (accelerator capacity extension).
    /// Each id must refer to a configured port.
    pub fn loopback_ports(mut self, ports: impl IntoIterator<Item = u16>) -> Self {
        self.loopback_ports = ports.into_iter().collect();
        self
    }

    /// KV FIFO capacity per keyed query (must be a power of two).
    pub fn kv_fifo_capacity(mut self, cap: usize) -> Self {
        self.kv_fifo_capacity = cap;
        self
    }

    /// Trigger FIFO capacity per stateless consumer (must be a power of
    /// two).
    pub fn trigger_fifo_capacity(mut self, cap: usize) -> Self {
        self.trigger_fifo_capacity = cap;
        self
    }

    /// Validates and produces the [`TesterConfig`].
    pub fn build(self) -> Result<TesterConfig, ConfigError> {
        if self.ports == 0 {
            return Err(ConfigError::NoPorts);
        }
        if self.speed_bps == 0 {
            return Err(ConfigError::ZeroSpeed);
        }
        if !self.kv_fifo_capacity.is_power_of_two() {
            return Err(ConfigError::FifoNotPowerOfTwo { which: "kv", got: self.kv_fifo_capacity });
        }
        if !self.trigger_fifo_capacity.is_power_of_two() {
            return Err(ConfigError::FifoNotPowerOfTwo {
                which: "trigger",
                got: self.trigger_fifo_capacity,
            });
        }
        if let Some(&p) = self.loopback_ports.iter().find(|&&p| p >= self.ports) {
            return Err(ConfigError::LoopbackUnknownPort(p));
        }
        Ok(TesterConfig {
            name: self.name,
            seed: self.seed,
            ports: (0..self.ports).map(|p| (p, self.speed_bps)).collect(),
            loopback_ports: self.loopback_ports,
            kv_fifo_capacity: self.kv_fifo_capacity,
            trigger_fifo_capacity: self.trigger_fifo_capacity,
        })
    }
}

/// Handle to one compiled query's runtime state.
#[derive(Debug, Clone)]
pub struct QueryHandle {
    /// Query name.
    pub name: String,
    /// Compiled query (kind, filters, fp config).
    pub query: CompiledQuery,
    /// Match-flag field.
    pub match_field: FieldId,
    /// Running-count output field.
    pub count_field: FieldId,
    /// Register of a global reduce.
    pub global_reg: Option<RegId>,
    /// The cuckoo engine of a keyed query.
    pub engine: Option<Arc<Mutex<CuckooEngine>>>,
    /// Exact-key-matching counters: the register plus the installed keys in
    /// index order.
    pub exact: Option<(RegId, Vec<Vec<u64>>)>,
    /// Digest stream carrying this query's evictions.
    pub evict_digest: Option<DigestId>,
    /// Capture statistics (stateless-connection feeders).
    pub capture_stats: Option<Arc<Mutex<CaptureStats>>>,
}

/// Handles to everything built for a task.
#[derive(Debug)]
pub struct TaskHandles {
    /// The fire-flag field shared by all triggers.
    pub fire_field: FieldId,
    /// Per-template handles, in template order.
    pub templates: Vec<TemplateHandles>,
    /// Per-query handles.
    pub queries: HashMap<String, QueryHandle>,
    /// The L4 protocol hint used to resolve generic port fields.
    pub proto: L4Proto,
}

/// A fully built tester: the programmed switch, its template packets and
/// the runtime handles.
#[derive(Debug)]
pub struct BuiltTester {
    /// The programmed switch (install into a `World` as a device).
    pub switch: Switch,
    /// Template packets to inject over PCIe.
    pub templates: Vec<SimPacket>,
    /// Runtime handles.
    pub handles: TaskHandles,
    /// The compiled task.
    pub task: CompiledTask,
    /// The full static-verification report from the build's single run of
    /// the lint pass pipeline (warnings included; errors abort the build).
    pub lint: ht_lint::LintReport,
}

/// Builds a tester switch from a compiled task.
pub fn build(task: &CompiledTask, cfg: &TesterConfig) -> Result<BuiltTester, BuildError> {
    let mut sw = Switch::new(&cfg.name, cfg.seed);
    for &(p, speed) in &cfg.ports {
        sw.add_port(p, speed);
    }
    for &p in &cfg.loopback_ports {
        sw.set_loopback(p, true);
    }

    for tpl in &task.templates {
        for e in &tpl.edits {
            if let ht_ntapi::compile::EditSpec::RandomTable { bits, .. } = e {
                if *bits > 16 {
                    return Err(BuildError::RandomTableTooLarge { bits: *bits });
                }
            }
        }
    }

    let proto = proto_hint(&task.templates);
    let fire_field = sw.fields.intern("meta.fire", 1);

    // Trigger FIFOs: one per (capturing query, consuming template).
    let mut trigger_fifos: HashMap<(String, String), Arc<Mutex<RegFifo>>> = HashMap::new();
    for q in &task.queries {
        for consumer in &q.capture_for {
            let fifo = RegFifo::new(
                &format!("trig_{}_{}", q.name.to_lowercase(), consumer.to_lowercase()),
                &mut sw.regs,
                &mut sw.fields,
                crate::htpr::RECORD_FIELDS.len(),
                cfg.trigger_fifo_capacity,
            );
            trigger_fifos.insert((q.name.clone(), consumer.clone()), Arc::new(Mutex::new(fifo)));
        }
    }

    // ---- HTPS: shared tables then per-template entries --------------------
    // The editor is built before the queries so that sent-traffic queries
    // (deployed in egress) observe post-edit header values.
    //
    // A reserved stage ahead of the timer carries the threshold-draw tables
    // of random-interval triggers (they must execute before the deadline
    // SALU reads their output).
    sw.ingress.stages.push(ht_asic::pipeline::Stage::new());
    let timer_tbl = sw.ingress.push_table(Table::new(
        "replicator_timer",
        MatchKind::Exact,
        vec![fields::TEMPLATE_ID],
        task.templates.len().max(1),
        ActionSet::nop(),
    ));
    // Loop guards sit between the timer and the mcast assignment so they
    // can veto a fire.
    let guard_tbl = sw.ingress.push_table(
        Table::new(
            "replicator_loop_guard",
            MatchKind::Exact,
            vec![fields::TEMPLATE_ID],
            task.templates.len().max(1),
            ActionSet::nop(),
        )
        .with_gateway(Gateway { field: fire_field, cmp: Cmp::Eq, value: 1 }),
    );
    let replicate_tbl = sw.ingress.push_table(
        Table::new(
            "replicator_mcast",
            MatchKind::Exact,
            vec![fields::TEMPLATE_ID],
            task.templates.len().max(1),
            ActionSet::nop(),
        )
        .with_gateway(Gateway { field: fire_field, cmp: Cmp::Eq, value: 1 }),
    );
    let recirc_tbl = sw.ingress.push_table(Table::new(
        "accelerator",
        MatchKind::Exact,
        vec![fields::TEMPLATE_ID],
        task.templates.len().max(1),
        ActionSet::nop(),
    ));

    let mut template_handles = Vec::new();
    for tpl in &task.templates {
        let fifo = tpl
            .source_query
            .as_ref()
            .map(|q| trigger_fifos[&(q.clone(), tpl.trigger_name.clone())].clone());
        let h = build_template_ingress(
            &mut sw,
            tpl,
            fire_field,
            timer_tbl,
            guard_tbl,
            replicate_tbl,
            recirc_tbl,
            fifo,
        );
        build_template_editor(&mut sw, tpl, &h);
        template_handles.push(h);
    }

    // ---- HTPR: queries ----------------------------------------------------
    let mut queries = HashMap::new();
    for (qi, q) in task.queries.iter().enumerate() {
        let handle = build_query(&mut sw, task, q, qi, proto, cfg, &trigger_fifos);
        queries.insert(q.name.clone(), handle);
    }

    // Template packets.
    let templates = task.templates.iter().map(|tpl| build_template_packet(&mut sw, tpl)).collect();

    // Static verification: a real target refuses to load a program that
    // violates its constraints, and so does the simulator.  Warnings are
    // surfaced by `htctl lint`; only errors block the build.
    let lint = ht_lint::lint_switch(&sw);
    if lint.has_errors() {
        return Err(BuildError::Lint(lint.errors().cloned().collect()));
    }

    // All tables are populated and verified: adopt the process-wide
    // executor default (compiling the pipelines and, for `Vector`,
    // running the vector-safety analysis).  Callers flipping modes later
    // use `Switch::set_exec_mode`.
    let mode = ht_asic::exec::default_mode();
    if mode != ht_asic::ExecMode::Interp {
        sw.set_exec_mode(mode);
    }

    Ok(BuiltTester {
        switch: sw,
        templates,
        handles: TaskHandles { fire_field, templates: template_handles, queries, proto },
        task: task.clone(),
        lint,
    })
}

impl BuiltTester {
    /// Clones of one trigger's template packet, each with a fresh uid.
    ///
    /// The accelerator sustains higher aggregate rates by recirculating
    /// multiple copies of the same template (§5.1): with no interval
    /// configured, N copies fire N times per loop; with an interval, the
    /// copies refine the rate-control quantum to `RTT / N` — the paper's
    /// 6.4 ns precision at 89 64-byte copies.
    pub fn template_copies(&mut self, template_idx: usize, copies: usize) -> Vec<SimPacket> {
        let base = self.templates[template_idx].clone();
        (0..copies)
            .map(|_| {
                let mut p = base.clone();
                p.uid = self.switch.alloc_uid();
                p
            })
            .collect()
    }

    /// The number of template copies a rate-controlled trigger needs: the
    /// timer only fires when a template arrives, so the arrival spacing
    /// (`RTT / copies`) must undercut the configured interval with margin
    /// (2× here, bounding the quantization error at half the interval's
    /// percent-level).  Triggers without an interval get the line-rate
    /// count.  Multi-template tasks should use this rather than flooding
    /// the shared recirculation loop with per-trigger line-rate counts.
    pub fn copies_for_interval(&self, template_idx: usize, port_speed_bps: u64) -> usize {
        let tpl = &self.task.templates[template_idx];
        match tpl.interval {
            Some(interval) => {
                let rtt = ht_asic::timing::recirc_rtt(tpl.frame_len);
                ((2 * rtt).div_ceil(interval) as usize)
                    .clamp(1, ht_asic::timing::accelerator_capacity(tpl.frame_len) + 2)
            }
            None => self.copies_for_line_rate(template_idx, port_speed_bps),
        }
    }

    /// The number of template copies that saturate one port at line rate
    /// for this template's frame length.
    ///
    /// Capped slightly *above* the accelerator capacity: the recirculation
    /// path's sustained rate exceeds the external line rate (16 vs 20 bytes
    /// of per-frame overhead), so fully saturating the loop with one or two
    /// extra templates guarantees line-rate output for every frame size.
    pub fn copies_for_line_rate(&self, template_idx: usize, port_speed_bps: u64) -> usize {
        let len = self.task.templates[template_idx].frame_len;
        let fires_per_sec =
            ht_asic::time::PS_PER_SEC as f64 / ht_asic::timing::recirc_rtt(len) as f64;
        let needed = (ht_packet::wire::line_rate_pps(len, port_speed_bps) / fires_per_sec).ceil()
            as usize
            + 1;
        needed.min(ht_asic::timing::accelerator_capacity(len) + 2)
    }
}

fn cmp_of(c: CmpOp) -> Cmp {
    match c {
        CmpOp::Eq => Cmp::Eq,
        CmpOp::Ne => Cmp::Ne,
        CmpOp::Lt => Cmp::Lt,
        CmpOp::Le => Cmp::Le,
        CmpOp::Gt => Cmp::Gt,
        CmpOp::Ge => Cmp::Ge,
    }
}

fn reduce_value_field(map: &[NtField], proto: L4Proto) -> Option<FieldId> {
    map.iter().find_map(|f| match f {
        NtField::PktLen => Some(fields::PKT_LEN),
        NtField::Header(h) => Some(resolve(*h, proto)),
        _ => None,
    })
}

fn build_query(
    sw: &mut Switch,
    task: &CompiledTask,
    q: &CompiledQuery,
    qi: usize,
    proto: L4Proto,
    cfg: &TesterConfig,
    trigger_fifos: &HashMap<(String, String), Arc<Mutex<RegFifo>>>,
) -> QueryHandle {
    let match_field = sw.fields.intern(&format!("meta.q{qi}_match"), 1);
    let count_field = sw.fields.intern(&format!("meta.q{qi}_count"), 64);
    let exact_miss = sw.fields.intern(&format!("meta.q{qi}_exmiss"), 1);

    // Source gating + user filters.
    let mut preds: Vec<(FieldId, Cmp, u64)> = Vec::new();
    let egress_side = match &q.source {
        QuerySource::Received(port) => {
            preds.push((fields::TEMPLATE_ID, Cmp::Eq, 0));
            if let Some(p) = port {
                preds.push((fields::IG_PORT, Cmp::Eq, u64::from(*p)));
            }
            false
        }
        QuerySource::Trigger(t) => {
            let tid = task
                .templates
                .iter()
                .find(|tpl| &tpl.trigger_name == t)
                .map(|tpl| tpl.id)
                .expect("compiler validated trigger refs");
            preds.push((fields::TEMPLATE_ID, Cmp::Eq, u64::from(tid)));
            preds.push((fields::RID, Cmp::Gt, 0));
            true
        }
    };
    for p in &q.filters {
        preds.push((resolve(p.field, proto), cmp_of(p.cmp), p.value));
    }
    let filter = FilterExtern::new(&format!("q{qi}_filter"), preds, match_field);
    let pipeline = if egress_side { &mut sw.egress } else { &mut sw.ingress };
    pipeline.push_extern(Box::new(filter));

    let mut handle = QueryHandle {
        name: q.name.clone(),
        query: q.clone(),
        match_field,
        count_field,
        global_reg: None,
        engine: None,
        exact: None,
        evict_digest: None,
        capture_stats: None,
    };

    match &q.kind {
        QueryKind::PassThrough => {}
        QueryKind::ReduceGlobal { func } => {
            let reg = sw.regs.alloc(&format!("q{qi}_acc"), 64, 1);
            handle.global_reg = Some(reg);
            let value_field = reduce_value_field(&q.map, proto);
            let update = match (func, value_field) {
                (ReduceFunc::Count, _) | (ReduceFunc::Sum, None) => {
                    SaluUpdate::Add(SaluOperand::Const(1))
                }
                (ReduceFunc::Sum, Some(f)) => SaluUpdate::Add(SaluOperand::Field(f)),
                (ReduceFunc::Max, Some(f)) => SaluUpdate::Set(SaluOperand::Field(f)),
                (ReduceFunc::Max, None) => SaluUpdate::Add(SaluOperand::Const(1)),
            };
            let program = if let (ReduceFunc::Max, Some(vf)) = (func, value_field) {
                SaluProgram {
                    condition: Some(SaluCond {
                        expr: ht_asic::register::CondExpr::Reg,
                        cmp: Cmp::Lt,
                        rhs: SaluOperand::Field(vf),
                    }),
                    on_true: update,
                    on_false: SaluUpdate::Keep,
                    output: Some(SaluOutput { dst: count_field, src: SaluOutputSrc::NewValue }),
                }
            } else {
                SaluProgram {
                    condition: None,
                    on_true: update,
                    on_false: update,
                    output: Some(SaluOutput { dst: count_field, src: SaluOutputSrc::NewValue }),
                }
            };
            let t = Table::new(
                &format!("q{qi}_reduce"),
                MatchKind::Exact,
                vec![match_field],
                2,
                ActionSet::new(
                    &format!("q{qi}_add"),
                    vec![PrimitiveOp::Salu { reg, index: IndexSource::Const(0), program }],
                ),
            )
            .with_gateway(Gateway { field: match_field, cmp: Cmp::Eq, value: 1 });
            let pipeline = if egress_side { &mut sw.egress } else { &mut sw.ingress };
            pipeline.push_table(t);
        }
        QueryKind::ReduceKeyed { keys, .. } | QueryKind::Distinct { keys } => {
            let func = match &q.kind {
                QueryKind::ReduceKeyed { func, .. } => *func,
                _ => ReduceFunc::Count,
            };
            let key_fields: Vec<FieldId> = keys.iter().map(|&k| resolve(k, proto)).collect();
            let fp = q.fp.as_ref();
            let value_field = reduce_value_field(&q.map, proto);

            // Exact key matching table + per-entry counters.
            let entries = fp.map(|f| f.entries.clone()).unwrap_or_default();
            let exact_reg = sw.regs.alloc(&format!("q{qi}_exact_cnt"), 64, entries.len().max(1));
            let mut exact_tbl = Table::new(
                &format!("q{qi}_exact"),
                MatchKind::Exact,
                key_fields.clone(),
                entries.len().max(1),
                ActionSet::new(
                    &format!("q{qi}_exact_miss"),
                    vec![PrimitiveOp::SetConst { dst: exact_miss, value: 1 }],
                ),
            )
            .with_gateway(Gateway { field: match_field, cmp: Cmp::Eq, value: 1 });
            for (i, key) in entries.iter().enumerate() {
                let update = match (func, value_field) {
                    (ReduceFunc::Count, _) | (ReduceFunc::Sum, None) => {
                        SaluUpdate::Add(SaluOperand::Const(1))
                    }
                    (ReduceFunc::Sum, Some(f)) => SaluUpdate::Add(SaluOperand::Field(f)),
                    (ReduceFunc::Max, Some(f)) => SaluUpdate::Set(SaluOperand::Field(f)),
                    (ReduceFunc::Max, None) => SaluUpdate::Add(SaluOperand::Const(1)),
                };
                exact_tbl
                    .insert(
                        MatchKey::Exact(key.clone()),
                        ActionSet::new(
                            "",
                            vec![
                                PrimitiveOp::Salu {
                                    reg: exact_reg,
                                    index: IndexSource::Const(i as u64),
                                    program: SaluProgram {
                                        condition: None,
                                        on_true: update,
                                        on_false: update,
                                        output: Some(SaluOutput {
                                            dst: count_field,
                                            src: SaluOutputSrc::NewValue,
                                        }),
                                    },
                                },
                                PrimitiveOp::SetConst { dst: exact_miss, value: 0 },
                            ],
                        ),
                        0,
                    )
                    .expect("exact entry");
            }
            handle.exact = Some((exact_reg, entries));

            // Cuckoo engine.
            let hash = fp.map(|f| f.hash).unwrap_or_default();
            let bits = hash.array_bits;
            let arr_key = [
                sw.regs.alloc(&format!("q{qi}_a1_key"), 64, 1 << bits),
                sw.regs.alloc(&format!("q{qi}_a2_key"), 64, 1 << bits),
            ];
            let arr_cnt = [
                sw.regs.alloc(&format!("q{qi}_a1_cnt"), 64, 1 << bits),
                sw.regs.alloc(&format!("q{qi}_a2_cnt"), 64, 1 << bits),
            ];
            let fifo = RegFifo::new(
                &format!("q{qi}_kv"),
                &mut sw.regs,
                &mut sw.fields,
                3,
                cfg.kv_fifo_capacity,
            );
            let evict_digest = DigestId(qi as u16 + 1);
            let engine = Arc::new(Mutex::new(CuckooEngine {
                cfg: hash,
                key_fields,
                func,
                value_field,
                match_flag: match_field,
                exact_miss_flag: exact_miss,
                count_out: count_field,
                arr_key,
                arr_cnt,
                fifo,
                evict_digest,
                stats: CuckooStats::default(),
            }));
            handle.engine = Some(engine.clone());
            handle.evict_digest = Some(evict_digest);

            let pipeline = if egress_side { &mut sw.egress } else { &mut sw.ingress };
            pipeline.push_table(exact_tbl);
            pipeline.push_extern(Box::new(CuckooExtern::new(&format!("q{qi}_cuckoo"), engine)));
        }
    }

    // Capture stage feeding stateless triggers.
    if !q.capture_for.is_empty() {
        let fifos: Vec<Arc<Mutex<RegFifo>>> = q
            .capture_for
            .iter()
            .map(|c| trigger_fifos[&(q.name.clone(), c.clone())].clone())
            .collect();
        let stats = Arc::new(Mutex::new(CaptureStats::default()));
        handle.capture_stats = Some(stats.clone());
        let result_gate = q.result_filter.map(|(c, v)| (count_field, cmp_of(c), v));
        let capture = CaptureExtern {
            name: format!("q{qi}_capture"),
            match_flag: match_field,
            result_gate,
            fifos,
            stats,
        };
        let pipeline = if egress_side { &mut sw.egress } else { &mut sw.ingress };
        pipeline.push_extern(Box::new(capture));
    }
    handle
}

fn base_value(tpl: &TemplateSpec, f: HeaderField) -> Option<u64> {
    tpl.base.iter().find(|(bf, _)| *bf == f).map(|&(_, v)| v)
}

/// Builds the template packet bytes for a spec and parses them into a
/// [`SimPacket`] tagged with the template id — the switch-CPU side of
/// template-based generation.
pub fn build_template_packet(sw: &mut Switch, tpl: &TemplateSpec) -> SimPacket {
    let eth_src = base_value(tpl, HeaderField::EthSrc)
        .map(EthernetAddress::from_u64)
        .unwrap_or(EthernetAddress([0x02, 0, 0, 0, 0, 0x01]));
    let eth_dst = base_value(tpl, HeaderField::EthDst)
        .map(EthernetAddress::from_u64)
        .unwrap_or(EthernetAddress([0x02, 0, 0, 0, 0, 0x02]));
    let sip =
        Ipv4Address::from_u32(base_value(tpl, HeaderField::Sip).unwrap_or(0x0a00_0001) as u32);
    let dip =
        Ipv4Address::from_u32(base_value(tpl, HeaderField::Dip).unwrap_or(0x0a00_0002) as u32);
    let sport = base_value(tpl, HeaderField::Sport).unwrap_or(1024) as u16;
    let dport = base_value(tpl, HeaderField::Dport).unwrap_or(80) as u16;

    let mut b = PacketBuilder::new()
        .eth(eth_src, eth_dst)
        .ipv4(sip, dip)
        .ttl(base_value(tpl, HeaderField::Ttl).unwrap_or(64) as u8)
        .ident(base_value(tpl, HeaderField::Ident).unwrap_or(0) as u16)
        .payload(&tpl.payload)
        .frame_len(tpl.frame_len);
    b = match tpl.protocol {
        L4Proto::Tcp => b.tcp(
            sport,
            dport,
            base_value(tpl, HeaderField::SeqNo).unwrap_or(0) as u32,
            base_value(tpl, HeaderField::AckNo).unwrap_or(0) as u32,
            TcpFlags(base_value(tpl, HeaderField::TcpFlags).unwrap_or(0) as u8),
        ),
        L4Proto::Udp => b.udp(sport, dport),
        L4Proto::None => b,
    };
    let mut pkt = sw.make_packet(b.build());
    pkt.phv.set(&sw.fields, fields::TEMPLATE_ID, u64::from(tpl.id));
    pkt
}
