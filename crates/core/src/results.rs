//! Query result readback — the switch-CPU side of statistic collection.
//!
//! After (or during) a run, the CPU merges four sources per keyed query:
//! the two cuckoo arrays, records still pending in the KV FIFO, the evicted
//! pairs reported through `generate_digest`, and the exact-key-matching
//! counters.  Because the header space is enumerable, digests can be mapped
//! back to the concrete keys (the same argument that made the false-positive
//! precompute possible).

use crate::tester::QueryHandle;
use ht_asic::Switch;
use ht_ir::KeySpace;
use std::collections::HashMap;

/// The merged result of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// A global reduce: one value.
    Global(u64),
    /// A keyed reduce resolved to concrete keys.
    Keyed(HashMap<Vec<u64>, u64>),
    /// A distinct count.
    Distinct(u64),
}

/// Reads a global reduce counter.
pub fn global_value(sw: &Switch, h: &QueryHandle) -> u64 {
    h.global_reg.map(|r| sw.regs.array(r).cp_read(0)).unwrap_or(0)
}

/// Merges a keyed query's state into `(canonical bucket, digest) → count`,
/// excluding exact-match traffic (which is keyed exactly, not by digest).
pub fn keyed_by_digest(sw: &Switch, h: &QueryHandle) -> HashMap<(u64, u64), u64> {
    let Some(engine) = &h.engine else {
        return HashMap::new();
    };
    let eng = engine.lock().unwrap();
    let mut map = eng.resident_counts(&sw.regs);
    // Evicted / overflow-reported pairs from the digest stream.
    if let Some(id) = h.evict_digest {
        for d in sw.digests.iter().filter(|d| d.id == id) {
            let (bucket, digest, count) = (d.values[0], d.values[1], d.values[2]);
            let alt = eng.cfg.alt_bucket(bucket, digest);
            *map.entry((bucket.min(alt), digest)).or_insert(0) += count;
        }
    }
    map
}

/// Resolves a keyed query to concrete keys over an enumerated key space
/// (the flat [`KeySpace`] produced by `ht_ntapi::headerspace`).
///
/// Keys in the space that never appeared simply do not show up in the map.
pub fn keyed_results(sw: &Switch, h: &QueryHandle, space: &KeySpace) -> HashMap<Vec<u64>, u64> {
    let mut out = HashMap::new();
    // Exact-match entries first: they are keyed exactly.
    if let Some((reg, keys)) = &h.exact {
        let arr = sw.regs.array(*reg);
        for (i, key) in keys.iter().enumerate() {
            let v = arr.cp_read(i);
            if v != 0 {
                out.insert(key.clone(), v);
            }
        }
    }
    let digest_map = keyed_by_digest(sw, h);
    if let Some(engine) = &h.engine {
        let eng = engine.lock().unwrap();
        for key in space.iter() {
            if out.contains_key(key) {
                continue; // resolved exactly
            }
            let canon = eng.canonical_of_key(key);
            if let Some(&v) = digest_map.get(&canon) {
                out.insert(key.to_vec(), v);
            }
        }
    }
    out
}

/// Distinct count: distinct canonical pairs plus exact entries that saw
/// traffic.  False-positive-free by construction — the precompute diverted
/// every digest-ambiguous key to the exact table.
pub fn distinct_count(sw: &Switch, h: &QueryHandle) -> u64 {
    let mut n = keyed_by_digest(sw, h).len() as u64;
    if let Some((reg, keys)) = &h.exact {
        let arr = sw.regs.array(*reg);
        n += (0..keys.len()).filter(|&i| arr.cp_read(i) != 0).count() as u64;
    }
    n
}

/// Convenience: the result of a query given its kind.
pub fn query_result(sw: &Switch, h: &QueryHandle, space: Option<&KeySpace>) -> QueryResult {
    use ht_ntapi::compile::QueryKind;
    match &h.query.kind {
        QueryKind::PassThrough | QueryKind::ReduceGlobal { .. } => {
            QueryResult::Global(global_value(sw, h))
        }
        QueryKind::ReduceKeyed { .. } => match space {
            Some(s) => QueryResult::Keyed(keyed_results(sw, h, s)),
            None => QueryResult::Distinct(distinct_count(sw, h)),
        },
        QueryKind::Distinct { .. } => QueryResult::Distinct(distinct_count(sw, h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tester::{build, Gbps, TesterConfig};
    use ht_ntapi::{compile, parse};

    /// A keyed task whose handle we can poke registers through.
    fn keyed_setup() -> (crate::tester::BuiltTester, KeySpace) {
        let src = r#"
T1 = trigger().set([dip, proto], [10.0.0.2, udp]).set(sport, range(100, 104, 1))
Q1 = query().reduce(keys=[sport], func=count)
"#;
        let task = compile(&parse(src).unwrap()).unwrap();
        let bt = build(&task, &TesterConfig::builder().ports(1).speed(Gbps(100)).build().unwrap())
            .unwrap();
        let mut space = KeySpace::with_capacity(1, 5);
        for v in 100..=104u64 {
            space.push(&[v]);
        }
        (bt, space)
    }

    #[test]
    fn empty_engine_yields_empty_results() {
        let (bt, space) = keyed_setup();
        let h = &bt.handles.queries["Q1"];
        assert!(keyed_results(&bt.switch, h, &space).is_empty());
        assert_eq!(distinct_count(&bt.switch, h), 0);
        assert_eq!(global_value(&bt.switch, h), 0, "no global reg → 0");
    }

    #[test]
    fn resident_and_evicted_counts_merge() {
        let (mut bt, space) = keyed_setup();
        let h = bt.handles.queries["Q1"].clone();
        let engine = h.engine.as_ref().unwrap();
        // Plant key 100 in array 1 with count 7.
        let (b1, digest, tag) = {
            let eng = engine.lock().unwrap();
            let key = vec![100u64];
            (eng.cfg.h1(&key), eng.cfg.digest(&key), eng.cfg.digest(&key) + 1)
        };
        {
            let eng = engine.lock().unwrap();
            bt.switch.regs.array_mut(eng.arr_key[0]).cp_write(b1 as usize, tag);
            bt.switch.regs.array_mut(eng.arr_cnt[0]).cp_write(b1 as usize, 7);
        }
        // And an eviction record for the same key with count 5, reported
        // from its *alternate* bucket (the CPU must canonicalize).
        let alt = engine.lock().unwrap().cfg.alt_bucket(b1, digest);
        bt.switch.digests.push(ht_asic::digest::DigestRecord {
            id: h.evict_digest.unwrap(),
            values: vec![alt, digest, 5],
            at: 0,
        });
        let out = keyed_results(&bt.switch, &h, &space);
        assert_eq!(out.get(&vec![100u64]).copied(), Some(12), "7 resident + 5 evicted");
        assert_eq!(distinct_count(&bt.switch, &h), 1);
    }

    #[test]
    fn exact_entries_take_precedence_and_add_to_distinct() {
        let (mut bt, space) = keyed_setup();
        let mut h = bt.handles.queries["Q1"].clone();
        // Pretend key 103 was diverted to the exact table at index 0.
        if let Some((reg, keys)) = &mut h.exact {
            keys.clear();
            keys.push(vec![103u64]);
            bt.switch.regs.array_mut(*reg).cp_write(0, 42);
        }
        let out = keyed_results(&bt.switch, &h, &space);
        assert_eq!(out.get(&vec![103u64]).copied(), Some(42));
        assert_eq!(distinct_count(&bt.switch, &h), 1);
    }

    #[test]
    fn query_result_dispatches_by_kind() {
        let (bt, space) = keyed_setup();
        let h = &bt.handles.queries["Q1"];
        match query_result(&bt.switch, h, Some(&space)) {
            QueryResult::Keyed(m) => assert!(m.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match query_result(&bt.switch, h, None) {
            QueryResult::Distinct(0) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
