//! HyperTester Packet Receiver (HTPR, §5.2): accurate packet-stream queries
//! on the data plane.
//!
//! The receiver is compiled per query as a chain of pipeline components:
//!
//! 1. a [`FilterExtern`] evaluating the query's predicates (plus the
//!    implicit source gating) into a match flag;
//! 2. for keyed queries, the **exact key matching** table (built by
//!    `tester`) resolving the precomputed false positives, then the
//!    [`CuckooExtern`] — two digest/counter register arrays with
//!    partial-key cuckoo hashing and the KV FIFO of Fig. 5;
//! 3. for capture queries (stateless connections), a [`CaptureExtern`]
//!    pushing trigger records into the per-consumer trigger FIFOs.
//!
//! Recirculated template packets drive the cuckoo insertions by popping the
//! KV FIFO — exactly the paper's trick for getting a second pipeline pass
//! without extra packets.

use crate::fifo::RegFifo;
use ht_asic::action::ExecCtx;
use ht_asic::digest::{DigestId, DigestRecord};
use ht_asic::phv::{fields, FieldId, Phv};
use ht_asic::pipeline::Extern;
use ht_asic::register::{Cmp, RegId, RegisterFile, SaluOperand, SaluProgram};
use ht_asic::resources::ResourceUsage;
use ht_ntapi::ast::ReduceFunc;
use ht_ntapi::fp::HashConfig;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// PHV fields captured into a trigger record, in record order.  Both TCP
/// and UDP ports are captured so one record layout serves either protocol.
pub const RECORD_FIELDS: [FieldId; 9] = [
    fields::IPV4_SRC,
    fields::IPV4_DST,
    fields::TCP_SPORT,
    fields::TCP_DPORT,
    fields::UDP_SPORT,
    fields::UDP_DPORT,
    fields::TCP_SEQ,
    fields::TCP_ACK,
    fields::TCP_FLAGS,
];

/// Index of a PHV field within [`RECORD_FIELDS`].
pub fn record_index(f: FieldId) -> Option<usize> {
    RECORD_FIELDS.iter().position(|&r| r == f)
}

/// A conjunction of predicates evaluated into a match flag — the compiled
/// form of NTAPI `filter` plus the query's implicit source gating.
#[derive(Debug)]
pub struct FilterExtern {
    name: String,
    /// `(field, cmp, constant)` conjuncts.
    pub preds: Vec<(FieldId, Cmp, u64)>,
    /// Output flag field (1 = all predicates hold).
    pub out: FieldId,
}

impl FilterExtern {
    /// Creates a filter writing into `out`.
    pub fn new(name: &str, preds: Vec<(FieldId, Cmp, u64)>, out: FieldId) -> Self {
        FilterExtern { name: name.to_string(), preds, out }
    }
}

impl Extern for FilterExtern {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        let ok = self.preds.iter().all(|&(f, cmp, v)| {
            let lhs = phv.get(f);
            match cmp {
                Cmp::Eq => lhs == v,
                Cmp::Ne => lhs != v,
                Cmp::Lt => lhs < v,
                Cmp::Le => lhs <= v,
                Cmp::Gt => lhs > v,
                Cmp::Ge => lhs >= v,
            }
        });
        phv.set(ctx.table, self.out, u64::from(ok));
    }

    fn resources(&self) -> ResourceUsage {
        ResourceUsage {
            gateways: self.preds.len() as u64,
            crossbar_bits: self.preds.len() as u64 * 16,
            vliw_slots: 1,
            ..Default::default()
        }
    }

    fn reads(&self) -> Vec<FieldId> {
        self.preds.iter().map(|&(f, _, _)| f).collect()
    }

    fn writes(&self) -> Vec<FieldId> {
        vec![self.out]
    }
}

/// Runtime statistics of one cuckoo query engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CuckooStats {
    /// Packets that updated an existing slot.
    pub updates: u64,
    /// Packets that claimed an empty slot directly.
    pub claims: u64,
    /// Packets whose KV pair went through the FIFO.
    pub fifo_pushes: u64,
    /// KV pairs popped by recirculated template packets.
    pub pops: u64,
    /// Array-1 → array-2 displacements during pops.
    pub displacements: u64,
    /// Old pairs evicted from array 2 and reported to the CPU.
    pub evictions: u64,
    /// KV pairs reported straight to the CPU because the FIFO was full.
    pub overflow_reports: u64,
    /// Packets resolved by the exact-key-matching table (for reporting;
    /// counted by the table itself).
    pub exact_hits: u64,
}

/// Shared state of one keyed query's engine, referenced by both the
/// pipeline extern and the post-run results reader.
#[derive(Debug)]
pub struct CuckooEngine {
    /// Hash configuration (must equal the compile-time fp config).
    pub cfg: HashConfig,
    /// PHV fields forming the key, in order.
    pub key_fields: Vec<FieldId>,
    /// Aggregation function.
    pub func: ReduceFunc,
    /// PHV field supplying the reduce value (`None` = 1 per packet).
    pub value_field: Option<FieldId>,
    /// Gating flags produced by the filter stage and the exact table.
    pub match_flag: FieldId,
    /// 1 when the exact table did *not* resolve the packet.
    pub exact_miss_flag: FieldId,
    /// Running counter output (drives `.filter(count …)` gates).
    pub count_out: FieldId,
    /// Digest-tag register arrays (slot holds digest+1; 0 = empty).
    pub arr_key: [RegId; 2],
    /// Counter register arrays.
    pub arr_cnt: [RegId; 2],
    /// The KV FIFO buffering insertions (records `[bucket, digest, value]`).
    pub fifo: RegFifo,
    /// Digest stream for evictions/overflow reports to the switch CPU.
    pub evict_digest: DigestId,
    /// Statistics.
    pub stats: CuckooStats,
}

impl CuckooEngine {
    fn tag(&self, digest: u64) -> u64 {
        digest + 1
    }

    fn value_of(&self, phv: &Phv) -> u64 {
        match self.func {
            ReduceFunc::Count => 1,
            _ => self.value_field.map(|f| phv.get(f)).unwrap_or(1),
        }
    }

    fn key_of(&self, phv: &Phv) -> Vec<u64> {
        self.key_fields.iter().map(|&f| phv.get(f)).collect()
    }

    /// Applies the reduce function to a counter register slot; returns the
    /// new counter value.
    #[allow(clippy::too_many_arguments)]
    fn bump(
        &self,
        regs: &mut RegisterFile,
        arr: RegId,
        slot: u64,
        value: u64,
        fresh: bool,
        phv: &mut Phv,
        ctx_table: &ht_asic::phv::FieldTable,
    ) -> u64 {
        use ht_asic::register::{SaluOutput, SaluOutputSrc, SaluUpdate};
        let update = if fresh {
            SaluUpdate::Set(SaluOperand::Const(value))
        } else {
            match self.func {
                ReduceFunc::Sum | ReduceFunc::Count => SaluUpdate::Add(SaluOperand::Const(value)),
                ReduceFunc::Max => SaluUpdate::Set(SaluOperand::Const(value)),
            }
        };
        // Max keeps the larger of (reg, value).
        let prog = if !fresh && self.func == ReduceFunc::Max {
            SaluProgram {
                condition: Some(ht_asic::register::SaluCond {
                    expr: ht_asic::register::CondExpr::Reg,
                    cmp: Cmp::Lt,
                    rhs: SaluOperand::Const(value),
                }),
                on_true: SaluUpdate::Set(SaluOperand::Const(value)),
                on_false: SaluUpdate::Keep,
                output: Some(SaluOutput { dst: self.count_out, src: SaluOutputSrc::NewValue }),
            }
        } else {
            SaluProgram {
                condition: None,
                on_true: update,
                on_false: update,
                output: Some(SaluOutput { dst: self.count_out, src: SaluOutputSrc::NewValue }),
            }
        };
        regs.execute(arr, slot, &prog, phv, ctx_table)
    }

    /// The probe path for a matched received packet.
    fn probe(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        let key = self.key_of(phv);
        let digest = self.cfg.digest(&key);
        let tag = self.tag(digest);
        let value = self.value_of(phv);
        let b1 = self.cfg.h1(&key);

        // Array 1: claim-if-empty, read old tag.
        let old0 = self.claim_or_read(ctx.regs, self.arr_key[0], b1, tag, phv, ctx.table);
        if old0 == 0 {
            self.stats.claims += 1;
            self.bump(ctx.regs, self.arr_cnt[0], b1, value, true, phv, ctx.table);
            return;
        }
        if old0 == tag {
            self.stats.updates += 1;
            self.bump(ctx.regs, self.arr_cnt[0], b1, value, false, phv, ctx.table);
            return;
        }
        // Array 2 at the alternate bucket.
        let b2 = self.cfg.alt_bucket(b1, digest);
        let old1 = self.claim_or_read(ctx.regs, self.arr_key[1], b2, tag, phv, ctx.table);
        if old1 == 0 {
            self.stats.claims += 1;
            self.bump(ctx.regs, self.arr_cnt[1], b2, value, true, phv, ctx.table);
            return;
        }
        if old1 == tag {
            self.stats.updates += 1;
            self.bump(ctx.regs, self.arr_cnt[1], b2, value, false, phv, ctx.table);
            return;
        }
        // Both occupied by other keys: buffer the KV pair in the FIFO.
        phv.set(ctx.table, self.count_out, value);
        if self.fifo.enqueue(ctx.regs, ctx.table, phv, &[b1, digest, value]) {
            self.stats.fifo_pushes += 1;
        } else {
            // FIFO full: report straight to the CPU (the paper's overflow
            // behaviour, made loss-visible instead of silent).
            self.stats.overflow_reports += 1;
            ctx.digests.push(DigestRecord {
                id: self.evict_digest,
                values: vec![b1, digest, value],
                at: ctx.now,
            });
        }
    }

    /// One SALU access: claim the slot when empty, otherwise keep; returns
    /// the old tag.
    #[allow(clippy::too_many_arguments)]
    fn claim_or_read(
        &self,
        regs: &mut RegisterFile,
        arr: RegId,
        slot: u64,
        tag: u64,
        phv: &mut Phv,
        table: &ht_asic::phv::FieldTable,
    ) -> u64 {
        use ht_asic::register::{CondExpr, SaluCond, SaluOutput, SaluOutputSrc, SaluUpdate};
        let prog = SaluProgram {
            condition: Some(SaluCond {
                expr: CondExpr::Reg,
                cmp: Cmp::Eq,
                rhs: SaluOperand::Const(0),
            }),
            on_true: SaluUpdate::Set(SaluOperand::Const(tag)),
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst: self.count_out, src: SaluOutputSrc::OldValue }),
        };
        regs.execute(arr, slot, &prog, phv, table)
    }

    /// The pop path for a recirculated template packet: drain one KV pair
    /// from the FIFO and insert it, Fig. 5 style (displace array 1 into
    /// array 2; report array-2 evictions to the CPU).
    fn pop(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        let Some(rec) = self.fifo.dequeue(ctx.regs, ctx.table, phv) else {
            return;
        };
        let (b1, digest, value) = (rec[0], rec[1], rec[2]);
        let tag = self.tag(digest);
        self.stats.pops += 1;

        // Array 1: read (and unconditionally take) the slot.
        let old_tag = ctx.regs.array(self.arr_key[0]).cp_read(b1 as usize);
        if old_tag == tag {
            self.stats.updates += 1;
            self.bump(ctx.regs, self.arr_cnt[0], b1, value, false, phv, ctx.table);
            return;
        }
        if old_tag == 0 {
            self.stats.claims += 1;
            self.write_slot(ctx.regs, 0, b1, tag, value, phv, ctx.table);
            return;
        }
        // Displace the occupant into its alternate bucket in array 2.
        let old_cnt = ctx.regs.array(self.arr_cnt[0]).cp_read(b1 as usize);
        self.write_slot(ctx.regs, 0, b1, tag, value, phv, ctx.table);
        self.stats.displacements += 1;
        let old_digest = old_tag - 1;
        let alt = self.cfg.alt_bucket(b1, old_digest);
        let old2 = ctx.regs.array(self.arr_key[1]).cp_read(alt as usize);
        if old2 == old_tag {
            self.bump(ctx.regs, self.arr_cnt[1], alt, old_cnt, false, phv, ctx.table);
            return;
        }
        if old2 != 0 {
            // Array-2 occupant is evicted to the CPU (Fig. 5d).
            let evicted_cnt = ctx.regs.array(self.arr_cnt[1]).cp_read(alt as usize);
            self.stats.evictions += 1;
            ctx.digests.push(DigestRecord {
                id: self.evict_digest,
                values: vec![alt, old2 - 1, evicted_cnt],
                at: ctx.now,
            });
        }
        self.write_slot(ctx.regs, 1, alt, old_tag, old_cnt, phv, ctx.table);
    }

    #[allow(clippy::too_many_arguments)]
    fn write_slot(
        &self,
        regs: &mut RegisterFile,
        arr: usize,
        slot: u64,
        tag: u64,
        value: u64,
        phv: &mut Phv,
        table: &ht_asic::phv::FieldTable,
    ) {
        regs.execute(
            self.arr_key[arr],
            slot,
            &SaluProgram::write(SaluOperand::Const(tag)),
            phv,
            table,
        );
        regs.execute(
            self.arr_cnt[arr],
            slot,
            &SaluProgram::write(SaluOperand::Const(value)),
            phv,
            table,
        );
    }

    /// Control-plane readout: every `(canonical bucket, digest) → count`
    /// pair currently held in the arrays, plus pending FIFO records.
    /// Canonicalization takes the smaller of the two candidate buckets so a
    /// key maps to the same id wherever it currently resides.
    pub fn resident_counts(&self, regs: &RegisterFile) -> HashMap<(u64, u64), u64> {
        let mut out = HashMap::new();
        for (arr_i, (karr, carr)) in self.arr_key.iter().zip(self.arr_cnt.iter()).enumerate() {
            let keys = regs.array(*karr);
            let cnts = regs.array(*carr);
            for slot in 0..keys.depth() {
                let tag = keys.cp_read(slot);
                if tag == 0 {
                    continue;
                }
                let digest = tag - 1;
                let bucket = slot as u64;
                // A key in array 2 sits in its alternate bucket; map back.
                let home = if arr_i == 0 { bucket } else { self.cfg.alt_bucket(bucket, digest) };
                let canon = canonical(home, self.cfg.alt_bucket(home, digest), digest);
                *out.entry(canon).or_insert(0) += cnts.cp_read(slot);
            }
        }
        // Records still waiting in the FIFO.
        for rec in self.pending_fifo(regs) {
            let (b1, digest, value) = (rec[0], rec[1], rec[2]);
            let canon = canonical(b1, self.cfg.alt_bucket(b1, digest), digest);
            *out.entry(canon).or_insert(0) += value;
        }
        out
    }

    /// Records currently sitting in the KV FIFO (control-plane view).
    pub fn pending_fifo(&self, regs: &RegisterFile) -> Vec<Vec<u64>> {
        // The control plane reads the raw front/rear/data registers.
        let n = self.fifo.len(regs);
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // The FIFO type hides its registers; re-derive through a scratch
        // dequeue would mutate state, so this readout lives here with
        // knowledge of the layout via the accessor below.
        out.extend(self.fifo.peek_all(regs));
        out
    }

    /// The canonical id of a key under this engine's hash configuration.
    pub fn canonical_of_key(&self, key: &[u64]) -> (u64, u64) {
        let digest = self.cfg.digest(key);
        let b1 = self.cfg.h1(key);
        canonical(b1, self.cfg.alt_bucket(b1, digest), digest)
    }
}

fn canonical(b1: u64, b2: u64, digest: u64) -> (u64, u64) {
    (b1.min(b2), digest)
}

/// The pipeline extern wrapping a shared [`CuckooEngine`].
#[derive(Debug)]
pub struct CuckooExtern {
    name: String,
    /// Shared engine state (also held by the results reader).
    pub engine: Arc<Mutex<CuckooEngine>>,
}

impl CuckooExtern {
    /// Wraps an engine.
    pub fn new(name: &str, engine: Arc<Mutex<CuckooEngine>>) -> Self {
        CuckooExtern { name: name.to_string(), engine }
    }
}

impl Extern for CuckooExtern {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        let mut eng = self.engine.lock().unwrap();
        if phv.get(eng.match_flag) == 1 {
            // A monitored packet (a received packet for ingress queries, a
            // test-packet replica for sent-traffic queries).
            if phv.get(eng.exact_miss_flag) == 1 {
                eng.probe(phv, ctx);
            }
        } else if phv.get(fields::TEMPLATE_ID) != 0 && phv.get(fields::RID) == 0 {
            // A recirculating template original: drive the FIFO pops.
            eng.pop(phv, ctx);
        }
    }

    fn resources(&self) -> ResourceUsage {
        let eng = self.engine.lock().unwrap();
        ResourceUsage {
            crossbar_bits: eng.key_fields.len() as u64 * 32,
            hash_bits: 3 * u64::from(eng.cfg.array_bits),
            vliw_slots: 6,
            gateways: 2,
            ..Default::default()
        }
    }

    fn reads(&self) -> Vec<FieldId> {
        let eng = self.engine.lock().unwrap();
        let mut r = eng.key_fields.clone();
        r.extend(eng.value_field);
        r.push(eng.match_flag);
        r.push(eng.exact_miss_flag);
        r.push(fields::TEMPLATE_ID);
        r.push(fields::RID);
        r
    }

    fn writes(&self) -> Vec<FieldId> {
        vec![self.engine.lock().unwrap().count_out]
    }

    fn registers(&self) -> Vec<RegId> {
        let eng = self.engine.lock().unwrap();
        let mut r = Vec::new();
        r.extend(eng.arr_key);
        r.extend(eng.arr_cnt);
        r.extend(eng.fifo.registers());
        r
    }
}

/// Statistics of a capture stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Records pushed into every consumer FIFO.
    pub captured: u64,
    /// Records dropped because a consumer FIFO was full.
    pub dropped: u64,
}

/// Captures matched packets into the trigger FIFOs of the consuming
/// templates (§5.3, Fig. 6).
#[derive(Debug)]
pub struct CaptureExtern {
    /// Component name.
    pub name: String,
    /// Match flag from the filter stage.
    pub match_flag: FieldId,
    /// Optional gate over the running reduce result
    /// (`.filter(count < 5)`).
    pub result_gate: Option<(FieldId, Cmp, u64)>,
    /// One trigger FIFO per consuming template.
    pub fifos: Vec<Arc<Mutex<RegFifo>>>,
    /// Shared statistics.
    pub stats: Arc<Mutex<CaptureStats>>,
}

impl Extern for CaptureExtern {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        if phv.get(fields::TEMPLATE_ID) != 0 || phv.get(self.match_flag) != 1 {
            return;
        }
        if let Some((f, cmp, v)) = self.result_gate {
            let lhs = phv.get(f);
            let ok = match cmp {
                Cmp::Eq => lhs == v,
                Cmp::Ne => lhs != v,
                Cmp::Lt => lhs < v,
                Cmp::Le => lhs <= v,
                Cmp::Gt => lhs > v,
                Cmp::Ge => lhs >= v,
            };
            if !ok {
                return;
            }
        }
        let record: Vec<u64> = RECORD_FIELDS.iter().map(|&f| phv.get(f)).collect();
        let mut stats = self.stats.lock().unwrap();
        for fifo in &self.fifos {
            if fifo.lock().unwrap().enqueue(ctx.regs, ctx.table, phv, &record) {
                stats.captured += 1;
            } else {
                stats.dropped += 1;
            }
        }
    }

    fn resources(&self) -> ResourceUsage {
        ResourceUsage {
            vliw_slots: RECORD_FIELDS.len() as u64,
            gateways: 1 + u64::from(self.result_gate.is_some()),
            ..Default::default()
        }
    }

    fn reads(&self) -> Vec<FieldId> {
        let mut r = vec![self.match_flag, fields::TEMPLATE_ID];
        r.extend(self.result_gate.map(|(f, _, _)| f));
        r.extend(RECORD_FIELDS);
        r
    }

    fn registers(&self) -> Vec<RegId> {
        self.fifos.iter().flat_map(|f| f.lock().unwrap().registers()).collect()
    }
}
