//! The MoonGen-like software packet generator.
//!
//! Throughput model (§2.2, Figs. 9–10): a DPDK core crafts and enqueues
//! packets at a fixed per-packet CPU cost — "MoonGen can generate up to
//! 80 Gbps small-sized packets with eight cores", i.e. ≈10 Gbps of 64-byte
//! frames (≈14.9 Mpps) per core.  A core's output is further capped by its
//! NIC port's line rate.
//!
//! [`MoonGen`] is also a simulation [`Device`]: it paces packets with the
//! configured rate-control mode and emits them into the world, so software
//! and switch testers run in identical testbeds.

use crate::ratectl::{draw_gap, RateControlMode};
use ht_asic::phv::{fields, FieldTable};
use ht_asic::sim::{Device, Outbox};
use ht_asic::time::{SimTime, PS_PER_SEC};
use ht_asic::SimPacket;
use ht_packet::wire;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;

/// Per-packet CPU cost of one DPDK generator core, in picoseconds.
///
/// Calibrated so one core generates ≈14.9 Mpps of 64-byte frames — 10 Gbps,
/// matching Fig. 10(b)'s one-core-per-10G scaling.
pub const PER_PACKET_CPU_PS: u64 = 67_000;

/// Software tester configuration.
#[derive(Debug, Clone)]
pub struct MoonGenConfig {
    /// Generator cores (each drives its own port queue).
    pub cores: usize,
    /// NIC port speed per core, bits/s.
    pub port_speed_bps: u64,
    /// Frame length generated.
    pub frame_len: usize,
    /// Target inter-departure gap per core (ps); `None` = as fast as the
    /// core + wire allow.
    pub interval: Option<SimTime>,
    /// Rate-control mode.
    pub rate_control: RateControlMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoonGenConfig {
    fn default() -> Self {
        MoonGenConfig {
            cores: 1,
            port_speed_bps: wire::gbps(10),
            frame_len: 64,
            interval: None,
            rate_control: RateControlMode::Hardware,
            seed: 11,
        }
    }
}

/// Maximum packet rate of one core for a frame length, packets/s:
/// the CPU crafting rate capped by the port's line rate.
pub fn core_pps(cfg: &MoonGenConfig) -> f64 {
    let cpu_pps = PS_PER_SEC as f64 / PER_PACKET_CPU_PS as f64;
    cpu_pps.min(wire::line_rate_pps(cfg.frame_len, cfg.port_speed_bps))
}

/// Aggregate L2 throughput of the configured tester at full load, bits/s.
pub fn aggregate_l2_bps(cfg: &MoonGenConfig) -> f64 {
    cfg.cores as f64 * wire::l2_rate_bps(cfg.frame_len, core_pps(cfg))
}

/// Generates `n` departure timestamps for one core under the configured
/// pacing (pure model, no world needed) — the series Fig. 11's error
/// metrics are computed over.
pub fn departures(cfg: &MoonGenConfig, n: usize) -> Vec<SimTime> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let wire_floor = wire::wire_time_ps(cfg.frame_len, cfg.port_speed_bps);
    let cpu_floor = PER_PACKET_CPU_PS;
    let floor = wire_floor.max(cpu_floor);
    let target = cfg.interval.unwrap_or(floor).max(floor);
    let mut t = 0;
    (0..n)
        .map(|_| {
            t += draw_gap(cfg.rate_control, target, floor, &mut rng);
            t
        })
        .collect()
}

/// The software tester as a simulation device.  Port `c` carries core `c`'s
/// traffic; reception is counted per port.
#[derive(Debug)]
pub struct MoonGen {
    name: String,
    /// Configuration.
    pub cfg: MoonGenConfig,
    fields: FieldTable,
    rng: StdRng,
    next_departure: Vec<SimTime>,
    /// Packets emitted per core.
    pub sent: Vec<u64>,
    /// Packets received per port.
    pub received: Vec<u64>,
    /// Receive timestamps (arrival, uid) when logging is on.
    pub rx_log: Vec<(SimTime, u64)>,
    /// Enables `rx_log`.
    pub log_rx: bool,
    uid: u64,
}

impl MoonGen {
    /// Creates the device.
    pub fn new(name: &str, cfg: MoonGenConfig) -> Self {
        let cores = cfg.cores;
        MoonGen {
            name: name.to_string(),
            cfg,
            fields: FieldTable::new(),
            rng: StdRng::seed_from_u64(97),
            next_departure: vec![0; cores],
            sent: vec![0; cores],
            received: vec![0; cores],
            rx_log: Vec::new(),
            log_rx: false,
            uid: 1,
        }
    }

    fn make_packet(&mut self) -> SimPacket {
        let mut phv = self.fields.new_phv();
        phv.set(&self.fields, fields::PKT_LEN, self.cfg.frame_len as u64);
        phv.set(&self.fields, fields::IPV4_VALID, 1);
        phv.set(&self.fields, fields::UDP_VALID, 1);
        let uid = self.uid;
        self.uid += 1;
        SimPacket { phv, body: None, uid }
    }
}

impl Device for MoonGen {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, _out: &mut Outbox) {
        if let Some(r) = self.received.get_mut(port as usize) {
            *r += 1;
        }
        if self.log_rx {
            self.rx_log.push((now, pkt.uid));
        }
    }

    fn wake(&mut self, token: u64, now: SimTime, out: &mut Outbox) {
        let core = token as usize;
        // Emit one packet, then schedule the next departure with the
        // rate-control error model.
        let pkt = self.make_packet();
        out.emit(core as u16, pkt, now);
        self.sent[core] += 1;

        let wire_floor = wire::wire_time_ps(self.cfg.frame_len, self.cfg.port_speed_bps);
        let floor = wire_floor.max(PER_PACKET_CPU_PS);
        let target = self.cfg.interval.unwrap_or(floor).max(floor);
        let gap = draw_gap(self.cfg.rate_control, target, floor, &mut self.rng);
        self.next_departure[core] = now + gap;
        out.wake_at(token, now + gap);
    }

    fn device_kind(&self) -> ht_asic::sim::DeviceKind {
        ht_asic::sim::DeviceKind::Host
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_asic::time::ms;
    use ht_asic::{LinkSpec, World};
    use ht_dut::Sink;

    #[test]
    fn one_core_is_ten_gig_at_64b() {
        let cfg = MoonGenConfig::default();
        let pps = core_pps(&cfg);
        assert!((pps / 1e6 - 14.88).abs() < 0.1, "pps {pps}");
        // CPU-bound below the 40G line rate for small packets (Fig. 9b)…
        let cfg40 = MoonGenConfig { port_speed_bps: wire::gbps(40), ..cfg.clone() };
        assert!(core_pps(&cfg40) < wire::line_rate_pps(64, wire::gbps(40)) * 0.3);
        // …but line-rate for large frames.
        let big = MoonGenConfig { frame_len: 1024, port_speed_bps: wire::gbps(40), ..cfg };
        assert!((core_pps(&big) - wire::line_rate_pps(1024, wire::gbps(40))).abs() < 1.0);
    }

    #[test]
    fn eight_cores_make_eighty_gig() {
        let cfg = MoonGenConfig { cores: 8, ..Default::default() };
        let gbps = aggregate_l2_bps(&cfg) / 1e9;
        // 8 × 14.88 Mpps × 512 bit ≈ 61 Gbps L2 (the paper's "80 Gbps"
        // counts L1, preamble and IFG included).
        let l1 = 8.0 * wire::l1_rate_bps(64, core_pps(&cfg)) / 1e9;
        assert!((l1 - 80.0).abs() < 1.0, "L1 {l1} Gbps");
        assert!(gbps > 55.0 && gbps < 65.0, "L2 {gbps} Gbps");
    }

    #[test]
    fn departure_model_hits_target_rate() {
        let cfg = MoonGenConfig {
            interval: Some(1_000_000), // 1 µs → 1 Mpps
            ..Default::default()
        };
        let d = departures(&cfg, 10_000);
        let span_s = (d[d.len() - 1] - d[0]) as f64 / PS_PER_SEC as f64;
        let rate = (d.len() - 1) as f64 / span_s;
        assert!((rate / 1e6 - 1.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn device_emits_at_configured_rate_into_world() {
        let cfg = MoonGenConfig { cores: 2, interval: Some(10_000_000), ..Default::default() };
        let mut w = World::builder().seed(1).build().unwrap();
        let mg_id = w.add_device(Box::new(MoonGen::new("mg", cfg)));
        let sk = w.add_device(Box::new(Sink::new("sink")));
        w.link((mg_id, 0), (sk, 0), LinkSpec::new());
        w.link((mg_id, 1), (sk, 1), LinkSpec::new());
        for c in 0..2 {
            w.schedule_wake(mg_id, c, 0);
        }
        w.run_until(ms(2));
        let total = w.device::<Sink>(sk).total_frames();
        // 2 cores × 100 kpps × 2 ms = 400 ± jitter.
        assert!((380..=420).contains(&total), "frames {total}");
        assert_eq!(w.device::<MoonGen>(mg_id).sent.iter().sum::<u64>(), total);
    }
}
