//! Equipment and power cost model (Table 6).
//!
//! §7.4: "According to \[30\], a programmable switch costs about \$3600 and
//! 150 Watts per Tbps, while an 8-core CPU server costs about \$3500 and
//! 750 W under full load.  Based on Figure 10(b), an 8-core CPU server
//! could generate 80 Gbps traffic."  Normalizing the server by its measured
//! throughput yields the per-Tbps comparison; the saving is the difference.
//! (The paper's own table rounds the server figures to \$42000/7200 W —
//! slightly below the raw division; EXPERIMENTS.md reports both.)

/// Cost model inputs.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Programmable-switch equipment cost per Tbps, USD.
    pub switch_cost_per_tbps: f64,
    /// Programmable-switch power per Tbps, watts.
    pub switch_power_per_tbps: f64,
    /// One 8-core server's cost, USD.
    pub server_cost: f64,
    /// One 8-core server's power under full load, watts.
    pub server_power: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            switch_cost_per_tbps: 3_600.0,
            switch_power_per_tbps: 150.0,
            server_cost: 3_500.0,
            server_power: 750.0,
        }
    }
}

/// The Table 6 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// MoonGen equipment cost per Tbps, USD.
    pub moongen_cost_per_tbps: f64,
    /// MoonGen power per Tbps, watts.
    pub moongen_power_per_tbps: f64,
    /// HyperTester equipment cost per Tbps, USD.
    pub hypertester_cost_per_tbps: f64,
    /// HyperTester power per Tbps, watts.
    pub hypertester_power_per_tbps: f64,
    /// Equipment saving per Tbps, USD.
    pub cost_saving: f64,
    /// Power saving per Tbps, watts.
    pub power_saving: f64,
    /// Servers one 6.5 Tbps switch replaces.
    pub servers_replaced: f64,
}

impl CostModel {
    /// Computes the comparison given the server's measured generation
    /// throughput in Gbps (80 in Fig. 10b).
    pub fn compare(&self, server_gbps: f64) -> CostReport {
        assert!(server_gbps > 0.0);
        let per_tbps = 1000.0 / server_gbps;
        let mg_cost = self.server_cost * per_tbps;
        let mg_power = self.server_power * per_tbps;
        CostReport {
            moongen_cost_per_tbps: mg_cost,
            moongen_power_per_tbps: mg_power,
            hypertester_cost_per_tbps: self.switch_cost_per_tbps,
            hypertester_power_per_tbps: self.switch_power_per_tbps,
            cost_saving: mg_cost - self.switch_cost_per_tbps,
            power_saving: mg_power - self.switch_power_per_tbps,
            servers_replaced: 6.5 * 1000.0 / server_gbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shape_holds_at_80gbps() {
        let r = CostModel::default().compare(80.0);
        // Raw division gives 43750 / 9375 per Tbps; the paper's table
        // rounds to 42000 / 7200 — same order, >10× above the switch.
        assert!((r.moongen_cost_per_tbps - 43_750.0).abs() < 1.0);
        assert!((r.moongen_power_per_tbps - 9_375.0).abs() < 1.0);
        assert!(r.moongen_cost_per_tbps / r.hypertester_cost_per_tbps > 10.0);
        assert!(r.moongen_power_per_tbps / r.hypertester_power_per_tbps > 10.0);
        // Savings in the \$38k+/7k+W region the paper reports.
        assert!(r.cost_saving > 38_000.0);
        assert!(r.power_saving > 7_000.0);
        // "replace 81 8-core CPU servers" for a 6.5 Tbps switch.
        assert!((r.servers_replaced - 81.25).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn zero_throughput_rejected() {
        CostModel::default().compare(0.0);
    }
}
