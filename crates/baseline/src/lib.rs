//! The software-tester baseline: a MoonGen-like DPDK packet generator
//! model.
//!
//! The paper compares HyperTester against MoonGen on commodity servers
//! (§7; the authors note the comparison is with software because the
//! commercial hardware testers were not accessible — same here, squared:
//! this reproduction models MoonGen's *behavioural shape* rather than
//! running DPDK):
//!
//! * [`tester`] — per-core packet-generation throughput (≈10 Gbps of
//!   64-byte frames per core; 8 cores ≈ 80 Gbps, Fig. 10b) and a
//!   [`tester::MoonGen`] device usable in simulated testbeds.
//! * [`ratectl`] — the NIC hardware / CPU software rate-control error
//!   models behind Fig. 11's >10× accuracy gap, and the timestamping error
//!   models behind the Fig. 18 delay case study.
//! * [`sketch`] — Count-Min/Bloom baselines (the Sonata approach §5.2
//!   replaces), for the accuracy ablation.
//! * [`cost`] — the equipment/power cost model of Table 6.
//! * [`lua`] — the MoonGen Lua reference scripts counted in Table 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod lua;
pub mod ratectl;
pub mod sketch;
pub mod tester;

pub use cost::{CostModel, CostReport};
pub use ratectl::{RateControlMode, TimestampMode};
pub use tester::{MoonGen, MoonGenConfig};
