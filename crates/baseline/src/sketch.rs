//! Sketch-based query structures — the Sonata approach HyperTester's §5.2
//! replaces.
//!
//! "Sonata implements `distinct` with Bloom Filter and `reduce` with
//! Count-Min Sketch, which compromises accuracy inevitably."  These
//! reference implementations quantify that compromise: the ablation bench
//! runs the same workload through HyperTester's counter-based engine
//! (exact by construction) and through these sketches, and reports the
//! error the paper's design removes.

use ht_asic::hash::{hash_words, HashAlgo};

/// A Count-Min Sketch with `d` rows of `2^width_bits` counters.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width_mask: u64,
    rows: Vec<Vec<u64>>,
}

impl CountMinSketch {
    /// Creates a sketch with `depth` rows of `2^width_bits` counters.
    pub fn new(depth: usize, width_bits: u32) -> Self {
        assert!(depth > 0 && depth <= 8, "depth out of range");
        assert!((1..=24).contains(&width_bits));
        CountMinSketch {
            width_mask: (1 << width_bits) - 1,
            rows: vec![vec![0; 1 << width_bits]; depth],
        }
    }

    fn index(&self, row: usize, key: &[u64]) -> usize {
        // Row-seeded hash: prepend the row id so rows are independent.
        let mut seeded = Vec::with_capacity(key.len() + 1);
        seeded.push(row as u64 + 1);
        seeded.extend_from_slice(key);
        (hash_words(HashAlgo::Crc32, &seeded) & self.width_mask) as usize
    }

    /// Adds `value` for `key`.
    pub fn add(&mut self, key: &[u64], value: u64) {
        for row in 0..self.rows.len() {
            let idx = self.index(row, key);
            self.rows[row][idx] = self.rows[row][idx].saturating_add(value);
        }
    }

    /// The count estimate for `key` (never an underestimate).
    pub fn estimate(&self, key: &[u64]) -> u64 {
        (0..self.rows.len())
            .map(|row| self.rows[row][self.index(row, key)])
            .min()
            .expect("depth > 0")
    }

    /// Total memory in counters (for like-for-like comparisons).
    pub fn counters(&self) -> usize {
        self.rows.len() * self.rows[0].len()
    }
}

/// A Bloom filter with `k` hash functions over `2^width_bits` bits.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    width_mask: u64,
    k: usize,
    bits: Vec<bool>,
    /// Distinct insertions counted by the filter's membership test (the
    /// way a data-plane `distinct` uses it): incremented when the key was
    /// not already present.
    pub distinct_estimate: u64,
}

impl BloomFilter {
    /// Creates a filter with `2^width_bits` bits and `k` hash functions.
    pub fn new(width_bits: u32, k: usize) -> Self {
        assert!((1..=28).contains(&width_bits));
        assert!(k > 0 && k <= 8);
        BloomFilter {
            width_mask: (1 << width_bits) - 1,
            k,
            bits: vec![false; 1 << width_bits],
            distinct_estimate: 0,
        }
    }

    fn positions(&self, key: &[u64]) -> impl Iterator<Item = usize> + '_ {
        let h1 = hash_words(HashAlgo::Crc32, key);
        let h2 = hash_words(HashAlgo::Crc32c, key) | 1;
        let mask = self.width_mask;
        (0..self.k).map(move |i| ((h1.wrapping_add(h2.wrapping_mul(i as u64))) & mask) as usize)
    }

    /// True when the key *may* have been inserted (false positives
    /// possible, false negatives not).
    pub fn contains(&self, key: &[u64]) -> bool {
        self.positions(key).all(|p| self.bits[p])
    }

    /// Inserts a key; bumps the distinct estimate when it looked new.
    pub fn insert(&mut self, key: &[u64]) {
        if !self.contains(key) {
            self.distinct_estimate += 1;
        }
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn cms_never_underestimates() {
        let mut cms = CountMinSketch::new(3, 10);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for i in 0..5_000u64 {
            let key = i % 700;
            cms.add(&[key], 1);
            *oracle.entry(key).or_insert(0) += 1;
        }
        for (k, &truth) in &oracle {
            assert!(cms.estimate(&[*k]) >= truth, "underestimate for {k}");
        }
    }

    #[test]
    fn cms_overestimates_under_pressure() {
        // 50k keys into 3×1024 counters must collide heavily.
        let mut cms = CountMinSketch::new(3, 10);
        for i in 0..50_000u64 {
            cms.add(&[i], 1);
        }
        let overestimated = (0..1_000u64).filter(|&k| cms.estimate(&[k]) > 1).count();
        assert!(overestimated > 500, "only {overestimated} overestimates");
    }

    #[test]
    fn cms_is_exact_when_oversized() {
        let mut cms = CountMinSketch::new(4, 16);
        for i in 0..100u64 {
            cms.add(&[i], i + 1);
        }
        for i in 0..100u64 {
            assert_eq!(cms.estimate(&[i]), i + 1);
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut bf = BloomFilter::new(14, 4);
        for i in 0..2_000u64 {
            bf.insert(&[i]);
        }
        for i in 0..2_000u64 {
            assert!(bf.contains(&[i]), "false negative for {i}");
        }
    }

    #[test]
    fn bloom_undercounts_distinct_under_pressure() {
        // 60k distinct keys into 2^14 bits: the filter saturates and the
        // distinct estimate falls short of the truth.
        let mut bf = BloomFilter::new(14, 4);
        for i in 0..60_000u64 {
            bf.insert(&[i]);
        }
        assert!(
            bf.distinct_estimate < 55_000,
            "estimate {} too close to truth",
            bf.distinct_estimate
        );
    }

    #[test]
    fn bloom_is_near_exact_when_oversized() {
        let mut bf = BloomFilter::new(20, 4);
        for i in 0..1_000u64 {
            bf.insert(&[i]);
            bf.insert(&[i]); // duplicates do not inflate the estimate
        }
        assert_eq!(bf.distinct_estimate, 1_000);
    }
}
