//! The MoonGen Lua reference scripts counted in Table 5.
//!
//! Each application of the expressibility comparison has a MoonGen-style
//! Lua implementation in `assets/`; the LoC counter applies the same rules
//! as for NTAPI and generated P4 (non-empty, non-comment lines — Lua
//! comments start with `--`).

/// Throughput testing (Table 3's task).
pub const THROUGHPUT: &str = include_str!("../assets/throughput.lua");
/// Delay testing (the Fig. 18 case study).
pub const DELAY: &str = include_str!("../assets/delay.lua");
/// IP scanning.
pub const IP_SCAN: &str = include_str!("../assets/ipscan.lua");
/// SYN-flood attack emulation (the Table 8 case study).
pub const SYN_FLOOD: &str = include_str!("../assets/synflood.lua");

/// Counts non-empty, non-comment Lua lines.
pub fn lua_loc(source: &str) -> usize {
    source.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with("--")).count()
}

/// `(application, script, loc)` rows for the Table 5 bench.
pub fn all_scripts() -> [(&'static str, &'static str, usize); 4] {
    [
        ("Throughput Testing", THROUGHPUT, lua_loc(THROUGHPUT)),
        ("Delay Testing", DELAY, lua_loc(DELAY)),
        ("IP Scanning", IP_SCAN, lua_loc(IP_SCAN)),
        ("SYN Flood Attack", SYN_FLOOD, lua_loc(SYN_FLOOD)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_are_in_table5_territory() {
        // Table 5 reports 43/71/48/63 — the reproduction's scripts land in
        // the same band (3×–7× the NTAPI size).
        for (app, _, loc) in all_scripts() {
            assert!((40..=75).contains(&loc), "{app}: {loc} LoC");
        }
    }

    #[test]
    fn comment_lines_are_not_counted() {
        assert_eq!(lua_loc("-- only a comment\n\nlocal x = 1\n"), 1);
    }
}
