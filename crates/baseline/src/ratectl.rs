//! Rate-control and timestamping error models of the software baseline.
//!
//! Fig. 11 of the paper shows MoonGen's inter-departure errors (even with
//! the NIC's *hardware* rate-control function) more than an order of
//! magnitude above HyperTester's.  The reproduction models the two
//! documented mechanisms behind that gap:
//!
//! * **Hardware rate control** — NIC schedulers insert inter-frame gaps
//!   with DMA/arbitration noise of order 100 ns (vs HyperTester's ≈6.4 ns
//!   quantization), modeled as Gaussian jitter on each gap.
//! * **Software rate control** — CPU busy-wait pacing adds scheduler
//!   noise of order a microsecond plus rare multi-microsecond hiccups,
//!   the long tail that blows up RMSE relative to MAE.
//!
//! Fig. 18's delay case study compares timestamping paths; the same module
//! provides those error models: NIC/MAC hardware stamps are accurate to
//! tens of nanoseconds, HyperTester's P4-pipeline stamps add a small
//! constant, CPU (MoonGen software) stamps add microsecond-scale noise —
//! "MoonGen-SW … deviates from the HW results by over 3×".
//!
//! All constants are calibrated to reproduce the paper's *ratios*, and are
//! flagged as calibrated in DESIGN.md.

use ht_asic::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// How the software tester paces packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateControlMode {
    /// The NIC's hardware rate-control function (the configuration the
    /// paper benchmarks MoonGen in).
    Hardware,
    /// CPU busy-wait pacing.
    Software,
}

/// Gaussian standard deviation of hardware-paced inter-departure gaps.
pub const HW_RC_SIGMA_PS: f64 = 120_000.0; // 120 ns
/// Gaussian standard deviation of software-paced gaps.
pub const SW_RC_SIGMA_PS: f64 = 900_000.0; // 900 ns
/// Probability of a scheduler hiccup per packet under software pacing.
pub const SW_HICCUP_PROB: f64 = 0.001;
/// Magnitude of a scheduler hiccup.
pub const SW_HICCUP_PS: u64 = 30_000_000; // 30 µs

/// Draws one inter-departure gap for a configured `target` gap, in ps.
/// The gap never shrinks below `wire_floor` (back-to-back frames).
pub fn draw_gap(
    mode: RateControlMode,
    target: SimTime,
    wire_floor: SimTime,
    rng: &mut StdRng,
) -> SimTime {
    let noisy = match mode {
        RateControlMode::Hardware => target as f64 + gaussian(rng) * HW_RC_SIGMA_PS,
        RateControlMode::Software => {
            let mut g = target as f64 + gaussian(rng) * SW_RC_SIGMA_PS;
            if rng.gen_bool(SW_HICCUP_PROB) {
                g += SW_HICCUP_PS as f64;
            }
            g
        }
    };
    (noisy.max(0.0) as SimTime).max(wire_floor)
}

/// Where a measurement timestamp is taken (Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestampMode {
    /// NIC (MoonGen) or MAC (HyperTester) hardware stamp.
    Hardware,
    /// HyperTester's P4-pipeline stamp: a small constant pipeline offset
    /// with nanosecond jitter.
    HyperTesterPipeline,
    /// MoonGen's CPU stamp: PCIe + driver + userspace latency, with
    /// microsecond jitter.
    MoonGenCpu,
}

/// Offset + jitter added to a true event time by a timestamping path.
/// Returns picoseconds to *add* to the true time.
pub fn timestamp_error(mode: TimestampMode, rng: &mut StdRng) -> SimTime {
    match mode {
        // ±40 ns uniform (PHY/MAC pipeline alignment).
        TimestampMode::Hardware => rng.gen_range(0..80_000),
        // ~150 ns pipeline offset, ±30 ns.
        TimestampMode::HyperTesterPipeline => 150_000 + rng.gen_range(0..60_000),
        // ~2 µs PCIe+driver offset, ±1.5 µs.
        TimestampMode::MoonGenCpu => 2_000_000 + rng.gen_range(0..3_000_000),
    }
}

/// Box–Muller standard normal draw.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_stats::ErrorMetrics;
    use rand::SeedableRng;

    fn gaps(mode: RateControlMode, target: SimTime, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n).map(|_| draw_gap(mode, target, 6_720, &mut rng) as f64 / 1000.0).collect()
    }

    #[test]
    fn hardware_mode_errors_are_order_100ns() {
        let g = gaps(RateControlMode::Hardware, 10_000_000, 20_000); // 10 µs target
        let m = ErrorMetrics::against_target(&g, 10_000.0).unwrap();
        assert!((50.0..300.0).contains(&m.mae), "MAE {} ns", m.mae);
        assert!((m.mean - 10_000.0).abs() < 10.0, "mean {}", m.mean);
    }

    #[test]
    fn software_mode_is_another_order_worse_with_heavy_tail() {
        let hw = gaps(RateControlMode::Hardware, 10_000_000, 20_000);
        let sw = gaps(RateControlMode::Software, 10_000_000, 20_000);
        let mh = ErrorMetrics::against_target(&hw, 10_000.0).unwrap();
        let ms = ErrorMetrics::against_target(&sw, 10_000.0).unwrap();
        assert!(ms.mae > mh.mae * 4.0, "sw {} vs hw {}", ms.mae, mh.mae);
        // Hiccups give software pacing an RMSE well above its MAE.
        assert!(ms.rmse > ms.mae * 1.3, "rmse {} mae {}", ms.rmse, ms.mae);
    }

    #[test]
    fn gaps_never_undershoot_the_wire_floor() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let g = draw_gap(RateControlMode::Hardware, 7_000, 6_720, &mut rng);
            assert!(g >= 6_720);
        }
    }

    #[test]
    fn timestamp_error_ordering_matches_fig18() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut avg = |mode| -> f64 {
            (0..5_000).map(|_| timestamp_error(mode, &mut rng) as f64).sum::<f64>() / 5_000.0
        };
        let hw = avg(TimestampMode::Hardware);
        let ht_sw = avg(TimestampMode::HyperTesterPipeline);
        let mg_sw = avg(TimestampMode::MoonGenCpu);
        assert!(hw < ht_sw, "hw {hw} >= ht pipeline {ht_sw}");
        // "MoonGen-SW … deviates from the HW results by over 3x".
        assert!(mg_sw > 3.0 * (hw + ht_sw), "mg {mg_sw}");
    }
}
