-- MoonGen SYN-flood emulation script (Table 5 baseline).
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local stats  = require "stats"

local PKT_SIZE = 64

function configure(parser)
    parser:argument("dev", "Devices to transmit from."):args("+"):convert(tonumber)
    parser:option("-t --target", "Target IP."):default("10.0.0.80")
    parser:option("-a --agents", "Emulated agent count."):default(65536):convert(tonumber)
    return parser:parse()
end

function master(args)
    for i, port in ipairs(args.dev) do
        local dev = device.config{port = port, txQueues = 1}
        device.waitForLinks()
        mg.startTask("floodSlave", dev:getTxQueue(0), args.target, args.agents)
    end
    mg.waitForTasks()
end

function floodSlave(queue, target, agents)
    local mempool = memory.createMemPool(function(buf)
        buf:getTcpPacket():fill{
            ethSrc = queue, ethDst = "02:00:00:00:00:02",
            ip4Dst = target, tcpDst = 80,
            tcpSyn = 1, tcpSeqNumber = 1, tcpWindow = 8192,
            pktLength = PKT_SIZE
        }
    end)
    local bufs = mempool:bufArray()
    local baseIP = parseIPAddress("1.0.0.1")
    local basePort = 1024
    local counter = 0
    local txCtr = stats:newDevTxCounter(queue.dev, "plain")
    while mg.running() do
        bufs:alloc(PKT_SIZE)
        for i, buf in ipairs(bufs) do
            local pkt = buf:getTcpPacket()
            pkt.ip4.src:set(baseIP + (counter % agents))
            pkt.tcp:setSrcPort(basePort + (counter % 64511))
            counter = counter + 1
        end
        bufs:offloadTcpChecksums()
        queue:send(bufs)
        txCtr:update()
    end
    txCtr:finalize()
end
