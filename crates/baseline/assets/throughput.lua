-- MoonGen throughput-testing script (Table 5 baseline).
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local stats  = require "stats"

local PKT_SIZE = 64

function configure(parser)
    parser:argument("txDev", "Device to transmit from."):convert(tonumber)
    parser:argument("rxDev", "Device to receive on."):convert(tonumber)
    parser:option("-r --rate", "Transmit rate in Mbit/s."):default(10000):convert(tonumber)
    return parser:parse()
end

function master(args)
    local txDev = device.config{port = args.txDev, txQueues = 1}
    local rxDev = device.config{port = args.rxDev, rxQueues = 1}
    device.waitForLinks()
    txDev:getTxQueue(0):setRate(args.rate)
    mg.startTask("txSlave", txDev:getTxQueue(0))
    mg.startTask("rxSlave", rxDev:getRxQueue(0))
    mg.waitForTasks()
end

function txSlave(queue)
    local mempool = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
            ethSrc = queue, ethDst = "02:00:00:00:00:02",
            ip4Src = "10.0.0.1", ip4Dst = "10.0.0.2",
            udpSrc = 1, udpDst = 1,
            pktLength = PKT_SIZE
        }
    end)
    local bufs = mempool:bufArray()
    local txCtr = stats:newDevTxCounter(queue.dev, "plain")
    while mg.running() do
        bufs:alloc(PKT_SIZE)
        bufs:offloadUdpChecksums()
        queue:send(bufs)
        txCtr:update()
    end
    txCtr:finalize()
end

function rxSlave(queue)
    local bufs = memory.bufArray()
    local rxCtr = stats:newDevRxCounter(queue.dev, "plain")
    while mg.running() do
        local rx = queue:recv(bufs)
        rxCtr:update()
        bufs:free(rx)
    end
    rxCtr:finalize()
end
