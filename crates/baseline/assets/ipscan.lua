-- MoonGen IP-scanning script (Table 5 baseline): sweep destination
-- addresses and record responders.
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local stats  = require "stats"

local PKT_SIZE  = 64
local BASE_IP   = parseIPAddress("10.1.0.0")
local NUM_ADDRS = 65536

function configure(parser)
    parser:argument("txDev", "Transmit device."):convert(tonumber)
    parser:argument("rxDev", "Receive device."):convert(tonumber)
    return parser:parse()
end

function master(args)
    local txDev = device.config{port = args.txDev, txQueues = 1}
    local rxDev = device.config{port = args.rxDev, rxQueues = 1}
    device.waitForLinks()
    mg.startTask("scanSlave", txDev:getTxQueue(0))
    mg.startTask("captureSlave", rxDev:getRxQueue(0))
    mg.waitForTasks()
end

function scanSlave(queue)
    local mempool = memory.createMemPool(function(buf)
        buf:getTcpPacket():fill{
            ip4Src = "10.0.0.1", tcpDst = 80, tcpSyn = 1,
            pktLength = PKT_SIZE
        }
    end)
    local bufs = mempool:bufArray()
    local counter = 0
    while mg.running() do
        bufs:alloc(PKT_SIZE)
        for i, buf in ipairs(bufs) do
            local pkt = buf:getTcpPacket()
            pkt.ip4.dst:set(BASE_IP + (counter % NUM_ADDRS))
            counter = counter + 1
        end
        bufs:offloadTcpChecksums()
        queue:send(bufs)
    end
end

function captureSlave(queue)
    local bufs = memory.bufArray()
    local seen = {}
    while mg.running() do
        local rx = queue:recv(bufs)
        for i = 1, rx do
            local pkt = bufs[i]:getTcpPacket()
            if pkt.tcp:getSyn() == 1 and pkt.tcp:getAck() == 1 then
                seen[pkt.ip4.src:getString()] = true
            end
        end
        bufs:free(rx)
    end
end
