-- MoonGen delay-testing script (Table 5 baseline): software and hardware
-- timestamping of a device under test.
local mg     = require "moongen"
local memory = require "memory"
local device = require "device"
local ts     = require "timestamping"
local hist   = require "histogram"
local timer  = require "timer"
local stats  = require "stats"

local PKT_SIZE = 124
local RATE_PPS = 1000

function configure(parser)
    parser:argument("txDev", "Transmit device."):convert(tonumber)
    parser:argument("rxDev", "Receive device."):convert(tonumber)
    parser:option("-m --mode", "hw or sw timestamps."):default("hw")
    parser:option("-n --num", "Number of probes."):default(100000):convert(tonumber)
    return parser:parse()
end

function master(args)
    local txDev = device.config{port = args.txDev, txQueues = 2}
    local rxDev = device.config{port = args.rxDev, rxQueues = 2}
    device.waitForLinks()
    if args.mode == "hw" then
        mg.startTask("hwTimestamper", txDev:getTxQueue(1), rxDev:getRxQueue(1), args.num)
    else
        mg.startTask("swTimestamper", txDev:getTxQueue(1), rxDev:getRxQueue(1), args.num)
    end
    mg.waitForTasks()
end

function hwTimestamper(txQueue, rxQueue, num)
    local timestamper = ts:newTimestamper(txQueue, rxQueue)
    local h = hist:new()
    local rateLimit = timer:new(1 / RATE_PPS)
    for i = 1, num do
        if not mg.running() then break end
        h:update(timestamper:measureLatency(PKT_SIZE))
        rateLimit:wait()
        rateLimit:reset()
    end
    h:print()
    h:save("latency-hw.csv")
end

function swTimestamper(txQueue, rxQueue, num)
    local mempool = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{pktLength = PKT_SIZE}
    end)
    local bufs = mempool:bufArray(1)
    local rxBufs = memory.bufArray(128)
    local h = hist:new()
    for i = 1, num do
        if not mg.running() then break end
        bufs:alloc(PKT_SIZE)
        local txTime = mg.getTime()
        txQueue:send(bufs)
        local rx = rxQueue:tryRecv(rxBufs, 1000)
        if rx > 0 then
            local rxTime = mg.getTime()
            h:update((rxTime - txTime) * 10^9)
            rxBufs:freeAll()
        end
    end
    h:print()
    h:save("latency-sw.csv")
end
