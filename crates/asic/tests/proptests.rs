//! Property-based tests for the ASIC simulator's core invariants.

use ht_asic::action::{ActionSet, PrimitiveOp};
use ht_asic::phv::{fields, mask_for, FieldId, FieldTable};
use ht_asic::register::{
    Cmp, CondExpr, RegisterFile, SaluCond, SaluOperand, SaluOutput, SaluOutputSrc, SaluProgram,
    SaluUpdate,
};
use ht_asic::sim::{Outbox, World};
use ht_asic::switch::{Switch, CPU_PORT};
use ht_asic::table::{MatchKey, MatchKind, Table};
use ht_packet::wire::gbps;
use ht_packet::{Ipv4Address, PacketBuilder};
use proptest::prelude::*;

proptest! {
    /// PHV writes always respect field widths, for every standard field.
    #[test]
    fn phv_values_never_exceed_width(field in 0u16..fields::STANDARD_COUNT, value in any::<u64>()) {
        let t = FieldTable::new();
        let mut phv = t.new_phv();
        let id = FieldId(field);
        phv.set(&t, id, value);
        prop_assert!(phv.get(id) <= mask_for(t.width(id)));
        prop_assert_eq!(phv.get(id), value & mask_for(t.width(id)));
    }

    /// SALU fetch-add over arbitrary sequences equals a software counter
    /// that wraps at the register width.
    #[test]
    fn salu_counter_matches_oracle(width in 4u32..32, ops in 1usize..200) {
        let mut t = FieldTable::new();
        let dst = t.intern("meta.out", 32);
        let mut phv = t.new_phv();
        let mut rf = RegisterFile::new();
        let r = rf.alloc("ctr", width, 4);
        let prog = SaluProgram::fetch_add(dst);
        let mask = mask_for(width);
        let mut oracle: u64 = 0;
        for _ in 0..ops {
            let exported = rf.execute(r, 1, &prog, &mut phv, &t);
            prop_assert_eq!(exported, oracle);
            oracle = (oracle + 1) & mask;
        }
        prop_assert_eq!(rf.array(r).cp_read(1), oracle);
    }

    /// The guarded-increment SALU program (the FIFO rear guard) never lets
    /// the register exceed its bound.
    #[test]
    fn guarded_increment_never_exceeds_bound(bound in 1u64..50, ops in 1usize..200) {
        let mut t = FieldTable::new();
        let flag = t.intern("meta.flag", 1);
        let mut phv = t.new_phv();
        let mut rf = RegisterFile::new();
        let r = rf.alloc("rear", 32, 1);
        let prog = SaluProgram {
            condition: Some(SaluCond {
                expr: CondExpr::Reg,
                cmp: Cmp::Lt,
                rhs: SaluOperand::Const(bound),
            }),
            on_true: SaluUpdate::Add(SaluOperand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst: flag, src: SaluOutputSrc::CondFlag }),
        };
        for _ in 0..ops {
            rf.execute(r, 0, &prog, &mut phv, &t);
            prop_assert!(rf.array(r).cp_read(0) <= bound);
        }
        prop_assert_eq!(rf.array(r).cp_read(0), bound.min(ops as u64));
    }

    /// Ternary tables with a catch-all always hit something, and the
    /// highest-priority matching entry wins regardless of insert order.
    #[test]
    fn ternary_priority_invariant(values in prop::collection::vec(0u64..1024, 1..20), probe in 0u64..1024) {
        let ft = FieldTable::new();
        let mut tbl = Table::new("t", MatchKind::Ternary, vec![fields::TCP_DPORT], 64, ActionSet::nop());
        // Catch-all at priority 0.
        tbl.insert(MatchKey::Ternary(vec![(0, 0)]),
                   ActionSet::new("all", vec![]), 0).unwrap();
        // Exact-value entries at priority = value (so the expected winner is
        // deterministic even with duplicates).
        for &v in &values {
            tbl.insert(MatchKey::Ternary(vec![(v, 0x3ff)]),
                       ActionSet::new(&format!("v{v}"), vec![]), 10 + v as i32).unwrap();
        }
        let mut phv = ft.new_phv();
        phv.set(&ft, fields::TCP_DPORT, probe);
        let hit = tbl.lookup(&phv).unwrap();
        if values.contains(&probe) {
            prop_assert_eq!(&hit.name, &format!("v{probe}"));
        } else {
            prop_assert_eq!(&hit.name, "all");
        }
    }

    /// MAC serializations never overlap and always take exactly the wire
    /// time, for arbitrary arrival patterns.
    #[test]
    fn mac_serializations_never_overlap(
        arrivals in prop::collection::vec(0u64..1_000_000u64, 1..50),
        len in 64usize..1518,
    ) {
        let mut mac = ht_asic::mac::MacPort::new(gbps(40));
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let wire = ht_packet::wire::wire_time_ps(len, gbps(40));
        let mut prev_end = 0u64;
        for &a in &arrivals {
            let (s, e) = mac.transmit(len, a);
            prop_assert!(s >= prev_end, "overlap: start {s} < prev end {prev_end}");
            prop_assert!(s >= a);
            prop_assert_eq!(e - s, wire);
            prev_end = e;
        }
    }

    /// A forwarding switch transmits every injected packet exactly once and
    /// departure times are strictly monotone per port.
    #[test]
    fn switch_conserves_packets(n in 1usize..40, len in 64usize..512) {
        let mut sw = Switch::new("sw", 9);
        sw.add_port(0, gbps(100));
        sw.trace.tx = true;
        let tbl = Table::new("fwd", MatchKind::Exact, vec![fields::IG_PORT], 4,
            ActionSet::new("to0", vec![PrimitiveOp::SetEgressPort(0)]));
        sw.ingress.push_table(tbl);

        let frame = PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 1)
            .frame_len(len)
            .build();
        let mut out = Outbox::default();
        for i in 0..n {
            let pkt = sw.make_packet(frame.clone());
            sw.process(pkt, CPU_PORT, i as u64 * 1_000, &mut out);
        }
        prop_assert_eq!(out.emits.len(), n);
        prop_assert_eq!(sw.counters.tx_frames, n as u64);
        let times: Vec<u64> = sw.log.tx.iter().map(|r| r.at).collect();
        for w in times.windows(2) {
            prop_assert!(w[1] > w[0], "departures not monotone");
        }
    }

    /// World events never run backwards in time, even with random wakes.
    #[test]
    fn world_time_is_monotone(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        struct Nop;
        impl ht_asic::Device for Nop {
            fn name(&self) -> &str { "nop" }
            fn rx(&mut self, _: u16, _: ht_asic::SimPacket, _: u64, _: &mut Outbox) {}
            fn as_any(&self) -> &dyn std::any::Any { self }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
        }
        let mut w = World::builder().seed(3).build().unwrap();
        let d = w.add_device(Box::new(Nop));
        for (i, &t) in times.iter().enumerate() {
            w.schedule_wake(d, i as u64, t);
        }
        let mut prev = 0;
        while w.step() {
            prop_assert!(w.now() >= prev);
            prev = w.now();
        }
    }
}
