//! Property test: the hierarchical timer wheel dequeues in exactly the
//! same `(at, seq)` order as the seed `BinaryHeap` event queue, under
//! arbitrary interleavings of pushes (near, far, past-cursor, and beyond
//! the wheel horizon) and pops.

use ht_asic::timerwheel::TimerWheel;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scripted queue operation: `shift` spreads the arrival times across
/// every wheel level (and past the 2^48 ps horizon into the overflow heap).
fn apply_ops(ops: &[(u8, u64, u8)]) {
    let mut wheel = TimerWheel::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for &(op, raw, shift) in ops {
        if op % 4 == 3 {
            let expect = heap.pop().map(|Reverse(e)| e);
            assert_eq!(wheel.peek_min_at(), expect.map(|e| e.0), "peek diverged");
            assert_eq!(wheel.pop(), expect, "pop diverged");
        } else {
            let at = raw & ((1u64 << (shift % 60)) - 1).max(1);
            seq += 1;
            wheel.push(at, seq, seq);
            heap.push(Reverse((at, seq, seq)));
        }
    }
    // Drain the remainder: full order must agree.
    while let Some(Reverse(e)) = heap.pop() {
        assert_eq!(wheel.pop(), Some(e), "drain diverged");
    }
    assert!(wheel.is_empty());
    assert_eq!(wheel.pop(), None);
}

proptest! {
    /// Wheel and heap agree on every pop across random interleavings.
    #[test]
    fn wheel_matches_heap_order(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u8>()), 1..400),
    ) {
        apply_ops(&ops);
    }
}
