//! Behavioral tests for ASIC corners the unit tests don't reach: bitwise
//! action ops, PHV/byte round-trip idempotence, replica independence,
//! egress drops, and digest ordering.

use ht_asic::action::{ActionSet, ExecCtx, PrimitiveOp};
use ht_asic::digest::DigestId;
use ht_asic::parser;
use ht_asic::phv::{fields, FieldTable};
use ht_asic::register::{Cmp, RegisterFile};
use ht_asic::sim::Outbox;
use ht_asic::switch::{Switch, CPU_PORT};
use ht_asic::table::{Gateway, MatchKind, Table};
use ht_packet::tcp::TcpFlags;
use ht_packet::wire::gbps;
use ht_packet::{Ipv4Address, PacketBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exec(ops: Vec<PrimitiveOp>, setup: &[(ht_asic::FieldId, u64)]) -> ht_asic::Phv {
    let ft = FieldTable::new();
    let mut phv = ft.new_phv();
    for &(f, v) in setup {
        phv.set(&ft, f, v);
    }
    let mut regs = RegisterFile::new();
    let mut rng = StdRng::seed_from_u64(1);
    let mut digests = Vec::new();
    let mut ctx =
        ExecCtx { table: &ft, regs: &mut regs, rng: &mut rng, digests: &mut digests, now: 0 };
    ht_asic::action::execute(&ActionSet::new("t", ops), &mut phv, &mut ctx);
    phv
}

#[test]
fn bitwise_and_or_shift_ops() {
    let p = exec(
        vec![
            PrimitiveOp::AndConst { dst: fields::TCP_SPORT, value: 0xff00 },
            PrimitiveOp::OrConst { dst: fields::TCP_SPORT, value: 0x000f },
            PrimitiveOp::ShiftRight { dst: fields::TCP_DPORT, bits: 4 },
        ],
        &[(fields::TCP_SPORT, 0xabcd), (fields::TCP_DPORT, 0x1230)],
    );
    assert_eq!(p.get(fields::TCP_SPORT), 0xab0f);
    assert_eq!(p.get(fields::TCP_DPORT), 0x0123);
}

#[test]
fn shift_by_64_or_more_clears() {
    let p = exec(
        vec![PrimitiveOp::ShiftRight { dst: fields::IG_TS, bits: 64 }],
        &[(fields::IG_TS, u64::MAX)],
    );
    assert_eq!(p.get(fields::IG_TS), 0);
}

#[test]
fn sub_field_wraps_at_field_width() {
    let p = exec(
        vec![PrimitiveOp::SubField { dst: fields::TCP_SPORT, src: fields::TCP_DPORT }],
        &[(fields::TCP_SPORT, 5), (fields::TCP_DPORT, 10)],
    );
    // 5 − 10 wraps at 16 bits.
    assert_eq!(p.get(fields::TCP_SPORT), 0xfffb);
}

#[test]
fn mcast_replicas_are_independent_phvs() {
    // An egress edit on one replica must not leak into its siblings: the
    // editor writes a per-port value keyed on RID.
    let mut sw = Switch::new("sw", 1);
    for p in 0..3 {
        sw.add_port(p, gbps(100));
    }
    sw.mcast
        .set_group(1, (0..3).map(|p| ht_asic::tm::McastMember { port: p, rid: p + 1 }).collect());
    let to_grp = Table::new(
        "mc",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new("grp", vec![PrimitiveOp::SetMcastGroup(1)]),
    );
    sw.ingress.push_table(to_grp);
    // Egress: dport = 1000 + rid.
    let mut edit = Table::new("edit", MatchKind::Index, vec![fields::RID], 8, ActionSet::nop());
    for rid in 1..=3u64 {
        edit.insert(
            ht_asic::table::MatchKey::Index(rid),
            ActionSet::new(
                "",
                vec![
                    PrimitiveOp::SetConst { dst: fields::UDP_DPORT, value: 1000 },
                    PrimitiveOp::AddField { dst: fields::UDP_DPORT, src: fields::RID },
                ],
            ),
            0,
        )
        .unwrap();
    }
    sw.egress.push_table(edit);

    let pkt = sw.make_packet(
        PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 1)
            .frame_len(64)
            .build(),
    );
    let mut out = Outbox::default();
    sw.process(pkt, CPU_PORT, 0, &mut out);
    assert_eq!(out.emits.len(), 3);
    let mut seen: Vec<(u16, u64)> =
        out.emits.iter().map(|(port, p, _)| (*port, p.phv.get(fields::UDP_DPORT))).collect();
    seen.sort_unstable();
    assert_eq!(seen, vec![(0, 1001), (1, 1002), (2, 1003)]);
}

#[test]
fn egress_drop_counts_and_suppresses_emission() {
    let mut sw = Switch::new("sw", 1);
    sw.add_port(0, gbps(100));
    let fwd = Table::new(
        "fwd",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new("to0", vec![PrimitiveOp::SetEgressPort(0)]),
    );
    sw.ingress.push_table(fwd);
    let drop_big = Table::new(
        "drop_big",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new("drop", vec![PrimitiveOp::Drop]),
    )
    .with_gateway(Gateway { field: fields::PKT_LEN, cmp: Cmp::Gt, value: 100 });
    sw.egress.push_table(drop_big);

    let small = sw.make_packet(
        PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 1)
            .frame_len(64)
            .build(),
    );
    let big = sw.make_packet(
        PacketBuilder::new()
            .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
            .udp(1, 1)
            .frame_len(512)
            .build(),
    );
    let mut out = Outbox::default();
    sw.process(small, 5, 0, &mut out);
    sw.process(big, 5, 1_000_000, &mut out);
    assert_eq!(out.emits.len(), 1);
    assert_eq!(sw.counters.egress_drops, 1);
    assert_eq!(sw.counters.tx_frames, 1);
}

#[test]
fn digests_preserve_generation_order() {
    let mut sw = Switch::new("sw", 1);
    sw.add_port(0, gbps(100));
    let tbl = Table::new(
        "dig",
        MatchKind::Exact,
        vec![fields::IG_PORT],
        4,
        ActionSet::new(
            "digest",
            vec![
                PrimitiveOp::Digest { id: DigestId(3), fields: vec![fields::UDP_SPORT] },
                PrimitiveOp::SetEgressPort(0),
            ],
        ),
    );
    sw.ingress.push_table(tbl);
    for sport in [5u16, 9, 2] {
        let pkt = sw.make_packet(
            PacketBuilder::new()
                .ipv4(Ipv4Address::new(1, 0, 0, 1), Ipv4Address::new(1, 0, 0, 2))
                .udp(sport, 1)
                .frame_len(64)
                .build(),
        );
        let mut out = Outbox::default();
        sw.process(pkt, 5, 0, &mut out);
    }
    let values: Vec<u64> = sw.digests.iter().map(|d| d.values[0]).collect();
    assert_eq!(values, vec![5, 9, 2]);
    assert!(sw.digests.iter().all(|d| d.id == DigestId(3)));
}

proptest! {
    /// deparse(parse(frame)) is the identity on well-formed frames, and
    /// parse(deparse(phv)) reproduces the PHV's header fields — the
    /// pipeline boundary loses nothing.
    #[test]
    fn parse_deparse_idempotence(
        sport in any::<u16>(), dport in any::<u16>(),
        seq in any::<u32>(), flags in 0u8..0x40,
        len in 64usize..512,
    ) {
        let ft = FieldTable::new();
        let frame = PacketBuilder::new()
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .tcp(sport, dport, seq, 0, TcpFlags(flags))
            .frame_len(len)
            .build();
        let phv = parser::parse(&ft, &frame).unwrap();
        let mut bytes = frame.clone();
        parser::deparse(&ft, &phv, &mut bytes);
        prop_assert_eq!(&frame, &bytes, "untouched deparse must be identity");

        let phv2 = parser::parse(&ft, &bytes).unwrap();
        for f in [fields::TCP_SPORT, fields::TCP_DPORT, fields::TCP_SEQ,
                  fields::TCP_FLAGS, fields::IPV4_SRC, fields::IPV4_DST,
                  fields::PKT_LEN] {
            prop_assert_eq!(phv.get(f), phv2.get(f));
        }
    }

    /// Gateways behave identically to their comparison semantics for all
    /// operators and operand pairs.
    #[test]
    fn gateway_semantics(lhs in 0u64..1000, rhs in 0u64..1000, op in 0usize..6) {
        let ft = FieldTable::new();
        let mut phv = ft.new_phv();
        phv.set(&ft, fields::TCP_WINDOW, lhs);
        let cmps = [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge];
        let gw = Gateway { field: fields::TCP_WINDOW, cmp: cmps[op], value: rhs };
        let expected = match cmps[op] {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
        };
        prop_assert_eq!(gw.eval(&phv), expected);
    }
}
