//! Partitioned runs must be bit-for-bit equal to the serial loop.
//!
//! The conservative-lookahead engine (`ht_asic::parallel`) promises that
//! device state, `WorldStats`, and event counts are identical at any
//! engine count.  These tests drive two fixtures — a multi-switch ring
//! with zero-delay tap branches (exercising group contraction), and a
//! recirculating timer-driven generator chain — at 1, 2, 4 and 8 engines,
//! plus a repeated-stress smoke test of the horizon protocol on a 3-hop
//! ring (the portable stand-in for a thread-sanitizer run: many
//! iterations, tiny lookahead, dense cross-engine traffic).

use ht_asic::phv::FieldTable;
use ht_asic::sim::{Device, LinkSpec, Outbox, SimThreads, World, WorldStats};
use ht_asic::time::SimTime;
use ht_asic::SimPacket;
use proptest::prelude::*;
use std::any::Any;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100000001b3)
}

/// Forwards every packet out port 1 after a fixed processing delay,
/// diverting every `taps_every`-th packet to port 2 instead.
struct Hop {
    name: String,
    proc: SimTime,
    taps_every: u64,
    count: u64,
    log: u64,
}

impl Hop {
    fn new(name: &str, proc: SimTime, taps_every: u64) -> Self {
        Hop { name: name.to_string(), proc, taps_every, count: 0, log: 0xcbf29ce484222325 }
    }
}

impl Device for Hop {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
        self.count += 1;
        self.log = fnv(self.log, now ^ u64::from(port) ^ pkt.uid);
        let dest =
            if self.taps_every > 0 && self.count.is_multiple_of(self.taps_every) { 2 } else { 1 };
        out.emit(dest, pkt, now + self.proc);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Terminal counter.
struct Tap {
    name: String,
    count: u64,
    log: u64,
}

impl Tap {
    fn new(name: &str) -> Self {
        Tap { name: name.to_string(), count: 0, log: 0xcbf29ce484222325 }
    }
}

impl Device for Tap {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, _out: &mut Outbox) {
        self.count += 1;
        self.log = fnv(self.log, now ^ u64::from(port) ^ pkt.uid);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Timer-driven generator: every wake emits one packet out port 0 and
/// reschedules itself until `left` runs out — the recirculating fixture
/// (its own state loops through the event queue).
struct Pulser {
    name: String,
    table: FieldTable,
    period: SimTime,
    left: u64,
    sent: u64,
}

impl Pulser {
    fn new(name: &str, period: SimTime, count: u64) -> Self {
        Pulser { name: name.to_string(), table: FieldTable::new(), period, left: count, sent: 0 }
    }
}

impl Device for Pulser {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, _port: u16, _pkt: SimPacket, _now: SimTime, _out: &mut Outbox) {}

    fn wake(&mut self, token: u64, now: SimTime, out: &mut Outbox) {
        if self.left == 0 {
            return;
        }
        self.left -= 1;
        self.sent += 1;
        let pkt = SimPacket { phv: self.table.new_phv(), body: None, uid: self.sent };
        out.emit(0, pkt, now);
        if self.left > 0 {
            out.wake_at(token, now + self.period);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Everything a run can influence, for exact comparison.
#[derive(Debug, PartialEq, Eq)]
struct Summary {
    per_device: Vec<(u64, u64)>, // (count, log) or (sent, left)
    stats: WorldStats,
    now: SimTime,
    processed: Vec<u64>,
}

fn blank(table: &FieldTable, uid: u64) -> SimPacket {
    SimPacket { phv: table.new_phv(), body: None, uid }
}

/// A ring of `hops` forwarding devices with positive inter-hop delays,
/// each with a zero-delay tap branch (tap + hop contract into one group).
/// Runs twice (to `t_mid`, then `t_end`) so leftover events and channel
/// residue cross the run boundary.
fn run_ring(
    engines: usize,
    hops: usize,
    packets: u64,
    base_delay: SimTime,
    taps_every: u64,
    t_mid: SimTime,
    t_end: SimTime,
) -> Summary {
    let mut w = World::builder().partitions(SimThreads::Fixed(engines)).build().unwrap();
    let hop_ids: Vec<_> = (0..hops)
        .map(|i| {
            w.add_device(Box::new(Hop::new(&format!("h{i}"), 500 + i as u64 * 37, taps_every)))
        })
        .collect();
    let tap_ids: Vec<_> =
        (0..hops).map(|i| w.add_device(Box::new(Tap::new(&format!("t{i}"))))).collect();
    for i in 0..hops {
        let delay = base_delay + i as u64 * 111;
        w.link((hop_ids[i], 1), (hop_ids[(i + 1) % hops], 0), LinkSpec::new().delay(delay));
        w.link((hop_ids[i], 2), (tap_ids[i], 0), LinkSpec::new()); // zero-delay: same group
    }
    let table = FieldTable::new();
    for p in 0..packets {
        w.schedule_rx(hop_ids[(p % hops as u64) as usize], 0, blank(&table, p), p * 777);
    }
    let n1 = w.run_until(t_mid);
    let n2 = w.run_until(t_end);
    Summary {
        per_device: hop_ids
            .iter()
            .map(|&h| {
                let d = w.device::<Hop>(h);
                (d.count, d.log)
            })
            .chain(tap_ids.iter().map(|&t| {
                let d = w.device::<Tap>(t);
                (d.count, d.log)
            }))
            .collect(),
        stats: w.stats,
        now: w.now(),
        processed: vec![n1, n2],
    }
}

/// Pulser → hop chain → tap, all separated by positive-delay links: the
/// recirculating fixture (the pulser's own wake loop keeps the engine
/// busy between cross-engine packets).
fn run_chain(
    engines: usize,
    links: usize,
    pulses: u64,
    period: SimTime,
    t_end: SimTime,
) -> Summary {
    let mut w = World::builder().partitions(SimThreads::Fixed(engines)).build().unwrap();
    let p = w.add_device(Box::new(Pulser::new("gen", period, pulses)));
    let hops: Vec<_> =
        (0..links).map(|i| w.add_device(Box::new(Hop::new(&format!("h{i}"), 250, 0)))).collect();
    let t = w.add_device(Box::new(Tap::new("end")));
    let mut prev = (p, 0u16);
    for (i, &h) in hops.iter().enumerate() {
        w.link(prev, (h, 0), LinkSpec::new().delay(900 + i as u64 * 53));
        prev = (h, 1);
    }
    w.link(prev, (t, 0), LinkSpec::new().delay(1_200));
    w.schedule_wake(p, 7, 100);
    let n = w.run_until(t_end);
    let gen = w.device::<Pulser>(p);
    let mut per_device = vec![(gen.sent, gen.left)];
    per_device.extend(hops.iter().map(|&h| {
        let d = w.device::<Hop>(h);
        (d.count, d.log)
    }));
    let d = w.device::<Tap>(t);
    per_device.push((d.count, d.log));
    Summary { per_device, stats: w.stats, now: w.now(), processed: vec![n] }
}

#[test]
fn ring_fixture_is_engine_count_invariant() {
    let serial = run_ring(1, 4, 64, 2_000, 3, 60_000, 200_000);
    for engines in [2, 4, 8] {
        let par = run_ring(engines, 4, 64, 2_000, 3, 60_000, 200_000);
        assert_eq!(par, serial, "{engines} engines diverged from serial");
    }
    assert!(serial.stats.events > 0);
}

#[test]
fn chain_fixture_is_engine_count_invariant() {
    let serial = run_chain(1, 3, 200, 650, 400_000);
    for engines in [2, 4, 8] {
        let par = run_chain(engines, 3, 200, 650, 400_000);
        assert_eq!(par, serial, "{engines} engines diverged from serial");
    }
    // The whole pulse train made it through the chain.
    assert_eq!(serial.per_device[0], (200, 0));
    assert_eq!(serial.per_device.last().unwrap().0, 200);
}

/// Horizon-protocol smoke test: a 3-hop ring with tiny lookahead and
/// dense traffic, repeated many times at 3 engines.  Any unsafe horizon
/// advance or lost in-flight message shows up as a divergence from the
/// serial result in some iteration.
#[test]
fn horizon_protocol_stress_on_three_hop_ring() {
    let serial = run_ring(1, 3, 120, 1_000, 2, 30_000, 150_000);
    for rep in 0..30 {
        let par = run_ring(3, 3, 120, 1_000, 2, 30_000, 150_000);
        assert_eq!(par, serial, "iteration {rep} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary ring shapes: partitioned == serial for every engine count.
    #[test]
    fn partitioned_ring_matches_serial(
        hops in 2usize..6,
        packets in 1u64..48,
        base_delay in 800u64..40_000,
        taps_every in 0u64..4,
        t_mid in 10_000u64..80_000,
    ) {
        let t_end = t_mid + 120_000;
        let serial = run_ring(1, hops, packets, base_delay, taps_every, t_mid, t_end);
        for engines in [2, 4, 8] {
            let par = run_ring(engines, hops, packets, base_delay, taps_every, t_mid, t_end);
            prop_assert_eq!(&par, &serial, "{} engines diverged", engines);
        }
    }

    /// Arbitrary chains with a recirculating generator.
    #[test]
    fn partitioned_chain_matches_serial(
        links in 1usize..5,
        pulses in 1u64..120,
        period in 200u64..3_000,
    ) {
        let t_end = 100 + period * pulses + 50_000;
        let serial = run_chain(1, links, pulses, period, t_end);
        for engines in [2, 4, 8] {
            let par = run_chain(engines, links, pulses, period, t_end);
            prop_assert_eq!(&par, &serial, "{} engines diverged", engines);
        }
    }
}
