//! Tofino-calibrated timing model.
//!
//! Every constant here is calibrated to a number reported in the HyperTester
//! paper (§7.2–§7.3) so that the microbenchmarks reproduce the paper's
//! figures.  The decomposition into parser/pipeline/TM components follows
//! the RMT architecture; the *sums* are what the paper measures.

use crate::time::SimTime;

/// Fixed parser latency per pipeline pass.
pub const PARSER_LATENCY: SimTime = 40_000; // 40 ns
/// Fixed match-action pipeline latency (ingress or egress pass).
pub const PIPELINE_LATENCY: SimTime = 170_000; // 170 ns
/// Fixed deparser latency per pipeline pass.
pub const DEPARSER_LATENCY: SimTime = 40_000; // 40 ns
/// Traffic-manager transit latency for unicast packets.
pub const TM_UNICAST_LATENCY: SimTime = 30_000; // 30 ns

/// Multicast-engine base delay for 64-byte packets.
///
/// Fig. 15(a): "64-byte packets have about 389 ns multicast delay".
pub const MCAST_BASE_DELAY: SimTime = 389_000;
/// Multicast-engine delay growth per byte beyond 64.
///
/// Fig. 15(a): "the delay increases by about 65 ns when the packet size
/// rises to 1280 bytes" → 65 ns / 1216 B ≈ 53.5 ps/B.
pub const MCAST_DELAY_PER_BYTE_PS: u64 = 53;

/// Per-byte overhead of the recirculation path (on top of the 20-byte
/// external overhead a MAC would add, the recirc loop skips preamble
/// regeneration): calibrated so a 64-byte template re-arrives every 6.4 ns
/// at the 100 Gbps recirculation bandwidth (§5.1: "the rate control
/// precision … is around 6.4 ns on Tofino for 64-byte packets").
pub const RECIRC_OVERHEAD_BYTES: u64 = 16;

/// Recirculation-loop wire+MAC fixed latency, calibrated together with the
/// pipeline constants so a 64-byte template completes one accelerator loop
/// in 570 ns (Fig. 14a) — see [`recirc_rtt`].
pub const RECIRC_LOOP_FIXED: SimTime = 119_168;

/// Additional per-byte latency of a recirculation loop (cut-through, so only
/// a sliver of the serialization shows up in latency): calibrated so the RTT
/// stays below 590 ns at 1500 bytes (§7 result overview).
pub const RECIRC_LOOP_PER_BYTE_PS: u64 = 13;

/// Default bandwidth of the internal recirculation path.
///
/// §5.1: "Tofino could recirculate packets at a speed of no less than
/// 100 Gbps".
pub const RECIRC_BANDWIDTH_BPS: u64 = 100_000_000_000;

/// Jitter amplitude (half-width of a uniform distribution, in ps) on the
/// multicast engine delay.  Fig. 15(a) reports an RMSE below 4.5 ns on
/// inter-arrival times; a ±4 ns grant-granularity jitter lands there.
pub const MCAST_JITTER_PS: u64 = 4_000;

/// Jitter amplitude (half-width, ps) on a recirculation loop.  Fig. 14(a)
/// reports RTT RMSE under 5 ns for 10^6 loops.
pub const RECIRC_JITTER_PS: u64 = 4_000;

/// Time one packet occupies the recirculation path, i.e. the minimal
/// inter-arrival of consecutive template packets.
///
/// 64 B → (64 + 16) × 8 bit / 100 Gbps = 6.4 ns, the paper's rate-control
/// precision quantum.
pub fn recirc_occupancy(frame_len: usize) -> SimTime {
    let bits = (frame_len as u64 + RECIRC_OVERHEAD_BYTES) * 8;
    bits * crate::time::PS_PER_SEC / RECIRC_BANDWIDTH_BPS
}

/// Mean round-trip time of one accelerator loop (parser → ingress → TM →
/// egress → deparser → recirculation wire → back to parser) for a frame of
/// `frame_len` bytes.
///
/// Calibrated: 64 B → 570 ns (Fig. 14a), 1500 B → ~588.7 ns (< 590 ns).
pub fn recirc_rtt(frame_len: usize) -> SimTime {
    PARSER_LATENCY
        + PIPELINE_LATENCY
        + TM_UNICAST_LATENCY
        + PIPELINE_LATENCY
        + DEPARSER_LATENCY
        + RECIRC_LOOP_FIXED
        + frame_len as u64 * RECIRC_LOOP_PER_BYTE_PS
}

/// Mean multicast-engine delay for a frame of `frame_len` bytes.
pub fn mcast_delay(frame_len: usize) -> SimTime {
    MCAST_BASE_DELAY + frame_len.saturating_sub(64) as u64 * MCAST_DELAY_PER_BYTE_PS
}

/// Accelerator capacity: how many templates of `frame_len` bytes one
/// recirculation loop sustains, `⌊RTT / occupancy⌋`.
///
/// 64 B → ⌊570 / 6.4⌋ = 89 (Fig. 14b).
pub fn accelerator_capacity(frame_len: usize) -> usize {
    (recirc_rtt(frame_len) / recirc_occupancy(frame_len)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::to_ns_f64;

    #[test]
    fn recirc_occupancy_is_6_4ns_at_64b() {
        assert_eq!(recirc_occupancy(64), 6_400);
    }

    #[test]
    fn rtt_calibration_matches_paper() {
        // Fig. 14a: 64-byte loop completes within 570 ns.
        let rtt64 = to_ns_f64(recirc_rtt(64));
        assert!((rtt64 - 570.0).abs() < 1.0, "RTT(64) = {rtt64} ns");
        // §7 overview: RTT below 590 ns up to 1500 bytes, growing with size.
        let rtt1500 = to_ns_f64(recirc_rtt(1500));
        assert!(rtt1500 < 590.0, "RTT(1500) = {rtt1500} ns");
        assert!(rtt1500 > rtt64);
    }

    #[test]
    fn capacity_matches_paper() {
        // Fig. 14b: 89 templates of 64 bytes.
        assert_eq!(accelerator_capacity(64), 89);
        // Capacity shrinks with packet size.
        assert!(accelerator_capacity(1500) < accelerator_capacity(256));
        assert!(accelerator_capacity(1500) >= 4);
    }

    #[test]
    fn mcast_delay_matches_paper() {
        // Fig. 15a: 389 ns at 64 B, +~65 ns at 1280 B.
        assert_eq!(mcast_delay(64), 389_000);
        let growth = to_ns_f64(mcast_delay(1280)) - to_ns_f64(mcast_delay(64));
        assert!((growth - 65.0).abs() < 2.0, "growth {growth} ns");
    }
}
