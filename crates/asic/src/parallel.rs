//! Partitioned event engines synchronized by conservative lookahead.
//!
//! A topology whose device groups are separated by *nonzero-delay* links
//! can run as independent event engines: a packet crossing a link with
//! delay `d` sent while the sender is at time `t` arrives at `t + d`, so
//! an engine may safely process every event up to
//! `min over in-neighbors n of (commit(n) + delay(n→me))` — the
//! *lookahead horizon* — without ever seeing an event out of order.  The
//! classic Chandy–Misra–Bryant argument gives both safety (an engine that
//! committed `c` has processed everything `≤ c` and every later send
//! arrives strictly after `c + d`) and progress (the minimum-commit engine
//! always has a horizon strictly above its commit, so commits strictly
//! increase until `t_end`).
//!
//! The protocol is barrier-free: each engine loops
//! *snapshot neighbor commits → drain inboxes → process to horizon →
//! flush sends → publish commit*, with the commit stored `Release` after
//! the sends so a peer that observes the commit also observes every
//! message it covers.  Cross-engine packets travel through bounded
//! per-(sender, receiver) channels (single producer, single consumer by
//! construction); a sender facing a full channel drains its own inboxes
//! while it waits, so a cycle of full channels cannot deadlock.
//!
//! Determinism: the event key ([`crate::sim::EvKey`]) is a pure
//! function of each device's behavior, never of engine interleaving, so
//! the partitioned pop order per device group equals the serial order and
//! results are bit-for-bit identical at any engine count.
//!
//! **Partitioning policy** (see `try_run_until`): zero-delay links merge
//! their endpoints into one group (no lookahead across them); any link
//! with faults (loss, corruption, jitter) pins the whole world to the
//! serial loop, because fault decisions consume the world's single RNG in
//! global event order; one resulting group, one granted thread, or an
//! empty horizon likewise fall back to the serial loop.

use crate::packet::SimPacket;
use crate::sim::{
    Device, DeviceId, EvKey, EventKind, EventQueue, Outbox, SimThreads, TraceEntry, World,
    WorldStats,
};
use crate::time::SimTime;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The process-wide engine-thread pool shared by experiment-level and
/// engine-level parallelism.
///
/// `htctl --sim-threads N` configures `N - 1` *extra* tokens; a world
/// built with [`SimThreads::Auto`] acquires up to `groups - 1` tokens for
/// the duration of one `run_until` and releases them afterwards, so
/// concurrently running experiments share one budget instead of
/// oversubscribing the machine.  [`SimThreads::Fixed`] bypasses the pool
/// (the caller asked for an exact engine count).
pub mod budget {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static EXTRA: AtomicUsize = AtomicUsize::new(0);

    /// Sets the number of extra engine threads available process-wide
    /// (`--sim-threads N` ⇒ `N - 1`).  Zero (the default) keeps every
    /// `Auto` world serial.
    pub fn configure(extra: usize) {
        EXTRA.store(extra, Ordering::SeqCst);
    }

    /// Extra engine threads currently unclaimed.
    pub fn available() -> usize {
        EXTRA.load(Ordering::SeqCst)
    }

    /// Claims up to `want` tokens, returning how many were granted.
    pub(crate) fn try_acquire(want: usize) -> usize {
        let mut cur = EXTRA.load(Ordering::SeqCst);
        loop {
            let take = want.min(cur);
            if take == 0 {
                return 0;
            }
            match EXTRA.compare_exchange(cur, cur - take, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return take,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns `n` previously claimed tokens to the pool.
    pub(crate) fn release(n: usize) {
        if n > 0 {
            EXTRA.fetch_add(n, Ordering::SeqCst);
        }
    }
}

/// Soft bound on queued messages per cross-engine channel; a sender seeing
/// the channel at capacity waits (draining its own inboxes) until the
/// receiver catches up.
const CHAN_CAP: usize = 1 << 16;
/// Sends buffered per target before a mid-processing flush.
const FLUSH_BATCH: usize = 256;

/// A packet delivery crossing engines.  The key travels with the event,
/// so the receiver's queue reproduces the serial pop order.
struct Msg {
    at: SimTime,
    key: EvKey,
    device: DeviceId,
    port: u16,
    pkt: SimPacket,
}

/// Read-mostly state shared by all engines of one partitioned run.
struct Shared {
    /// Committed time per engine: everything `≤ commits[e]` is processed
    /// and flushed.  `u64::MAX` once the engine exits.
    commits: Vec<AtomicU64>,
    /// `chan[to][from]`: single-producer single-consumer message queues.
    chan: Vec<Vec<Mutex<VecDeque<Msg>>>>,
    /// `in_delay[to][from]`: minimum delay of any link from engine `from`
    /// into engine `to`; `SimTime::MAX` when no such link exists.
    in_delay: Vec<Vec<SimTime>>,
    t_end: SimTime,
}

/// A link as seen by the engine owning its source device.
struct LocalLink {
    peer: (DeviceId, u16),
    delay: SimTime,
    /// Engine owning the receiving device.
    target: u32,
}

/// One event engine: a subset of the world's devices plus their queue.
struct Engine {
    id: usize,
    /// Full-length device table; only slots this engine owns are `Some`.
    devices: Vec<Option<Box<dyn Device>>>,
    /// Full-length counter table; only owned slots are meaningful.
    ctrs: Vec<u64>,
    links: HashMap<(DeviceId, u16), LocalLink>,
    queue: EventQueue,
    scratch: Outbox,
    now: SimTime,
    stats: WorldStats,
    /// Outgoing messages buffered per target engine.
    out: Vec<Vec<Msg>>,
    trace: Vec<TraceEntry>,
    trace_depth: usize,
}

impl Engine {
    /// Moves every pending inbox message into the local queue.  Returns
    /// whether anything arrived.
    fn drain_inboxes(&mut self, sh: &Shared) -> bool {
        let mut any = false;
        for from in 0..sh.chan.len() {
            if from == self.id || sh.in_delay[self.id][from] == SimTime::MAX {
                continue;
            }
            let mut ch = sh.chan[self.id][from].lock().unwrap();
            while let Some(m) = ch.pop_front() {
                self.queue.push(
                    m.at,
                    m.key,
                    EventKind::Deliver { device: m.device, port: m.port, pkt: m.pkt },
                );
                any = true;
            }
        }
        any
    }

    /// Appends the buffered sends for `target` to its channel, waiting
    /// (and draining our own inboxes, to stay deadlock-free) while the
    /// channel is at capacity.
    fn flush_to(&mut self, sh: &Shared, target: usize) {
        loop {
            {
                let mut ch = sh.chan[target][self.id].lock().unwrap();
                if ch.len() < CHAN_CAP {
                    ch.extend(self.out[target].drain(..));
                    return;
                }
            }
            self.drain_inboxes(sh);
            std::thread::yield_now();
        }
    }

    /// Flushes every non-empty send buffer.
    fn flush_all(&mut self, sh: &Shared) {
        for t in 0..self.out.len() {
            if !self.out[t].is_empty() {
                self.flush_to(sh, t);
            }
        }
    }

    /// Processes one local event (the engine-side mirror of
    /// `World::step`, minus fault injection — faulty links force the
    /// serial loop).
    fn step(&mut self, sh: &Shared) {
        let Some((at, key, kind)) = self.queue.pop() else {
            return;
        };
        debug_assert!(at >= self.now, "engine queue went backwards");
        self.now = at;
        self.stats.events += 1;
        World::record_trace(&mut self.trace, self.trace_depth, at, key, &kind);

        let mut out = std::mem::take(&mut self.scratch);
        let device = kind.device();
        let dev = self.devices[device].as_mut().expect("event routed to non-owned device");
        match kind {
            EventKind::Deliver { port, pkt, .. } => dev.rx(port, pkt, at, &mut out),
            EventKind::Wake { token, .. } => dev.wake(token, at, &mut out),
        }
        self.flush_outbox(device, &mut out, sh);
        self.scratch = out;
    }

    fn flush_outbox(&mut self, device: DeviceId, out: &mut Outbox, sh: &Shared) {
        for (token, at) in out.wakes.drain(..) {
            let key = EvKey::device(self.now, device, self.ctrs[device]);
            self.ctrs[device] += 1;
            self.queue.push(at.max(self.now), key, EventKind::Wake { device, token });
        }
        for (port, pkt, at) in out.emits.drain(..) {
            let Some(link) = self.links.get(&(device, port)) else {
                self.stats.dangling_emits += 1;
                continue;
            };
            let key = EvKey::device(self.now, device, self.ctrs[device]);
            self.ctrs[device] += 1;
            let arrival = at.max(self.now) + link.delay;
            let (peer_dev, peer_port) = link.peer;
            let target = link.target as usize;
            if target == self.id {
                self.queue.push(
                    arrival,
                    key,
                    EventKind::Deliver { device: peer_dev, port: peer_port, pkt },
                );
            } else {
                self.out[target].push(Msg {
                    at: arrival,
                    key,
                    device: peer_dev,
                    port: peer_port,
                    pkt,
                });
                if self.out[target].len() >= FLUSH_BATCH {
                    self.flush_to(sh, target);
                }
            }
        }
    }
}

/// Publishes `u64::MAX` as the engine's commit when the engine leaves its
/// loop — normally or by unwinding — so peers never spin on a dead engine.
struct CommitGuard<'a>(&'a AtomicU64);

impl Drop for CommitGuard<'_> {
    fn drop(&mut self) {
        self.0.store(u64::MAX, Ordering::Release);
    }
}

/// The engine worker loop: the barrier-free horizon protocol.
fn run_engine(e: &mut Engine, sh: &Shared) {
    let me = e.id;
    let _guard = CommitGuard(&sh.commits[me]);
    loop {
        // 1. Snapshot in-neighbor commits (Acquire pairs with their
        //    post-flush Release store, so observing a commit implies
        //    observing every message it covers).
        let mut horizon = sh.t_end;
        let mut all_done = true;
        for n in 0..sh.commits.len() {
            if n == me {
                continue;
            }
            let d = sh.in_delay[me][n];
            if d == SimTime::MAX {
                continue;
            }
            let c = sh.commits[n].load(Ordering::Acquire);
            if c < sh.t_end {
                all_done = false;
            }
            horizon = horizon.min(c.saturating_add(d));
        }
        // 2. Ingest everything those commits cover.
        let mut progress = e.drain_inboxes(sh);
        // 3. Process local events up to the horizon (inclusive: a
        //    neighbor's later sends arrive strictly after commit + delay).
        while let Some(at) = e.queue.peek_min_at() {
            if at > horizon {
                break;
            }
            e.step(sh);
            progress = true;
        }
        // 4. Publish sends, then the commit.
        e.flush_all(sh);
        let prev = sh.commits[me].load(Ordering::Relaxed);
        if horizon > prev {
            sh.commits[me].store(horizon, Ordering::Release);
        }
        // 5. Exit once every in-neighbor had committed t_end *before* the
        //    drain above — no event ≤ t_end can still be in flight to us.
        if horizon >= sh.t_end && all_done {
            return;
        }
        if !progress {
            std::thread::yield_now();
        }
    }
}

/// Disjoint-set find with path halving.
fn find(dsu: &mut [usize], mut x: usize) -> usize {
    while dsu[x] != x {
        dsu[x] = dsu[dsu[x]];
        x = dsu[x];
    }
    x
}

/// Attempts to run `world` partitioned until `t_end`.  Returns the events
/// processed, or `None` when the serial fallback applies (see the module
/// docs for the policy).
pub(crate) fn try_run_until(world: &mut World, t_end: SimTime) -> Option<u64> {
    let want = match world.sim_threads {
        SimThreads::Fixed(n) => n,
        SimThreads::Auto => usize::MAX,
    };
    let n_dev = world.devices.len();
    if want <= 1 || n_dev < 2 {
        return None;
    }
    if world.links.values().any(|l| l.has_faults()) {
        return None;
    }
    match world.queue.peek_min_at() {
        Some(at) if at <= t_end => {}
        _ => return None, // nothing to do before t_end
    }

    // Contract zero-delay links: no lookahead exists across them.
    let mut dsu: Vec<usize> = (0..n_dev).collect();
    for (&(a, _), l) in &world.links {
        if l.delay == 0 {
            let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, l.peer.0));
            dsu[ra.max(rb)] = ra.min(rb);
        }
    }
    let mut group_of = vec![usize::MAX; n_dev];
    let mut n_groups = 0;
    for d in 0..n_dev {
        let r = find(&mut dsu, d);
        if group_of[r] == usize::MAX {
            group_of[r] = n_groups;
            n_groups += 1;
        }
        group_of[d] = group_of[r];
    }
    if n_groups < 2 {
        return None;
    }

    // Resolve the engine count, drawing from the shared pool under Auto.
    let (n_eng, from_pool) = match world.sim_threads {
        SimThreads::Fixed(n) => (n.min(n_groups), 0),
        SimThreads::Auto => {
            let got = budget::try_acquire(n_groups - 1);
            (1 + got, got)
        }
    };
    if n_eng < 2 {
        budget::release(from_pool);
        return None;
    }

    // LPT: biggest groups first onto the least-loaded engine.  The
    // assignment only affects speed — the event key is partition-
    // independent, so any assignment yields identical results.
    let mut g_size = vec![0usize; n_groups];
    for d in 0..n_dev {
        g_size[group_of[d]] += 1;
    }
    let mut order: Vec<usize> = (0..n_groups).collect();
    order.sort_by_key(|&g| (std::cmp::Reverse(g_size[g]), g));
    let mut load = vec![0usize; n_eng];
    let mut eng_of_group = vec![0u32; n_groups];
    for g in order {
        let e = (0..n_eng).min_by_key(|&e| (load[e], e)).expect("n_eng >= 2");
        eng_of_group[g] = e as u32;
        load[e] += g_size[g];
    }
    let dev_engine: Vec<u32> = (0..n_dev).map(|d| eng_of_group[group_of[d]]).collect();

    // Minimum directed cross-engine delay (every cross link has delay > 0
    // — zero-delay links were contracted into one group).
    let mut in_delay = vec![vec![SimTime::MAX; n_eng]; n_eng];
    for (&(a, _), l) in &world.links {
        let (ea, eb) = (dev_engine[a] as usize, dev_engine[l.peer.0] as usize);
        if ea != eb {
            let d = &mut in_delay[eb][ea];
            *d = (*d).min(l.delay);
        }
    }

    // Build the engines: move devices and counters in, split the queue by
    // target device, hand each engine the links of its own devices.
    world.started = true;
    let mut engines: Vec<Engine> = (0..n_eng)
        .map(|id| Engine {
            id,
            devices: (0..n_dev).map(|_| None).collect(),
            ctrs: vec![0; n_dev],
            links: HashMap::new(),
            queue: EventQueue::new(world.qkind),
            scratch: Outbox::default(),
            now: world.now,
            stats: WorldStats::default(),
            out: (0..n_eng).map(|_| Vec::new()).collect(),
            trace: Vec::new(),
            trace_depth: world.trace_depth,
        })
        .collect();
    for (d, dev) in std::mem::take(&mut world.devices).into_iter().enumerate() {
        let e = dev_engine[d] as usize;
        engines[e].devices[d] = Some(dev);
        engines[e].ctrs[d] = world.ctrs[d];
    }
    for (&(a, p), l) in &world.links {
        let e = dev_engine[a] as usize;
        engines[e].links.insert(
            (a, p),
            LocalLink { peer: l.peer, delay: l.delay, target: dev_engine[l.peer.0] },
        );
    }
    while let Some((at, key, kind)) = world.queue.pop() {
        engines[dev_engine[kind.device()] as usize].queue.push(at, key, kind);
    }

    let shared = Shared {
        commits: (0..n_eng).map(|_| AtomicU64::new(world.now)).collect(),
        chan: (0..n_eng)
            .map(|_| (0..n_eng).map(|_| Mutex::new(VecDeque::new())).collect())
            .collect(),
        in_delay,
        t_end,
    };

    let engines: Vec<Engine> = std::thread::scope(|s| {
        let shared = &shared;
        let handles: Vec<_> = engines
            .into_iter()
            .map(|mut e| {
                s.spawn(move || {
                    run_engine(&mut e, shared);
                    e
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("engine thread panicked")).collect()
    });

    // Reassemble the world: devices and counters back in place, leftover
    // events (beyond t_end) re-queued, stats summed.
    budget::release(from_pool);
    let mut devices: Vec<Option<Box<dyn Device>>> = (0..n_dev).map(|_| None).collect();
    let mut total = 0u64;
    let mut new_trace: Vec<TraceEntry> = Vec::new();
    for mut e in engines {
        total += e.stats.events;
        world.stats.events += e.stats.events;
        world.stats.dangling_emits += e.stats.dangling_emits;
        world.engine_peak = world.engine_peak.max(e.queue.peak_len() as u64);
        for (d, slot) in e.devices.iter_mut().enumerate() {
            if let Some(dev) = slot.take() {
                devices[d] = Some(dev);
                world.ctrs[d] = e.ctrs[d];
            }
        }
        while let Some((at, key, kind)) = e.queue.pop() {
            world.queue.push(at, key, kind);
        }
        new_trace.append(&mut e.trace);
    }
    world.devices = devices.into_iter().map(|d| d.expect("device not returned")).collect();
    // Channel residue: deliveries beyond t_end sent after the receiver
    // exited (protocol invariant: anything ≤ t_end was consumed).
    for row in &shared.chan {
        for ch in row {
            for m in ch.lock().unwrap().drain(..) {
                debug_assert!(m.at > t_end, "in-flight event within the horizon");
                world.queue.push(
                    m.at,
                    m.key,
                    EventKind::Deliver { device: m.device, port: m.port, pkt: m.pkt },
                );
            }
        }
    }
    if world.trace_depth > 0 {
        // Engine traces interleave deterministically by (at, key).
        new_trace.sort_by_key(|t| (t.at, t.key));
        world.trace.append(&mut new_trace);
        let len = world.trace.len();
        if len > world.trace_depth {
            world.trace.drain(..len - world.trace_depth);
        }
    }
    world.now = world.now.max(t_end);
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_acquire_is_clamped_and_released() {
        // Single test touching the global pool (the suite runs tests
        // concurrently; other tests use SimThreads::Fixed, which bypasses
        // it).
        budget::configure(3);
        assert_eq!(budget::available(), 3);
        assert_eq!(budget::try_acquire(2), 2);
        assert_eq!(budget::try_acquire(5), 1);
        assert_eq!(budget::try_acquire(1), 0);
        budget::release(3);
        assert_eq!(budget::available(), 3);
        budget::configure(0);
    }

    #[test]
    fn find_contracts_chains() {
        let mut dsu = vec![0, 0, 1, 3];
        assert_eq!(find(&mut dsu, 2), 0);
        assert_eq!(find(&mut dsu, 3), 3);
    }
}
