//! Traffic-manager configuration: multicast groups.
//!
//! The mcast engine is "a general primitive widely supported by commodity
//! switches" (§5.1) that HyperTester's replicator uses to turn one template
//! packet into per-port test packets.  A group maps to a list of
//! `(egress port, replication id)` members; the engine clones the packet
//! once per member, stamping the member's RID so the egress editor can
//! differentiate replicas.

use crate::fxhash::FxHashMap;

/// One member of a multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McastMember {
    /// Egress port the replica is sent to.
    pub port: u16,
    /// Replication id stamped into `meta.rid`.
    pub rid: u16,
}

/// The multicast group table, populated by the control plane.
#[derive(Debug, Clone, Default)]
pub struct McastTable {
    /// Fx-hashed: [`members`](Self::members) runs once per replicated
    /// packet on the hot path.
    groups: FxHashMap<u16, Vec<McastMember>>,
}

impl McastTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a group.  Group id 0 is reserved as "no
    /// multicast" in the PHV and cannot be configured.
    pub fn set_group(&mut self, group: u16, members: Vec<McastMember>) {
        assert!(group != 0, "multicast group 0 is reserved");
        self.groups.insert(group, members);
    }

    /// Members of a group (empty for unknown groups — the hardware drops
    /// replicas of unconfigured groups).
    pub fn members(&self, group: u16) -> &[McastMember] {
        self.groups.get(&group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Copies a group's members into `buf` (cleared first).  The switch's
    /// replication hot path reuses one scratch buffer across packets
    /// instead of cloning the member list per replication.
    pub fn members_into(&self, group: u16, buf: &mut Vec<McastMember>) {
        buf.clear();
        buf.extend_from_slice(self.members(group));
    }

    /// All configured groups, in unspecified order.
    pub fn groups(&self) -> impl Iterator<Item = (u16, &[McastMember])> {
        self.groups.iter().map(|(&g, m)| (g, m.as_slice()))
    }

    /// Number of configured groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups are configured.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_store_members_in_order() {
        let mut t = McastTable::new();
        t.set_group(1, vec![McastMember { port: 0, rid: 1 }, McastMember { port: 1, rid: 2 }]);
        assert_eq!(t.members(1).len(), 2);
        assert_eq!(t.members(1)[1].port, 1);
    }

    #[test]
    fn unknown_group_is_empty() {
        let t = McastTable::new();
        assert!(t.members(9).is_empty());
    }

    #[test]
    fn replacing_a_group_overwrites() {
        let mut t = McastTable::new();
        t.set_group(1, vec![McastMember { port: 0, rid: 1 }]);
        t.set_group(1, vec![]);
        assert!(t.members(1).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "group 0 is reserved")]
    fn group_zero_rejected() {
        McastTable::new().set_group(0, vec![]);
    }

    #[test]
    fn members_into_reuses_the_buffer() {
        let mut t = McastTable::new();
        t.set_group(1, vec![McastMember { port: 0, rid: 1 }, McastMember { port: 1, rid: 2 }]);
        let mut buf = Vec::new();
        t.members_into(1, &mut buf);
        assert_eq!(buf, t.members(1));
        let cap = buf.capacity();
        t.members_into(9, &mut buf); // unknown group clears, keeps capacity
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        t.members_into(1, &mut buf);
        assert_eq!(buf.len(), 2);
    }
}
