//! The discrete-event simulation world: devices, links and the event queue.
//!
//! A [`World`] owns a set of [`Device`]s (switches, servers, sinks) wired
//! together by point-to-point [`Link`]s.  Devices communicate only through
//! the event queue: a handler returns emissions/wake requests in an
//! [`Outbox`], and the world turns emissions into future `Deliver` events on
//! the link peer.  Two events at the same instant are ordered by insertion
//! sequence, making every run fully deterministic for a given seed.
//!
//! Links support smoltcp-style fault injection (random drop and corruption)
//! for the failure-handling tests.

use crate::packet::SimPacket;
use crate::phv::{fields, FieldId};
use crate::time::SimTime;
use crate::timerwheel::TimerWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Per-thread simulation counters, aggregated across every [`World`] that
/// ran on the thread.  The parallel experiment harness snapshots these
/// around each job to report events and queue pressure per experiment
/// without threading a context object through every device.
pub mod metrics {
    use std::cell::Cell;

    thread_local! {
        static EVENTS: Cell<u64> = const { Cell::new(0) };
        static PEAK_QUEUE: Cell<u64> = const { Cell::new(0) };
        static FP_KEYS: Cell<u64> = const { Cell::new(0) };
    }

    /// Cumulative events processed by worlds on this thread (flushed when
    /// each world is dropped).
    pub fn thread_events() -> u64 {
        EVENTS.with(Cell::get)
    }

    /// The deepest event queue any world on this thread reached since the
    /// last [`take_thread_peak_queue`] call; resets the high-water mark.
    pub fn take_thread_peak_queue() -> u64 {
        PEAK_QUEUE.with(|c| c.replace(0))
    }

    /// Cumulative keys hashed by the false-positive precompute on this
    /// thread (recorded by `ht-ntapi`'s `compute_fp_indices`).
    pub fn thread_fp_keys() -> u64 {
        FP_KEYS.with(Cell::get)
    }

    /// Adds `n` to the thread's false-positive precompute key counter.
    pub fn record_fp_keys(n: u64) {
        FP_KEYS.with(|c| c.set(c.get() + n));
    }

    pub(super) fn record(events: u64, peak_queue: u64) {
        EVENTS.with(|c| c.set(c.get() + events));
        PEAK_QUEUE.with(|c| c.set(c.get().max(peak_queue)));
    }
}

/// Index of a device within its world.
pub type DeviceId = usize;

/// Emissions and wake requests produced by one device handler invocation.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Packets leaving the device: `(source port, packet, departure time)`.
    pub emits: Vec<(u16, SimPacket, SimTime)>,
    /// Timer requests: `(opaque token, fire time)`.
    pub wakes: Vec<(u64, SimTime)>,
}

impl Outbox {
    /// Queues a packet emission out of `port` at time `at`.
    pub fn emit(&mut self, port: u16, pkt: SimPacket, at: SimTime) {
        self.emits.push((port, pkt, at));
    }

    /// Requests a wake callback with `token` at time `at`.
    pub fn wake_at(&mut self, token: u64, at: SimTime) {
        self.wakes.push((token, at));
    }
}

/// A network element participating in the simulation.
pub trait Device: Any {
    /// Device name, for diagnostics.
    fn name(&self) -> &str;

    /// Handles a packet arriving on `port` at time `now`.
    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox);

    /// Handles a timer previously requested via [`Outbox::wake_at`].
    fn wake(&mut self, _token: u64, _now: SimTime, _out: &mut Outbox) {}

    /// Upcast for typed post-run access ([`World::device`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// One direction of a link out of a `(device, port)` endpoint.
#[derive(Debug, Clone)]
pub struct Link {
    /// Receiving endpoint.
    pub peer: (DeviceId, u16),
    /// Propagation delay added to every delivery.
    pub delay: SimTime,
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability one header field gets a bit flipped.
    pub corrupt_chance: f64,
}

#[derive(Debug)]
enum EventKind {
    Deliver { device: DeviceId, port: u16, pkt: SimPacket },
    Wake { device: DeviceId, token: u64 },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Statistics of a world run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Events processed.
    pub events: u64,
    /// Packets dropped by link fault injection.
    pub link_drops: u64,
    /// Header fields corrupted by link fault injection.
    pub link_corruptions: u64,
    /// Emissions out of ports with no link attached.
    pub dangling_emits: u64,
}

/// Which event-queue implementation a [`World`] uses.
///
/// Both yield the identical `(at, seq)` pop order, so results are
/// bit-for-bit equal either way; the choice only affects speed.  The
/// heap is kept for A/B benchmarking against the seed implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// The original `BinaryHeap<Reverse<Event>>` — `O(log n)` per event.
    Heap,
    /// The hierarchical timer wheel ([`TimerWheel`]) — amortized `O(1)`.
    #[default]
    Wheel,
}

#[derive(Debug)]
enum EventQueue {
    Heap { heap: BinaryHeap<Reverse<Event>>, peak: usize },
    Wheel(TimerWheel<EventKind>),
}

impl EventQueue {
    fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => EventQueue::Heap { heap: BinaryHeap::new(), peak: 0 },
            QueueKind::Wheel => EventQueue::Wheel(TimerWheel::new()),
        }
    }

    fn push(&mut self, at: SimTime, seq: u64, kind: EventKind) {
        match self {
            EventQueue::Heap { heap, peak } => {
                heap.push(Reverse(Event { at, seq, kind }));
                *peak = (*peak).max(heap.len());
            }
            EventQueue::Wheel(w) => w.push(at, seq, kind),
        }
    }

    fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        match self {
            EventQueue::Heap { heap, .. } => heap.pop().map(|Reverse(e)| (e.at, e.kind)),
            EventQueue::Wheel(w) => w.pop().map(|(at, _, kind)| (at, kind)),
        }
    }

    /// Arrival time of the next event, without removing it.
    fn peek_min_at(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap { heap, .. } => heap.peek().map(|Reverse(e)| e.at),
            EventQueue::Wheel(w) => w.peek_min_at(),
        }
    }

    fn peak_len(&self) -> usize {
        match self {
            EventQueue::Heap { peak, .. } => *peak,
            EventQueue::Wheel(w) => w.peak_len(),
        }
    }
}

/// The simulation world.
pub struct World {
    devices: Vec<Box<dyn Device>>,
    links: HashMap<(DeviceId, u16), Link>,
    queue: EventQueue,
    /// Scratch outbox reused across [`step`](Self::step) calls so the two
    /// per-event `Vec` allocations of the seed implementation disappear.
    scratch: Outbox,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    /// Run statistics.
    pub stats: WorldStats,
}

impl Drop for World {
    fn drop(&mut self) {
        // Fold this world's counters into the per-thread aggregate the
        // experiment harness reads (see [`metrics`]).
        metrics::record(self.stats.events, self.queue.peak_len() as u64);
    }
}

impl World {
    /// Creates an empty world with a fault-injection RNG seed, using the
    /// default (timer wheel) event queue.
    pub fn new(seed: u64) -> Self {
        Self::new_with_queue(seed, QueueKind::default())
    }

    /// Creates an empty world with an explicit event-queue implementation
    /// (for A/B benchmarks and equivalence tests).
    pub fn new_with_queue(seed: u64, kind: QueueKind) -> Self {
        World {
            devices: Vec::new(),
            links: HashMap::new(),
            queue: EventQueue::new(kind),
            scratch: Outbox::default(),
            now: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            stats: WorldStats::default(),
        }
    }

    /// The deepest the event queue has ever been in this world.
    pub fn peak_queue_depth(&self) -> u64 {
        self.queue.peak_len() as u64
    }

    /// Adds a device, returning its id.
    pub fn add_device(&mut self, dev: Box<dyn Device>) -> DeviceId {
        self.devices.push(dev);
        self.devices.len() - 1
    }

    /// Connects two endpoints bidirectionally with a propagation delay and
    /// no faults.
    pub fn connect(&mut self, a: (DeviceId, u16), b: (DeviceId, u16), delay: SimTime) {
        self.connect_faulty(a, b, delay, 0.0, 0.0);
    }

    /// Connects two endpoints bidirectionally with fault injection.
    pub fn connect_faulty(
        &mut self,
        a: (DeviceId, u16),
        b: (DeviceId, u16),
        delay: SimTime,
        drop_chance: f64,
        corrupt_chance: f64,
    ) {
        assert!((0.0..=1.0).contains(&drop_chance));
        assert!((0.0..=1.0).contains(&corrupt_chance));
        self.links.insert(a, Link { peer: b, delay, drop_chance, corrupt_chance });
        self.links.insert(b, Link { peer: a, delay, drop_chance, corrupt_chance });
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a packet delivery straight into a device port (external
    /// traffic injection, e.g. templates from a test driver).
    pub fn schedule_rx(&mut self, device: DeviceId, port: u16, pkt: SimPacket, at: SimTime) {
        let seq = self.next_seq();
        self.queue.push(at, seq, EventKind::Deliver { device, port, pkt });
    }

    /// Schedules a wake for a device (external timer injection).
    pub fn schedule_wake(&mut self, device: DeviceId, token: u64, at: SimTime) {
        let seq = self.next_seq();
        self.queue.push(at, seq, EventKind::Wake { device, token });
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Processes a single event.  Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.stats.events += 1;

        // Reuse the scratch outbox (its vectors keep their capacity) —
        // the seed implementation paid two Vec allocations per event.
        let mut out = std::mem::take(&mut self.scratch);
        let device = match kind {
            EventKind::Deliver { device, port, pkt } => {
                self.devices[device].rx(port, pkt, self.now, &mut out);
                device
            }
            EventKind::Wake { device, token } => {
                self.devices[device].wake(token, self.now, &mut out);
                device
            }
        };
        self.flush_outbox(device, &mut out);
        self.scratch = out;
        true
    }

    fn flush_outbox(&mut self, device: DeviceId, out: &mut Outbox) {
        for (token, at) in out.wakes.drain(..) {
            let seq = self.next_seq();
            self.queue.push(at.max(self.now), seq, EventKind::Wake { device, token });
        }
        for (port, mut pkt, at) in out.emits.drain(..) {
            let Some(link) = self.links.get(&(device, port)).cloned() else {
                self.stats.dangling_emits += 1;
                continue;
            };
            if link.drop_chance > 0.0 && self.rng.gen_bool(link.drop_chance) {
                self.stats.link_drops += 1;
                continue;
            }
            if link.corrupt_chance > 0.0 && self.rng.gen_bool(link.corrupt_chance) {
                // Flip one random bit in a random standard header field —
                // the PHV-level analogue of a byte corruption on the wire.
                let f = FieldId(self.rng.gen_range(0..fields::STANDARD_COUNT));
                let bit = self.rng.gen_range(0..16u32);
                let v = pkt.phv.get(f) ^ (1 << bit);
                pkt.phv.set_masked(f, v, 64);
                self.stats.link_corruptions += 1;
            }
            let seq = self.next_seq();
            self.queue.push(
                at.max(self.now) + link.delay,
                seq,
                EventKind::Deliver { device: link.peer.0, port: link.peer.1, pkt },
            );
        }
    }

    /// Runs until the queue drains or simulated time exceeds `t_end`
    /// (events beyond `t_end` stay queued).  Returns the number of events
    /// processed.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.peek_min_at() {
            if at > t_end {
                break;
            }
            self.step();
            n += 1;
        }
        self.now = self.now.max(t_end);
        n
    }

    /// Runs until the queue is empty or `max_events` is hit (a runaway
    /// guard for tests).
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Typed access to a device after (or during) a run.
    ///
    /// # Panics
    /// Panics when the id is out of range or the type does not match.
    pub fn device<T: 'static>(&self, id: DeviceId) -> &T {
        self.devices[id].as_any().downcast_ref::<T>().expect("device type mismatch")
    }

    /// Typed mutable access to a device.
    pub fn device_mut<T: 'static>(&mut self, id: DeviceId) -> &mut T {
        self.devices[id].as_any_mut().downcast_mut::<T>().expect("device type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::FieldTable;

    /// Echoes every packet back out the port it arrived on after 10 ns.
    struct Echo {
        rx_times: Vec<SimTime>,
    }

    impl Device for Echo {
        fn name(&self) -> &str {
            "echo"
        }

        fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
            self.rx_times.push(now);
            out.emit(port, pkt, now + 10_000);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts received packets.
    struct Counter {
        count: u64,
        woken: Vec<u64>,
    }

    impl Device for Counter {
        fn name(&self) -> &str {
            "counter"
        }

        fn rx(&mut self, _port: u16, _pkt: SimPacket, _now: SimTime, _out: &mut Outbox) {
            self.count += 1;
        }

        fn wake(&mut self, token: u64, _now: SimTime, _out: &mut Outbox) {
            self.woken.push(token);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn blank_packet() -> SimPacket {
        let t = FieldTable::new();
        SimPacket { phv: t.new_phv(), body: None, uid: 0 }
    }

    #[test]
    fn delivery_respects_link_delay() {
        let mut w = World::new(1);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.connect((e, 0), (c, 0), 5_000);
        w.schedule_rx(e, 0, blank_packet(), 100);
        w.run_to_idle(100);
        // Echo got it at t=100, re-emitted at 110 ns, counter at 115 ns.
        assert_eq!(w.device::<Echo>(e).rx_times, vec![100]);
        assert_eq!(w.device::<Counter>(c).count, 1);
        assert_eq!(w.now(), 100 + 10_000 + 5_000);
    }

    #[test]
    fn wakes_fire_in_time_order() {
        let mut w = World::new(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.schedule_wake(c, 2, 200);
        w.schedule_wake(c, 1, 100);
        w.schedule_wake(c, 3, 300);
        w.run_to_idle(10);
        assert_eq!(w.device::<Counter>(c).woken, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_preserve_insertion_order() {
        let mut w = World::new(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        for token in 0..10 {
            w.schedule_wake(c, token, 500);
        }
        w.run_to_idle(100);
        assert_eq!(w.device::<Counter>(c).woken, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut w = World::new(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.schedule_wake(c, 1, 100);
        w.schedule_wake(c, 2, 1_000);
        let n = w.run_until(500);
        assert_eq!(n, 1);
        assert_eq!(w.now(), 500);
        w.run_to_idle(10);
        assert_eq!(w.device::<Counter>(c).woken, vec![1, 2]);
    }

    #[test]
    fn dangling_emission_is_counted_not_fatal() {
        let mut w = World::new(1);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        w.schedule_rx(e, 7, blank_packet(), 0); // port 7 has no link
        w.run_to_idle(10);
        assert_eq!(w.stats.dangling_emits, 1);
    }

    #[test]
    fn lossy_link_drops_roughly_the_configured_fraction() {
        let mut w = World::new(42);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.connect_faulty((e, 0), (c, 0), 0, 0.3, 0.0);
        for i in 0..1000 {
            w.schedule_rx(e, 0, blank_packet(), i * 100);
        }
        w.run_to_idle(10_000);
        let delivered = w.device::<Counter>(c).count;
        assert_eq!(delivered + w.stats.link_drops, 1000);
        assert!((500..900).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn heap_and_wheel_queues_agree() {
        // The same scripted scenario must produce identical device state
        // and stats under both queue implementations.
        let run = |kind: QueueKind| {
            let mut w = World::new_with_queue(42, kind);
            let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
            let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
            w.connect_faulty((e, 0), (c, 0), 2_500, 0.2, 0.1);
            for i in 0..500 {
                w.schedule_rx(e, 0, blank_packet(), i * 137);
                if i % 7 == 0 {
                    w.schedule_wake(c, i, i * 137);
                }
            }
            w.run_to_idle(10_000);
            (w.device::<Echo>(e).rx_times.clone(), w.device::<Counter>(c).woken.clone(), w.stats)
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Wheel));
    }

    #[test]
    fn corrupting_link_flips_fields() {
        let mut w = World::new(7);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.connect_faulty((e, 0), (c, 0), 0, 0.0, 1.0);
        w.schedule_rx(e, 0, blank_packet(), 0);
        w.run_to_idle(10);
        assert_eq!(w.stats.link_corruptions, 1);
        assert_eq!(w.device::<Counter>(c).count, 1, "corrupted packets still deliver");
    }
}
