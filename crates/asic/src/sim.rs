//! The discrete-event simulation world: devices, links and the event queue.
//!
//! A [`World`] owns a set of [`Device`]s (switches, servers, sinks) wired
//! together by point-to-point links ([`LinkSpec`]).  Devices communicate
//! only through the event queue: a handler returns emissions/wake requests
//! in an [`Outbox`], and the world turns emissions into future `Deliver`
//! events on the link peer.  Same-instant events are ordered by a
//! *schedule-independent* key ([`EvKey`]): the creating handler's instant,
//! the creator's identity, and a per-creator counter.  The key depends only
//! on what each device did, never on which thread ran it, so a run is
//! bit-for-bit deterministic for a given seed at any engine count.
//!
//! Worlds are constructed through [`World::builder`]; topologies whose
//! device groups are separated by nonzero-delay links can run partitioned
//! across worker threads (see [`crate::parallel`]), falling back to the
//! serial loop otherwise.
//!
//! Links support smoltcp-style fault injection (random drop, corruption
//! and jitter) for the failure-handling tests.

use crate::packet::SimPacket;
use crate::phv::{fields, FieldId};
use crate::time::SimTime;
use crate::timerwheel::TimerWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Per-thread simulation counters, aggregated across every [`World`] that
/// ran on the thread.  The parallel experiment harness snapshots these
/// around each job to report events and queue pressure per experiment
/// without threading a context object through every device.  A partitioned
/// world folds its engines' counters back into the owning thread's cells
/// when it is dropped, so the numbers stay complete under `--sim-threads`.
pub mod metrics {
    use std::cell::Cell;

    /// Number of batch-occupancy histogram buckets: 1, 2–3, 4–7, 8–15,
    /// 16–31, 32–63, 64–127, 128+.
    pub const BATCH_BUCKETS: usize = 8;
    /// Number of [`super::DeviceKind`] values.
    pub const KIND_COUNT: usize = 4;

    thread_local! {
        static EVENTS: Cell<u64> = const { Cell::new(0) };
        static PEAK_QUEUE: Cell<u64> = const { Cell::new(0) };
        static FP_KEYS: Cell<u64> = const { Cell::new(0) };
        static OPS: Cell<u64> = const { Cell::new(0) };
        static BATCH_HIST: Cell<[u64; BATCH_BUCKETS]> = const { Cell::new([0; BATCH_BUCKETS]) };
        static BY_KIND: Cell<[u64; KIND_COUNT]> = const { Cell::new([0; KIND_COUNT]) };
        static VEC_BATCHES: Cell<u64> = const { Cell::new(0) };
        static VEC_LANES: Cell<u64> = const { Cell::new(0) };
    }

    /// Cumulative events processed by worlds on this thread (flushed when
    /// each world is dropped).
    pub fn thread_events() -> u64 {
        EVENTS.with(Cell::get)
    }

    /// The deepest event queue any world on this thread reached since the
    /// last [`take_thread_peak_queue`] call; resets the high-water mark.
    pub fn take_thread_peak_queue() -> u64 {
        PEAK_QUEUE.with(|c| c.replace(0))
    }

    /// Cumulative keys hashed by the false-positive precompute on this
    /// thread (recorded by `ht-ntapi`'s `compute_fp_indices`).
    pub fn thread_fp_keys() -> u64 {
        FP_KEYS.with(Cell::get)
    }

    /// Adds `n` to the thread's false-positive precompute key counter.
    pub fn record_fp_keys(n: u64) {
        FP_KEYS.with(|c| c.set(c.get() + n));
    }

    /// Adds `n` to the thread's retired-op counter.  The compiled executor
    /// ([`crate::exec`]) calls this once per pipeline pass with the number
    /// of ops its decode loop retired.
    pub fn record_ops(n: u64) {
        OPS.with(|c| c.set(c.get() + n));
    }

    /// Records one vector-executor ingress dispatch of `lanes` PHV lanes
    /// (the batch-occupancy signal of the `--exec vector` fast path).
    pub fn record_vector_dispatch(lanes: u64) {
        VEC_BATCHES.with(|c| c.set(c.get() + 1));
        VEC_LANES.with(|c| c.set(c.get() + lanes));
    }

    /// Cumulative profile counters of this thread, for `--profile`
    /// reports.  Counters are cumulative across jobs; snapshot before and
    /// after a run and subtract ([`ProfileSnapshot::delta_since`]).
    ///
    /// Partitioned runs accumulate retired ops on their engine threads, so
    /// `ops_retired` is complete only for serial (`--workers`-level
    /// parallel, `--sim-threads 1`) runs; events are folded back on world
    /// drop either way.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct ProfileSnapshot {
        /// Events processed (same counter as [`thread_events`]).
        pub events: u64,
        /// Ops retired by the compiled executor.
        pub ops_retired: u64,
        /// Batch-occupancy histogram: number of dispatched per-device
        /// batches of size 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64–127, 128+.
        pub batch_hist: [u64; BATCH_BUCKETS],
        /// Events by target [`super::DeviceKind`], indexed by
        /// [`super::DeviceKind::index`].
        pub by_kind: [u64; KIND_COUNT],
        /// Vector-executor ingress dispatches.
        pub vector_batches: u64,
        /// Total PHV lanes processed by those dispatches
        /// (`vector_lanes / vector_batches` = mean occupancy).
        pub vector_lanes: u64,
    }

    impl ProfileSnapshot {
        /// Adds another snapshot's counters into this one (merging shard
        /// deltas of one experiment).
        pub fn absorb(&mut self, other: &ProfileSnapshot) {
            self.events += other.events;
            self.ops_retired += other.ops_retired;
            for (a, b) in self.batch_hist.iter_mut().zip(other.batch_hist) {
                *a += b;
            }
            for (a, b) in self.by_kind.iter_mut().zip(other.by_kind) {
                *a += b;
            }
            self.vector_batches += other.vector_batches;
            self.vector_lanes += other.vector_lanes;
        }

        /// Counter deltas since an earlier snapshot.
        pub fn delta_since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
            let mut d = *self;
            d.events -= earlier.events;
            d.ops_retired -= earlier.ops_retired;
            for (a, b) in d.batch_hist.iter_mut().zip(earlier.batch_hist) {
                *a -= b;
            }
            for (a, b) in d.by_kind.iter_mut().zip(earlier.by_kind) {
                *a -= b;
            }
            d.vector_batches -= earlier.vector_batches;
            d.vector_lanes -= earlier.vector_lanes;
            d
        }
    }

    /// The thread's cumulative profile counters.
    pub fn profile_snapshot() -> ProfileSnapshot {
        ProfileSnapshot {
            events: EVENTS.with(Cell::get),
            ops_retired: OPS.with(Cell::get),
            batch_hist: BATCH_HIST.with(Cell::get),
            by_kind: BY_KIND.with(Cell::get),
            vector_batches: VEC_BATCHES.with(Cell::get),
            vector_lanes: VEC_LANES.with(Cell::get),
        }
    }

    pub(super) fn record(events: u64, peak_queue: u64) {
        EVENTS.with(|c| c.set(c.get() + events));
        PEAK_QUEUE.with(|c| c.set(c.get().max(peak_queue)));
    }

    pub(super) fn record_batches(hist: [u64; BATCH_BUCKETS], by_kind: [u64; KIND_COUNT]) {
        BATCH_HIST.with(|c| {
            let mut cur = c.get();
            for (a, b) in cur.iter_mut().zip(hist) {
                *a += b;
            }
            c.set(cur);
        });
        BY_KIND.with(|c| {
            let mut cur = c.get();
            for (a, b) in cur.iter_mut().zip(by_kind) {
                *a += b;
            }
            c.set(cur);
        });
    }
}

/// Index of a device within its world.
pub type DeviceId = usize;

/// Emissions and wake requests produced by one device handler invocation
/// (or, with [`checkpoint`](Outbox::checkpoint) marks, by one *batch* of
/// invocations).
#[derive(Debug, Default)]
pub struct Outbox {
    /// Packets leaving the device: `(source port, packet, departure time)`.
    pub emits: Vec<(u16, SimPacket, SimTime)>,
    /// Timer requests: `(opaque token, fire time)`.
    pub wakes: Vec<(u64, SimTime)>,
    /// Segment boundaries `(wakes.len(), emits.len())` recorded between
    /// batch items, so a single batched flush can reproduce the per-event
    /// wakes-then-emits key-assignment order of the serial loop.
    marks: Vec<(usize, usize)>,
}

impl Outbox {
    /// Queues a packet emission out of `port` at time `at`.
    pub fn emit(&mut self, port: u16, pkt: SimPacket, at: SimTime) {
        self.emits.push((port, pkt, at));
    }

    /// Requests a wake callback with `token` at time `at`.
    pub fn wake_at(&mut self, token: u64, at: SimTime) {
        self.wakes.push((token, at));
    }

    /// Marks the end of one batch item's output.  The flush walks the
    /// marked segments in order, issuing each segment's wakes before its
    /// emissions — exactly the event keys a per-event flush would assign.
    pub fn checkpoint(&mut self) {
        self.marks.push((self.wakes.len(), self.emits.len()));
    }
}

/// Coarse device classification for the `--profile` event breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceKind {
    /// A programmable switch ([`crate::Switch`]).
    Switch,
    /// A device under test or traffic endpoint (servers, responders).
    Host,
    /// A terminal sink/collector.
    Sink,
    /// Anything unclassified.
    #[default]
    Other,
}

impl DeviceKind {
    /// Index into [`metrics::ProfileSnapshot::by_kind`].
    pub fn index(self) -> usize {
        match self {
            DeviceKind::Switch => 0,
            DeviceKind::Host => 1,
            DeviceKind::Sink => 2,
            DeviceKind::Other => 3,
        }
    }

    /// Stable lowercase name, for report keys.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Switch => "switch",
            DeviceKind::Host => "host",
            DeviceKind::Sink => "sink",
            DeviceKind::Other => "other",
        }
    }

    /// All kinds, in [`DeviceKind::index`] order.
    pub const ALL: [DeviceKind; 4] =
        [DeviceKind::Switch, DeviceKind::Host, DeviceKind::Sink, DeviceKind::Other];
}

/// One event of a batch handed to [`Device::rx_batch`].  Items of one
/// batch share a device but — under lookahead windowing — not necessarily
/// an instant, so each carries its own event time.
#[derive(Debug)]
pub enum BatchItem {
    /// A packet delivery on `port`.
    Deliver {
        /// Arrival port.
        port: u16,
        /// The packet.
        pkt: SimPacket,
        /// Event time of this delivery.
        at: SimTime,
    },
    /// A timer wake.
    Wake {
        /// The token passed to [`Outbox::wake_at`].
        token: u64,
        /// Fire time of this wake.
        at: SimTime,
    },
}

impl BatchItem {
    /// The event time of this item.
    pub fn at(&self) -> SimTime {
        match *self {
            BatchItem::Deliver { at, .. } | BatchItem::Wake { at, .. } => at,
        }
    }
}

/// A network element participating in the simulation.
///
/// Devices are `Send` so a partitioned world can move them onto engine
/// worker threads; they are still only ever driven by one thread at a time.
pub trait Device: Any + Send {
    /// Device name, for diagnostics.
    fn name(&self) -> &str;

    /// Handles a packet arriving on `port` at time `now`.
    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox);

    /// Handles a timer previously requested via [`Outbox::wake_at`].
    fn wake(&mut self, _token: u64, _now: SimTime, _out: &mut Outbox) {}

    /// Handles a batch of events, draining `items` in order.
    ///
    /// The world only batches events it has *proven* the serial loop would
    /// process back-to-back on this device (same instant, ordered before
    /// anything the batch itself can create — or, for devices with a
    /// nonzero [`lookahead`](Device::lookahead), a time window the
    /// lookahead guarantees no batch-created event can land inside), so an
    /// implementation must process items strictly in order at their own
    /// [`BatchItem::at`] times and call [`Outbox::checkpoint`] after each
    /// one — the default does exactly that by delegating to
    /// [`rx`](Device::rx)/[`wake`](Device::wake).  `now` is the first
    /// item's time.
    fn rx_batch(&mut self, items: &mut Vec<BatchItem>, now: SimTime, out: &mut Outbox) {
        let _ = now;
        for item in items.drain(..) {
            match item {
                BatchItem::Deliver { port, pkt, at } => self.rx(port, pkt, at, out),
                BatchItem::Wake { token, at } => self.wake(token, at, out),
            }
            out.checkpoint();
        }
    }

    /// Conservative lookahead: the minimum delta between an input event at
    /// `t` and the earliest event (emission arrival or wake) any handler of
    /// this device may create.  `0` (the default) promises nothing and
    /// keeps the device on the same-instant batching rule; a nonzero value
    /// lets the world widen batches across instants inside the lookahead
    /// window (`World::step_batch`'s windowed mode).  A device returning
    /// `t_la` here MUST never emit or wake earlier than `now + t_la` — the
    /// ordering proof of the windowed batch depends on it.
    fn lookahead(&self) -> SimTime {
        0
    }

    /// Coarse classification for the `--profile` event breakdown.
    fn device_kind(&self) -> DeviceKind {
        DeviceKind::Other
    }

    /// Upcast for typed post-run access ([`World::device`]).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Typed builder for a bidirectional link: propagation delay plus optional
/// fault injection.  The scenario layer's single extension point for link
/// impairments.
///
/// ```
/// # use ht_asic::sim::{LinkSpec, World};
/// # let mut w = World::builder().build().unwrap();
/// # let a = 0; let b = 0;
/// // w.link((a, 0), (b, 0), LinkSpec::new().delay(5_000).loss(0.01));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkSpec {
    delay: SimTime,
    drop_chance: f64,
    corrupt_chance: f64,
    jitter: SimTime,
}

impl LinkSpec {
    /// A zero-delay, fault-free link.
    pub fn new() -> Self {
        Self::default()
    }

    /// Propagation delay added to every delivery.
    pub fn delay(mut self, delay: SimTime) -> Self {
        self.delay = delay;
        self
    }

    /// Probability a packet is silently dropped.
    pub fn loss(mut self, chance: f64) -> Self {
        self.drop_chance = chance;
        self
    }

    /// Probability one header field gets a bit flipped.
    pub fn corrupt(mut self, chance: f64) -> Self {
        self.corrupt_chance = chance;
        self
    }

    /// Uniform random extra delay in `0..=jitter` per delivery.
    pub fn jitter(mut self, jitter: SimTime) -> Self {
        self.jitter = jitter;
        self
    }
}

/// One direction of a link out of a `(device, port)` endpoint.
#[derive(Debug, Clone)]
pub struct Link {
    /// Receiving endpoint.
    pub peer: (DeviceId, u16),
    /// Propagation delay added to every delivery.
    pub delay: SimTime,
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability one header field gets a bit flipped.
    pub corrupt_chance: f64,
    /// Uniform random extra delay in `0..=jitter` per delivery.
    pub jitter: SimTime,
}

impl Link {
    /// Whether this link consumes the world's fault RNG (drop, corruption
    /// or jitter) — any such link pins the world to the serial engine,
    /// because the RNG stream is defined by global event order.
    pub(crate) fn has_faults(&self) -> bool {
        self.drop_chance > 0.0 || self.corrupt_chance > 0.0 || self.jitter > 0
    }
}

/// Schedule-independent event ordering key.
///
/// Same-instant events order by `(birth, src, ctr)`: the instant the
/// creating handler ran, the creator's rank (pre-run injections first,
/// then devices by id, then mid-run injections), and a per-creator
/// monotone counter.  Unlike a global insertion sequence, the key is a
/// pure function of each device's own behavior, so the serial loop and a
/// partitioned run produce the identical pop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EvKey {
    /// Instant of the creating handler (0 for pre-run injections).
    pub(crate) birth: SimTime,
    /// Creator rank: [`EvKey::SRC_INJECT_PRE`], device id + 1, or
    /// [`EvKey::SRC_INJECT_MID`].
    pub(crate) src: u32,
    /// Per-creator monotone counter.
    pub(crate) ctr: u64,
}

impl EvKey {
    /// Rank of injections scheduled before the first event pops — they
    /// sort ahead of every same-instant device creation, matching the
    /// historical insertion-sequence order.
    pub(crate) const SRC_INJECT_PRE: u32 = 0;
    /// Rank of injections scheduled once the run has started — they sort
    /// after every same-instant creation made up to that point.
    pub(crate) const SRC_INJECT_MID: u32 = u32::MAX;

    /// The key a device-created event gets: the processing instant plus
    /// the device's own creation counter.
    #[inline]
    pub(crate) fn device(now: SimTime, device: DeviceId, ctr: u64) -> Self {
        EvKey { birth: now, src: device as u32 + 1, ctr }
    }
}

#[derive(Debug)]
pub(crate) enum EventKind {
    Deliver { device: DeviceId, port: u16, pkt: SimPacket },
    Wake { device: DeviceId, token: u64 },
}

impl EventKind {
    /// The device this event targets.
    pub(crate) fn device(&self) -> DeviceId {
        match *self {
            EventKind::Deliver { device, .. } | EventKind::Wake { device, .. } => device,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Event {
    at: SimTime,
    key: EvKey,
    /// Index of the payload in the queue's slab.  Keeping the
    /// [`EventKind`] out of line shrinks the entries the heap sifts (and
    /// the wheel's slots shift) from ~88 to 40 bytes.
    slot: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// Statistics of a world run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Events processed.
    pub events: u64,
    /// Packets dropped by link fault injection.
    pub link_drops: u64,
    /// Header fields corrupted by link fault injection.
    pub link_corruptions: u64,
    /// Emissions out of ports with no link attached.
    pub dangling_emits: u64,
}

/// Which event-queue implementation a [`World`] uses.
///
/// Both yield the identical `(at, key)` pop order, so results are
/// bit-for-bit equal either way; the choice only affects speed.  The
/// heap is kept for A/B benchmarking against the seed implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// The seed discipline: a binary heap, `O(log n)` per event.
    Heap,
    /// The hierarchical timer wheel ([`TimerWheel`]) — amortized `O(1)`.
    #[default]
    Wheel,
}

/// How many engine threads a partitioned run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimThreads {
    /// Draw extra engine threads from the shared pool configured via
    /// [`crate::parallel::budget`] (zero by default, so worlds stay
    /// serial unless `--sim-threads` granted capacity).
    Auto,
    /// Use exactly this many engines (clamped to the partition count),
    /// bypassing the shared pool.  `Fixed(1)` is the serial loop.
    Fixed(usize),
}

impl Default for SimThreads {
    fn default() -> Self {
        SimThreads::Fixed(1)
    }
}

/// Rejected [`World::builder`] configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldConfigError {
    /// `partitions(SimThreads::Fixed(0))` — a world needs at least one
    /// engine; use `Fixed(1)` for the serial loop.
    ZeroSimThreads,
}

impl std::fmt::Display for WorldConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldConfigError::ZeroSimThreads => {
                write!(f, "sim threads must be at least 1 (use SimThreads::Fixed(1) for serial)")
            }
        }
    }
}

impl std::error::Error for WorldConfigError {}

/// Builder for [`World`] — the only way to construct one.
///
/// Mirrors `TesterConfig::builder()`: chain setters, then
/// [`build`](Self::build) validates and returns the world.
///
/// ```
/// use ht_asic::sim::{QueueKind, SimThreads, World};
/// let w = World::builder()
///     .seed(42)
///     .queue(QueueKind::Wheel)
///     .partitions(SimThreads::Auto)
///     .build()
///     .unwrap();
/// assert_eq!(w.now(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    seed: u64,
    queue: QueueKind,
    partitions: SimThreads,
    trace: usize,
}

impl WorldBuilder {
    /// Seed of the fault-injection RNG (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Event-queue implementation (default: timer wheel).
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }

    /// Engine-thread policy for partitioned runs (default: serial).
    pub fn partitions(mut self, threads: SimThreads) -> Self {
        self.partitions = threads;
        self
    }

    /// Keep a ring of the last `depth` processed events ([`World::trace`]);
    /// 0 (the default) disables tracing.  The trace is merged
    /// deterministically across engines in partitioned runs.
    pub fn trace(mut self, depth: usize) -> Self {
        self.trace = depth;
        self
    }

    /// Validates the configuration and builds the world.
    pub fn build(self) -> Result<World, WorldConfigError> {
        if self.partitions == SimThreads::Fixed(0) {
            return Err(WorldConfigError::ZeroSimThreads);
        }
        Ok(World {
            devices: Vec::new(),
            links: HashMap::new(),
            link_table: Vec::new(),
            queue: EventQueue::new(self.queue),
            qkind: self.queue,
            scratch: Outbox::default(),
            now: 0,
            ctrs: Vec::new(),
            inj_ctr: 0,
            started: false,
            rng: StdRng::seed_from_u64(self.seed),
            sim_threads: self.partitions,
            trace_depth: self.trace,
            trace: Vec::new(),
            engine_peak: 0,
            stats: WorldStats::default(),
            batch_scratch: Vec::new(),
            batch_hist: [0; metrics::BATCH_BUCKETS],
            by_kind: [0; metrics::KIND_COUNT],
            lookaheads: Vec::new(),
            faulty_links: false,
            window_groups: Vec::new(),
            group_pool: Vec::new(),
        })
    }
}

/// What a [`TraceEntry`] recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet delivery.
    Deliver,
    /// A timer wake.
    Wake,
}

/// One processed event in the world's debug trace (see
/// [`WorldBuilder::trace`]).
#[derive(Debug, Clone, Copy)]
pub struct TraceEntry {
    /// Event time.
    pub at: SimTime,
    /// Ordering key (used to merge engine traces deterministically).
    pub key: EvKey,
    /// Target device.
    pub device: DeviceId,
    /// Delivery or wake.
    pub kind: TraceKind,
}

/// The ordering structure of an [`EventQueue`]: entries are `(at, key,
/// slab slot)` triples; payloads live in the owning queue's slab.
#[derive(Debug)]
enum QueueImpl {
    Heap { heap: BinaryHeap<Reverse<Event>>, peak: usize },
    Wheel(TimerWheel<u32, EvKey>),
}

/// The discrete-event queue: a heap or timer-wheel ordering structure
/// plus a slab holding the event payloads out of line, so ordering
/// operations move 40-byte entries instead of full [`EventKind`]s.
#[derive(Debug)]
pub(crate) struct EventQueue {
    q: QueueImpl,
    /// Payload store; `None` marks a free slot.
    slab: Vec<Option<EventKind>>,
    /// Free-slot indices, reused LIFO.
    free: Vec<u32>,
}

impl EventQueue {
    pub(crate) fn new(kind: QueueKind) -> Self {
        let q = match kind {
            QueueKind::Heap => QueueImpl::Heap { heap: BinaryHeap::new(), peak: 0 },
            QueueKind::Wheel => QueueImpl::Wheel(TimerWheel::new()),
        };
        EventQueue { q, slab: Vec::new(), free: Vec::new() }
    }

    fn alloc(&mut self, kind: EventKind) -> u32 {
        if let Some(s) = self.free.pop() {
            self.slab[s as usize] = Some(kind);
            s
        } else {
            self.slab.push(Some(kind));
            (self.slab.len() - 1) as u32
        }
    }

    fn take(&mut self, slot: u32) -> EventKind {
        self.free.push(slot);
        self.slab[slot as usize].take().expect("live slab slot")
    }

    pub(crate) fn push(&mut self, at: SimTime, key: EvKey, kind: EventKind) {
        let slot = self.alloc(kind);
        match &mut self.q {
            QueueImpl::Heap { heap, peak } => {
                heap.push(Reverse(Event { at, key, slot }));
                *peak = (*peak).max(heap.len());
            }
            QueueImpl::Wheel(w) => w.push(at, key, slot),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, EvKey, EventKind)> {
        let (at, key, slot) = match &mut self.q {
            QueueImpl::Heap { heap, .. } => heap.pop().map(|Reverse(e)| (e.at, e.key, e.slot))?,
            QueueImpl::Wheel(w) => w.pop()?,
        };
        Some((at, key, self.take(slot)))
    }

    /// Pops the next event only when `take` approves its `(at, key,
    /// kind)`; leaves the queue untouched otherwise.  The batching loop
    /// uses this instead of pop-then-push-back, which costs two extra
    /// heap sifts (or wheel inserts) every time a batch closes.
    pub(crate) fn pop_if(
        &mut self,
        take: impl FnOnce(SimTime, EvKey, &EventKind) -> bool,
    ) -> Option<(SimTime, EvKey, EventKind)> {
        let (at, key, slot) = match &mut self.q {
            QueueImpl::Heap { heap, .. } => {
                let Reverse(e) = heap.peek()?;
                (e.at, e.key, e.slot)
            }
            QueueImpl::Wheel(w) => {
                let (at, key, slot) = w.peek()?;
                (at, *key, *slot)
            }
        };
        let kind = self.slab[slot as usize].as_ref().expect("live slab slot");
        if !take(at, key, kind) {
            return None;
        }
        match &mut self.q {
            QueueImpl::Heap { heap, .. } => {
                heap.pop();
            }
            QueueImpl::Wheel(w) => {
                w.pop();
            }
        }
        Some((at, key, self.take(slot)))
    }

    /// Arrival time of the next event, without removing it.
    pub(crate) fn peek_min_at(&mut self) -> Option<SimTime> {
        match &mut self.q {
            QueueImpl::Heap { heap, .. } => heap.peek().map(|Reverse(e)| e.at),
            QueueImpl::Wheel(w) => w.peek_min_at(),
        }
    }

    pub(crate) fn peak_len(&self) -> usize {
        match &self.q {
            QueueImpl::Heap { peak, .. } => *peak,
            QueueImpl::Wheel(w) => w.peak_len(),
        }
    }
}

/// The simulation world.
pub struct World {
    pub(crate) devices: Vec<Box<dyn Device>>,
    pub(crate) links: HashMap<(DeviceId, u16), Link>,
    /// Flat `[device][port]` mirror of [`links`](Self::links): the serial
    /// hot loop resolves one link per emission, and a direct index beats
    /// hashing a `(DeviceId, u16)` tuple per event.  Rebuilt by
    /// [`link`](Self::link); the map stays the source of truth for the
    /// partitioned-engine splitter.
    link_table: Vec<Vec<Option<Link>>>,
    pub(crate) queue: EventQueue,
    pub(crate) qkind: QueueKind,
    /// Scratch outbox reused across [`step`](Self::step) calls so the two
    /// per-event `Vec` allocations of the seed implementation disappear.
    scratch: Outbox,
    pub(crate) now: SimTime,
    /// Per-device event-creation counters (the `ctr` of [`EvKey`]).
    pub(crate) ctrs: Vec<u64>,
    /// Injection counter shared by pre- and mid-run injections.
    inj_ctr: u64,
    /// Set once the first event pops; later injections rank
    /// [`EvKey::SRC_INJECT_MID`].
    pub(crate) started: bool,
    rng: StdRng,
    pub(crate) sim_threads: SimThreads,
    pub(crate) trace_depth: usize,
    pub(crate) trace: Vec<TraceEntry>,
    /// Deepest engine-local queue of any partitioned run (folded into
    /// [`peak_queue_depth`](Self::peak_queue_depth)).
    pub(crate) engine_peak: u64,
    /// Run statistics.
    pub stats: WorldStats,
    /// Reused buffer for same-instant batches.
    batch_scratch: Vec<BatchItem>,
    /// Batch-size histogram of this world (folded into [`metrics`] on
    /// drop).
    batch_hist: [u64; metrics::BATCH_BUCKETS],
    /// Events by target device kind (folded into [`metrics`] on drop).
    by_kind: [u64; metrics::KIND_COUNT],
    /// Per-device conservative lookahead ([`Device::lookahead`]), cached
    /// at [`add_device`](Self::add_device) time for the batching hot loop.
    lookaheads: Vec<SimTime>,
    /// Set when any link consumes the fault RNG (drop/corrupt/jitter).
    /// The RNG stream is defined by global flush order, so a faulty world
    /// must not reorder dispatch across devices — windowed batching is
    /// disabled and the same-instant rule applies everywhere.
    faulty_links: bool,
    /// Reused per-device groups of the windowed batcher.
    window_groups: Vec<WindowGroup>,
    /// Spare `(items, times)` buffers for [`WindowGroup`]s.
    group_pool: Vec<(Vec<BatchItem>, Vec<SimTime>)>,
}

/// One device's slice of a lookahead window: its items in pop order plus
/// their event times (parallel vectors; `times[i]` keys the flush segment
/// of `items[i]`).
struct WindowGroup {
    device: DeviceId,
    items: Vec<BatchItem>,
    times: Vec<SimTime>,
}

impl Drop for World {
    fn drop(&mut self) {
        // Fold this world's counters into the per-thread aggregate the
        // experiment harness reads (see [`metrics`]).
        metrics::record(self.stats.events, self.peak_queue_depth());
        metrics::record_batches(self.batch_hist, self.by_kind);
    }
}

impl World {
    /// Starts building a world (seed 1, wheel queue, serial, no trace).
    pub fn builder() -> WorldBuilder {
        WorldBuilder {
            seed: 1,
            queue: QueueKind::default(),
            partitions: SimThreads::default(),
            trace: 0,
        }
    }

    /// The deepest the event queue has ever been in this world (the
    /// engine-local maximum in partitioned runs).
    pub fn peak_queue_depth(&self) -> u64 {
        (self.queue.peak_len() as u64).max(self.engine_peak)
    }

    /// Adds a device, returning its id.
    pub fn add_device(&mut self, dev: Box<dyn Device>) -> DeviceId {
        self.lookaheads.push(dev.lookahead());
        self.devices.push(dev);
        self.ctrs.push(0);
        self.devices.len() - 1
    }

    /// Connects two endpoints bidirectionally as described by `spec`.
    ///
    /// # Panics
    /// Panics when a probability is outside `0..=1`.
    pub fn link(&mut self, a: (DeviceId, u16), b: (DeviceId, u16), spec: LinkSpec) {
        assert!((0.0..=1.0).contains(&spec.drop_chance));
        assert!((0.0..=1.0).contains(&spec.corrupt_chance));
        let mk = |peer| Link {
            peer,
            delay: spec.delay,
            drop_chance: spec.drop_chance,
            corrupt_chance: spec.corrupt_chance,
            jitter: spec.jitter,
        };
        self.links.insert(a, mk(b));
        self.links.insert(b, mk(a));
        self.faulty_links |= self.links[&a].has_faults();
        for (dev, port) in [a, b] {
            if self.link_table.len() <= dev {
                self.link_table.resize_with(dev + 1, Vec::new);
            }
            let ports = &mut self.link_table[dev];
            if ports.len() <= usize::from(port) {
                ports.resize(usize::from(port) + 1, None);
            }
            ports[usize::from(port)] = self.links[&(dev, port)].clone().into();
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The key for an externally injected event.  Pre-run injections rank
    /// before every same-instant device creation (they were queued first);
    /// mid-run injections rank after everything created so far.
    fn injection_key(&mut self) -> EvKey {
        let ctr = self.inj_ctr;
        self.inj_ctr += 1;
        if self.started {
            EvKey { birth: self.now, src: EvKey::SRC_INJECT_MID, ctr }
        } else {
            EvKey { birth: 0, src: EvKey::SRC_INJECT_PRE, ctr }
        }
    }

    /// Schedules a packet delivery straight into a device port (external
    /// traffic injection, e.g. templates from a test driver).
    pub fn schedule_rx(&mut self, device: DeviceId, port: u16, pkt: SimPacket, at: SimTime) {
        let key = self.injection_key();
        self.queue.push(at, key, EventKind::Deliver { device, port, pkt });
    }

    /// Schedules a wake for a device (external timer injection).
    pub fn schedule_wake(&mut self, device: DeviceId, token: u64, at: SimTime) {
        let key = self.injection_key();
        self.queue.push(at, key, EventKind::Wake { device, token });
    }

    /// Records a processed event in the debug trace, keeping the ring at
    /// most `2 * depth` long (the accessor serves the last `depth`).
    pub(crate) fn record_trace(
        trace: &mut Vec<TraceEntry>,
        depth: usize,
        at: SimTime,
        key: EvKey,
        kind: &EventKind,
    ) {
        if depth == 0 {
            return;
        }
        let (device, tk) = match kind {
            EventKind::Deliver { device, .. } => (*device, TraceKind::Deliver),
            EventKind::Wake { device, .. } => (*device, TraceKind::Wake),
        };
        trace.push(TraceEntry { at, key, device, kind: tk });
        if trace.len() >= depth * 2 {
            trace.drain(..trace.len() - depth);
        }
    }

    /// The last `trace` events processed (empty unless
    /// [`WorldBuilder::trace`] enabled tracing).
    pub fn trace(&self) -> &[TraceEntry] {
        let keep = self.trace.len().min(self.trace_depth);
        &self.trace[self.trace.len() - keep..]
    }

    /// Processes a single event.  Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, key, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.started = true;
        self.now = at;
        self.stats.events += 1;
        Self::record_trace(&mut self.trace, self.trace_depth, at, key, &kind);

        // Reuse the scratch outbox (its vectors keep their capacity) —
        // the seed implementation paid two Vec allocations per event.
        let mut out = std::mem::take(&mut self.scratch);
        let device = match kind {
            EventKind::Deliver { device, port, pkt } => {
                self.devices[device].rx(port, pkt, self.now, &mut out);
                device
            }
            EventKind::Wake { device, token } => {
                self.devices[device].wake(token, self.now, &mut out);
                device
            }
        };
        self.batch_hist[0] += 1;
        self.by_kind[self.devices[device].device_kind().index()] += 1;
        self.flush_outbox(device, &mut out);
        self.scratch = out;
        true
    }

    /// Histogram bucket of a dispatched batch of `n` items.
    fn batch_bucket(n: u64) -> usize {
        match n {
            1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            8..=15 => 3,
            16..=31 => 4,
            32..=63 => 5,
            64..=127 => 6,
            _ => 7,
        }
    }

    /// Processes the next ready event *and every immediately following
    /// event it can prove the serial loop would run in the same order*.
    ///
    /// Two proofs are in play, chosen by the first event's device:
    ///
    /// **Same-instant rule** (devices without a lookahead, or any world
    /// with fault-consuming links): followers must share the instant and
    /// the device, and be ordered (by [`EvKey`]) before any event this
    /// batch's own handlers can create.  Handlers can only create keys at
    /// `(now, device, ctr ≥ ctr₀)` where `ctr₀` is the device's counter
    /// when the batch starts, so any queued event below that bound pops
    /// before them under serial execution no matter when the handlers run.
    ///
    /// **Lookahead window** ([`step_window`](Self::step_window)): when the
    /// first event's device declares a nonzero [`Device::lookahead`], the
    /// batch may span instants and devices — see that method's proof.
    ///
    /// At most `max` events (capped at [`Self::MAX_BATCH`]) at or before
    /// `t_bound` are taken; a non-matching successor is never popped
    /// (peek-guarded), so the queue is left exactly as a serial loop
    /// would.  Returns the number of events processed (0 = queue empty).
    fn step_batch(&mut self, max: u64, t_bound: SimTime) -> u64 {
        let Some((at, key, kind)) = self.queue.pop() else {
            return 0;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.started = true;
        self.now = at;
        let device = kind.device();
        Self::record_trace(&mut self.trace, self.trace_depth, at, key, &kind);

        let la0 = self.lookaheads[device];
        if la0 > 0 && !self.faulty_links && max > 1 {
            return self.step_window(at, kind, la0, max, t_bound);
        }

        let bound = EvKey::device(at, device, self.ctrs[device]);
        let into_item = |kind: EventKind| match kind {
            EventKind::Deliver { port, pkt, .. } => BatchItem::Deliver { port, pkt, at },
            EventKind::Wake { token, .. } => BatchItem::Wake { token, at },
        };

        let cap = max.min(Self::MAX_BATCH);
        // Peek-guarded pop: a non-batchable successor (later instant,
        // other device, or not provably ordered before this batch's own
        // children) is never removed, so nothing is pushed back and
        // global order is trivially unchanged.
        let pop_follower = |queue: &mut EventQueue| {
            queue.pop_if(|at2, key2, kind2| at2 == at && kind2.device() == device && key2 < bound)
        };

        let mut out = std::mem::take(&mut self.scratch);
        let n;
        let second = if cap > 1 { pop_follower(&mut self.queue) } else { None };
        if let Some((at2, key2, kind2)) = second {
            Self::record_trace(&mut self.trace, self.trace_depth, at2, key2, &kind2);
            let mut batch = std::mem::take(&mut self.batch_scratch);
            batch.clear();
            batch.push(into_item(kind));
            batch.push(into_item(kind2));
            while (batch.len() as u64) < cap {
                let Some((at2, key2, kind2)) = pop_follower(&mut self.queue) else { break };
                Self::record_trace(&mut self.trace, self.trace_depth, at2, key2, &kind2);
                batch.push(into_item(kind2));
            }
            n = batch.len() as u64;
            self.devices[device].rx_batch(&mut batch, at, &mut out);
            debug_assert!(batch.is_empty(), "rx_batch must drain its items");
            batch.clear();
            self.batch_scratch = batch;
        } else {
            // Single event (the common case): dispatch directly, skipping
            // the batch buffer and checkpoint machinery entirely.
            n = 1;
            match kind {
                EventKind::Deliver { port, pkt, .. } => {
                    self.devices[device].rx(port, pkt, at, &mut out)
                }
                EventKind::Wake { token, .. } => self.devices[device].wake(token, at, &mut out),
            }
        }

        self.stats.events += n;
        self.batch_hist[Self::batch_bucket(n)] += 1;
        self.by_kind[self.devices[device].device_kind().index()] += n;
        self.flush_outbox(device, &mut out);
        self.scratch = out;
        n
    }

    /// Largest batch one [`step_batch`](Self::step_batch) call dispatches.
    const MAX_BATCH: u64 = 256;

    /// Windowed batching across instants and devices, rooted at an event
    /// of a device with conservative lookahead `la0`.
    ///
    /// The window is a *contiguous prefix* of the global `(at, key)` pop
    /// order: each candidate is the queue's current minimum and is taken
    /// only when (a) its time is `≤ t_bound`, (b) its time is strictly
    /// below the window horizon, and (c) its device declares a nonzero
    /// lookahead.  The horizon is `min` over member devices of
    /// `first_occurrence_time + lookahead`; any event a member handler
    /// creates from an item at `t` lands at `≥ t + lookahead ≥ horizon`,
    /// strictly after every window item, so the serial loop would process
    /// exactly these items in exactly this pop order before touching
    /// anything the window creates.
    ///
    /// Items are then dispatched grouped per device (per-device pop order
    /// preserved).  Cross-device dispatch reorder is invisible: devices
    /// interact only through events (which all land past the horizon),
    /// per-device [`EvKey`] counters advance in per-device order, and the
    /// fault RNG is untouched (the window only forms in fault-free
    /// worlds).  Created events take their creating item's time as key
    /// birth and clamp, via per-segment flushing, so keys are identical
    /// to the serial loop's.
    fn step_window(
        &mut self,
        at: SimTime,
        first: EventKind,
        la0: SimTime,
        max: u64,
        t_bound: SimTime,
    ) -> u64 {
        let device = first.device();
        let mut horizon = at.saturating_add(la0);
        let cap = max.min(Self::MAX_BATCH);

        let into_item = |kind: EventKind, at: SimTime| match kind {
            EventKind::Deliver { port, pkt, .. } => BatchItem::Deliver { port, pkt, at },
            EventKind::Wake { token, .. } => BatchItem::Wake { token, at },
        };

        let mut groups = std::mem::take(&mut self.window_groups);
        debug_assert!(groups.is_empty());
        let (items, times) = self.group_pool.pop().unwrap_or_default();
        groups.push(WindowGroup { device, items, times });
        groups[0].items.push(into_item(first, at));
        groups[0].times.push(at);

        let mut n: u64 = 1;
        let mut last_at = at;
        while n < cap {
            let la = &self.lookaheads;
            let popped = self.queue.pop_if(|at2, _key2, kind2| {
                at2 <= t_bound && at2 < horizon && la[kind2.device()] > 0
            });
            let Some((at2, key2, kind2)) = popped else { break };
            Self::record_trace(&mut self.trace, self.trace_depth, at2, key2, &kind2);
            let d2 = kind2.device();
            let mut gi = usize::MAX;
            for (i, g) in groups.iter().enumerate() {
                if g.device == d2 {
                    gi = i;
                    break;
                }
            }
            if gi == usize::MAX {
                // A joining device tightens the horizon; items already
                // taken are at times ≤ at2 < at2 + lookahead, so they
                // remain inside the tightened window.
                horizon = horizon.min(at2.saturating_add(self.lookaheads[d2]));
                let (items, times) = self.group_pool.pop().unwrap_or_default();
                groups.push(WindowGroup { device: d2, items, times });
                gi = groups.len() - 1;
            }
            groups[gi].items.push(into_item(kind2, at2));
            groups[gi].times.push(at2);
            last_at = at2;
            n += 1;
        }

        // The window is fully collected before any handler runs, so
        // advancing `now` to the last item keeps created-event clamping
        // (`at.max(seg_time)`) and the backwards-queue debug check honest.
        self.now = last_at;
        self.stats.events += n;
        let mut out = std::mem::take(&mut self.scratch);
        for g in &mut groups {
            let len = g.items.len() as u64;
            let dev = g.device;
            let base = g.times[0];
            self.batch_hist[Self::batch_bucket(len)] += 1;
            self.by_kind[self.devices[dev].device_kind().index()] += len;
            if len == 1 {
                let item = g.items.pop().expect("single-item group");
                match item {
                    BatchItem::Deliver { port, pkt, at } => {
                        self.devices[dev].rx(port, pkt, at, &mut out)
                    }
                    BatchItem::Wake { token, at } => self.devices[dev].wake(token, at, &mut out),
                }
                let times = [base];
                self.flush_segments(dev, &mut out, &times);
            } else {
                let mut items = std::mem::take(&mut g.items);
                let times = std::mem::take(&mut g.times);
                self.devices[dev].rx_batch(&mut items, base, &mut out);
                debug_assert!(items.is_empty(), "rx_batch must drain its items");
                self.flush_segments(dev, &mut out, &times);
                g.items = items;
                g.times = times;
            }
        }
        self.scratch = out;
        for mut g in groups.drain(..) {
            g.items.clear();
            g.times.clear();
            self.group_pool.push((g.items, g.times));
        }
        self.window_groups = groups;
        n
    }

    fn flush_outbox(&mut self, device: DeviceId, out: &mut Outbox) {
        self.flush_segments(device, out, &[]);
    }

    /// Flushes a batched outbox whose checkpoint segments carry their own
    /// event times: segment `i` (one batch item's output) uses
    /// `times[i]` — falling back to `self.now` past the end of `times` or
    /// when no times were supplied (the same-instant paths) — as the
    /// [`EvKey`] birth and the earliest-schedule clamp, exactly what a
    /// serial flush after that item's handler would have used.
    fn flush_segments(&mut self, device: DeviceId, out: &mut Outbox, times: &[SimTime]) {
        // Walk the checkpoint segments (one per batch item; the whole
        // outbox when no checkpoints were recorded), issuing each
        // segment's wakes before its emissions — the same key-assignment
        // and fault-RNG order as flushing after every handler separately.
        let mut wakes = std::mem::take(&mut out.wakes);
        let mut emits = std::mem::take(&mut out.emits);
        let marks = std::mem::take(&mut out.marks);
        let mut wakes_it = wakes.drain(..);
        let mut emits_it = emits.drain(..);
        let (mut w0, mut e0) = (0usize, 0usize);
        let final_mark = std::iter::once((wakes_it.len(), emits_it.len()));
        for (seg, (w1, e1)) in marks.iter().copied().chain(final_mark).enumerate() {
            let seg_now = times.get(seg).copied().unwrap_or(self.now);
            for (token, at) in wakes_it.by_ref().take(w1 - w0) {
                let key = EvKey::device(seg_now, device, self.ctrs[device]);
                self.ctrs[device] += 1;
                self.queue.push(at.max(seg_now), key, EventKind::Wake { device, token });
            }
            for (port, mut pkt, at) in emits_it.by_ref().take(e1 - e0) {
                let slot =
                    self.link_table.get(device).and_then(|ports| ports.get(usize::from(port)));
                let Some(Some(link)) = slot else {
                    self.stats.dangling_emits += 1;
                    continue;
                };
                let link = link.clone();
                if link.drop_chance > 0.0 && self.rng.gen_bool(link.drop_chance) {
                    self.stats.link_drops += 1;
                    continue;
                }
                if link.corrupt_chance > 0.0 && self.rng.gen_bool(link.corrupt_chance) {
                    // Flip one random bit in a random standard header
                    // field — the PHV-level analogue of a byte corruption
                    // on the wire.
                    let f = FieldId(self.rng.gen_range(0..fields::STANDARD_COUNT));
                    let bit = self.rng.gen_range(0..16u32);
                    let v = pkt.phv.get(f) ^ (1 << bit);
                    pkt.phv.set_masked(f, v, 64);
                    self.stats.link_corruptions += 1;
                }
                let mut delay = link.delay;
                if link.jitter > 0 {
                    delay += self.rng.gen_range(0..=link.jitter);
                }
                let key = EvKey::device(seg_now, device, self.ctrs[device]);
                self.ctrs[device] += 1;
                self.queue.push(
                    at.max(seg_now) + delay,
                    key,
                    EventKind::Deliver { device: link.peer.0, port: link.peer.1, pkt },
                );
            }
            (w0, e0) = (w1, e1);
        }
        drop(wakes_it);
        drop(emits_it);
        // Hand the (now empty) buffers back so their capacity is reused.
        out.wakes = wakes;
        out.emits = emits;
        out.marks = marks;
        out.marks.clear();
    }

    /// Runs until the queue drains or simulated time exceeds `t_end`
    /// (events beyond `t_end` stay queued).  Returns the number of events
    /// processed.
    ///
    /// When the topology splits into multiple device groups across
    /// nonzero-delay, fault-free links and the world was granted more than
    /// one engine thread ([`WorldBuilder::partitions`]), the run executes
    /// partitioned under the conservative-lookahead protocol; results are
    /// bit-identical to the serial loop either way.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        if let Some(n) = crate::parallel::try_run_until(self, t_end) {
            return n;
        }
        let mut n = 0;
        while let Some(at) = self.queue.peek_min_at() {
            if at > t_end {
                break;
            }
            // Batches never take an event past `t_end`: same-instant
            // batches share the popped event's instant, and windowed
            // batches bound every follower by `t_bound`.
            n += self.step_batch(u64::MAX, t_end);
        }
        self.now = self.now.max(t_end);
        n
    }

    /// Runs until the queue is empty or `max_events` is hit (a runaway
    /// guard for tests).  Always serial: "the queue is empty" is a global
    /// property no engine can observe locally.
    pub fn run_to_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            let k = self.step_batch(max_events - n, SimTime::MAX);
            if k == 0 {
                break;
            }
            n += k;
        }
        n
    }

    /// Typed access to a device after (or during) a run.
    ///
    /// # Panics
    /// Panics when the id is out of range or the type does not match.
    pub fn device<T: 'static>(&self, id: DeviceId) -> &T {
        self.devices[id].as_any().downcast_ref::<T>().expect("device type mismatch")
    }

    /// Typed mutable access to a device.
    pub fn device_mut<T: 'static>(&mut self, id: DeviceId) -> &mut T {
        self.devices[id].as_any_mut().downcast_mut::<T>().expect("device type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::FieldTable;

    /// Echoes every packet back out the port it arrived on after 10 ns.
    struct Echo {
        rx_times: Vec<SimTime>,
    }

    impl Device for Echo {
        fn name(&self) -> &str {
            "echo"
        }

        fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
            self.rx_times.push(now);
            out.emit(port, pkt, now + 10_000);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts received packets.
    struct Counter {
        count: u64,
        woken: Vec<u64>,
    }

    impl Device for Counter {
        fn name(&self) -> &str {
            "counter"
        }

        fn rx(&mut self, _port: u16, _pkt: SimPacket, _now: SimTime, _out: &mut Outbox) {
            self.count += 1;
        }

        fn wake(&mut self, token: u64, _now: SimTime, _out: &mut Outbox) {
            self.woken.push(token);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world(seed: u64) -> World {
        World::builder().seed(seed).build().unwrap()
    }

    fn blank_packet() -> SimPacket {
        let t = FieldTable::new();
        SimPacket { phv: t.new_phv(), body: None, uid: 0 }
    }

    #[test]
    fn delivery_respects_link_delay() {
        let mut w = world(1);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.link((e, 0), (c, 0), LinkSpec::new().delay(5_000));
        w.schedule_rx(e, 0, blank_packet(), 100);
        w.run_to_idle(100);
        // Echo got it at t=100, re-emitted at 110 ns, counter at 115 ns.
        assert_eq!(w.device::<Echo>(e).rx_times, vec![100]);
        assert_eq!(w.device::<Counter>(c).count, 1);
        assert_eq!(w.now(), 100 + 10_000 + 5_000);
    }

    #[test]
    fn wakes_fire_in_time_order() {
        let mut w = world(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.schedule_wake(c, 2, 200);
        w.schedule_wake(c, 1, 100);
        w.schedule_wake(c, 3, 300);
        w.run_to_idle(10);
        assert_eq!(w.device::<Counter>(c).woken, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_events_preserve_insertion_order() {
        let mut w = world(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        for token in 0..10 {
            w.schedule_wake(c, token, 500);
        }
        w.run_to_idle(100);
        assert_eq!(w.device::<Counter>(c).woken, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut w = world(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.schedule_wake(c, 1, 100);
        w.schedule_wake(c, 2, 1_000);
        let n = w.run_until(500);
        assert_eq!(n, 1);
        assert_eq!(w.now(), 500);
        w.run_to_idle(10);
        assert_eq!(w.device::<Counter>(c).woken, vec![1, 2]);
    }

    #[test]
    fn dangling_emission_is_counted_not_fatal() {
        let mut w = world(1);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        w.schedule_rx(e, 7, blank_packet(), 0); // port 7 has no link
        w.run_to_idle(10);
        assert_eq!(w.stats.dangling_emits, 1);
    }

    #[test]
    fn lossy_link_drops_roughly_the_configured_fraction() {
        let mut w = world(42);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.link((e, 0), (c, 0), LinkSpec::new().loss(0.3));
        for i in 0..1000 {
            w.schedule_rx(e, 0, blank_packet(), i * 100);
        }
        w.run_to_idle(10_000);
        let delivered = w.device::<Counter>(c).count;
        assert_eq!(delivered + w.stats.link_drops, 1000);
        assert!((500..900).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn heap_and_wheel_queues_agree() {
        // The same scripted scenario must produce identical device state
        // and stats under both queue implementations.
        let run = |kind: QueueKind| {
            let mut w = World::builder().seed(42).queue(kind).build().unwrap();
            let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
            let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
            w.link((e, 0), (c, 0), LinkSpec::new().delay(2_500).loss(0.2).corrupt(0.1));
            for i in 0..500 {
                w.schedule_rx(e, 0, blank_packet(), i * 137);
                if i % 7 == 0 {
                    w.schedule_wake(c, i, i * 137);
                }
            }
            w.run_to_idle(10_000);
            (w.device::<Echo>(e).rx_times.clone(), w.device::<Counter>(c).woken.clone(), w.stats)
        };
        assert_eq!(run(QueueKind::Heap), run(QueueKind::Wheel));
    }

    #[test]
    fn corrupting_link_flips_fields() {
        let mut w = world(7);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.link((e, 0), (c, 0), LinkSpec::new().corrupt(1.0));
        w.schedule_rx(e, 0, blank_packet(), 0);
        w.run_to_idle(10);
        assert_eq!(w.stats.link_corruptions, 1);
        assert_eq!(w.device::<Counter>(c).count, 1, "corrupted packets still deliver");
    }

    #[test]
    fn jittered_link_spreads_deliveries() {
        let mut w = world(5);
        let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.link((e, 0), (c, 0), LinkSpec::new().delay(1_000).jitter(500));
        for i in 0..50 {
            w.schedule_rx(e, 0, blank_packet(), i * 10_000);
        }
        w.run_to_idle(1_000);
        assert_eq!(w.device::<Counter>(c).count, 50, "jitter never loses packets");
    }

    #[test]
    fn builder_rejects_zero_threads() {
        let err =
            World::builder().partitions(SimThreads::Fixed(0)).build().map(|_| ()).unwrap_err();
        assert_eq!(err, WorldConfigError::ZeroSimThreads);
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn trace_keeps_the_last_events() {
        let mut w = World::builder().trace(3).build().unwrap();
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        for token in 0..10 {
            w.schedule_wake(c, token, 100 + token * 10);
        }
        w.run_to_idle(100);
        let t: Vec<SimTime> = w.trace().iter().map(|e| e.at).collect();
        assert_eq!(t, vec![170, 180, 190]);
        assert!(w.trace().iter().all(|e| e.kind == TraceKind::Wake && e.device == c));
    }

    #[test]
    fn batched_run_matches_single_stepping() {
        // Same-instant bursts exercise step_batch's gather path; the
        // batched loop must leave devices, stats, the clock and the fault
        // RNG exactly where the one-event-at-a-time loop does.
        let script = |w: &mut World| {
            let e = w.add_device(Box::new(Echo { rx_times: Vec::new() }));
            let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
            w.link((e, 0), (c, 0), LinkSpec::new().delay(2_500).loss(0.2).jitter(300));
            for i in 0..400u64 {
                // Four same-instant deliveries per burst, with wakes mixed
                // into some bursts.
                w.schedule_rx(e, 0, blank_packet(), (i / 4) * 1_000);
                if i % 3 == 0 {
                    w.schedule_wake(c, i, (i / 4) * 1_000);
                }
            }
            (e, c)
        };

        let mut serial = world(9);
        let (e1, c1) = script(&mut serial);
        let mut n_serial = 0u64;
        while serial.step() {
            n_serial += 1;
        }

        let mut batched = world(9);
        let (e2, c2) = script(&mut batched);
        let n_batched = batched.run_to_idle(u64::MAX);

        assert_eq!(n_batched, n_serial);
        assert_eq!(batched.device::<Echo>(e2).rx_times, serial.device::<Echo>(e1).rx_times);
        assert_eq!(batched.device::<Counter>(c2).woken, serial.device::<Counter>(c1).woken);
        assert_eq!(batched.device::<Counter>(c2).count, serial.device::<Counter>(c1).count);
        assert_eq!(batched.stats, serial.stats);
        assert_eq!(batched.now(), serial.now());
    }

    /// Emits each packet back out exactly its declared lookahead later —
    /// the minimal device exercising the windowed batcher.
    struct Paced {
        rx_times: Vec<SimTime>,
        la: SimTime,
    }

    impl Device for Paced {
        fn name(&self) -> &str {
            "paced"
        }

        fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
            self.rx_times.push(now);
            out.emit(port, pkt, now + self.la);
        }

        fn lookahead(&self) -> SimTime {
            self.la
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Absorbs packets and promises it never creates events.
    struct Absorb {
        rx_times: Vec<SimTime>,
    }

    impl Device for Absorb {
        fn name(&self) -> &str {
            "absorb"
        }

        fn rx(&mut self, _port: u16, _pkt: SimPacket, now: SimTime, _out: &mut Outbox) {
            self.rx_times.push(now);
        }

        fn lookahead(&self) -> SimTime {
            SimTime::MAX
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn windowed_run_matches_single_stepping() {
        // Dense cross-instant traffic through a lookahead device: the
        // windowed batcher must reproduce the serial loop's per-device
        // event times, stats and clock exactly, while actually forming
        // multi-event windows (the same-instant rule would see only
        // singletons here).
        let script = |w: &mut World| {
            let p = w.add_device(Box::new(Paced { rx_times: Vec::new(), la: 1_000 }));
            let a = w.add_device(Box::new(Absorb { rx_times: Vec::new() }));
            w.link((p, 0), (a, 0), LinkSpec::new());
            w.link((p, 1), (a, 1), LinkSpec::new());
            for i in 0..300u64 {
                w.schedule_rx(p, (i % 2) as u16, blank_packet(), i * 100);
            }
            (p, a)
        };

        let mut serial = world(7);
        let (p1, a1) = script(&mut serial);
        let mut n_serial = 0u64;
        while serial.queue.peek_min_at().is_some_and(|at| at <= 20_000) {
            serial.step();
            n_serial += 1;
        }

        let before = metrics::profile_snapshot();
        let mut batched = world(7);
        let (p2, a2) = script(&mut batched);
        let n_batched = batched.run_until(20_000);

        assert_eq!(n_batched, n_serial);
        assert_eq!(batched.device::<Paced>(p2).rx_times, serial.device::<Paced>(p1).rx_times);
        assert_eq!(batched.device::<Absorb>(a2).rx_times, serial.device::<Absorb>(a1).rx_times);
        assert_eq!(batched.stats, serial.stats);

        // Continuing past the bound still matches a full serial drain.
        while serial.step() {
            n_serial += 1;
        }
        let n2 = batched.run_to_idle(u64::MAX);
        assert_eq!(n_batched + n2, n_serial);
        assert_eq!(batched.device::<Absorb>(a2).rx_times, serial.device::<Absorb>(a1).rx_times);

        drop(batched);
        let d = metrics::profile_snapshot().delta_since(&before);
        assert!(
            d.batch_hist[0] < d.events,
            "windows never formed: {:?} over {} events",
            d.batch_hist,
            d.events
        );
    }

    #[test]
    fn windowed_batches_disable_under_link_faults() {
        // A fault-consuming link pins the world to the same-instant rule
        // (dispatch reorder would shift the fault RNG stream), and the
        // outcome still matches serial stepping.
        let script = |w: &mut World| {
            let p = w.add_device(Box::new(Paced { rx_times: Vec::new(), la: 1_000 }));
            let a = w.add_device(Box::new(Absorb { rx_times: Vec::new() }));
            w.link((p, 0), (a, 0), LinkSpec::new().loss(0.3));
            for i in 0..100u64 {
                w.schedule_rx(p, 0, blank_packet(), i * 100);
            }
            (p, a)
        };
        let mut serial = world(11);
        let (_, a1) = script(&mut serial);
        while serial.step() {}
        let mut batched = world(11);
        let (_, a2) = script(&mut batched);
        batched.run_to_idle(u64::MAX);
        assert_eq!(batched.device::<Absorb>(a2).rx_times, serial.device::<Absorb>(a1).rx_times);
        assert_eq!(batched.stats, serial.stats);
        assert!(batched.stats.link_drops > 0, "faults should have fired");
    }

    #[test]
    fn batched_run_to_idle_respects_the_event_cap() {
        // A burst bigger than the remaining budget must not overshoot.
        let mut w = world(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        for token in 0..20 {
            w.schedule_wake(c, token, 500);
        }
        assert_eq!(w.run_to_idle(7), 7);
        assert_eq!(w.device::<Counter>(c).woken, (0..7).collect::<Vec<_>>());
        assert_eq!(w.run_to_idle(100), 13);
    }

    #[test]
    fn profile_counters_track_events_and_batches() {
        let before = metrics::profile_snapshot();
        let mut w = world(3);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        for token in 0..32 {
            w.schedule_wake(c, token, 500);
        }
        w.run_to_idle(1_000);
        drop(w); // folds the world's histograms into the thread-locals
        let d = metrics::profile_snapshot().delta_since(&before);
        assert_eq!(d.events, 32);
        assert_eq!(d.by_kind.iter().sum::<u64>(), 32);
        // 32 same-instant wakes for one plain device gather into one
        // 32–63-bucket batch.
        assert_eq!(d.batch_hist, [0, 0, 0, 0, 0, 1, 0, 0]);
        assert_eq!(d.by_kind[DeviceKind::Other.index()], 32);
    }

    #[test]
    fn mid_run_injections_sort_after_prior_creations() {
        // An injection scheduled between runs lands after events the run
        // already created for the same instant — the historical
        // insertion-sequence order.
        let mut w = world(1);
        let c = w.add_device(Box::new(Counter { count: 0, woken: Vec::new() }));
        w.schedule_wake(c, 1, 100);
        w.run_until(200);
        w.schedule_wake(c, 2, 300);
        w.schedule_wake(c, 3, 300);
        w.run_to_idle(10);
        assert_eq!(w.device::<Counter>(c).woken, vec![1, 2, 3]);
    }
}
