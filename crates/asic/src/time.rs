//! Simulation time.
//!
//! The discrete-event simulator measures time in integer **picoseconds**.
//! The paper's calibration constants need sub-nanosecond resolution (one bit
//! at 100 Gbps is 10 ps; the minimal template inter-arrival is 6.4 ns), and
//! integer picoseconds keep all arithmetic exact: `u64` picoseconds cover
//! ~213 days of simulated time, far beyond any experiment here.

/// A point in simulated time, in picoseconds since simulation start.
pub type SimTime = u64;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// Converts nanoseconds to picoseconds.
pub const fn ns(v: u64) -> SimTime {
    v * PS_PER_NS
}

/// Converts microseconds to picoseconds.
pub const fn us(v: u64) -> SimTime {
    v * PS_PER_US
}

/// Converts milliseconds to picoseconds.
pub const fn ms(v: u64) -> SimTime {
    v * PS_PER_MS
}

/// Converts seconds to picoseconds.
pub const fn secs(v: u64) -> SimTime {
    v * PS_PER_SEC
}

/// Converts picoseconds to (fractional) nanoseconds, for reporting.
pub fn to_ns_f64(t: SimTime) -> f64 {
    t as f64 / PS_PER_NS as f64
}

/// Converts picoseconds to (fractional) seconds, for reporting.
pub fn to_secs_f64(t: SimTime) -> f64 {
    t as f64 / PS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(ns(1), 1_000);
        assert_eq!(us(1), 1_000 * ns(1));
        assert_eq!(ms(1), 1_000 * us(1));
        assert_eq!(secs(1), 1_000 * ms(1));
        assert_eq!(to_ns_f64(ns(570)), 570.0);
        assert_eq!(to_secs_f64(secs(2)), 2.0);
    }

    #[test]
    fn sub_ns_resolution() {
        // 6.4 ns — the paper's minimal template inter-arrival — is exact.
        assert_eq!(ns(64) / 10, 6_400);
        assert_eq!(to_ns_f64(6_400), 6.4);
    }
}
