//! Register arrays and the stateful ALU (SALU).
//!
//! Tofino exposes per-stage register arrays that a packet may access **once**
//! in a read-modify-write operation programmed into a small stateful ALU:
//! an optional comparison selects between two update expressions, and either
//! the pre-update or post-update value (or the comparison flag) can be
//! exported to a PHV field.  That single-access constraint is the reason the
//! paper's FIFO (Fig. 7) and cuckoo pipeline (Fig. 5) are laid out the way
//! they are, so the reproduction models registers through exactly this
//! interface: [`RegisterFile::execute`] is the only way the pipeline touches
//! register state.
//!
//! HyperTester's uses of SALUs:
//! * the replicator's rate-control timer — `if now − last ≥ interval { last = now }`,
//!   exporting the condition flag ("fire");
//! * the editor's per-template packet-id counters — unconditional `+1`,
//!   exporting the old value;
//! * the counter-based query engine's key/counter arrays;
//! * the FIFO front/rear counters, with the rear update guarded by the front
//!   value to prevent underflow.

use crate::phv::{mask_for, FieldId, FieldTable, Phv};

/// Identifies a register array within a [`RegisterFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegId(pub u16);

/// An operand of a SALU expression: a constant or a PHV field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluOperand {
    /// An immediate constant.
    Const(u64),
    /// The value of a PHV field at execution time.
    Field(FieldId),
}

impl SaluOperand {
    fn eval<A: SaluAccess + ?Sized>(&self, phv: &A) -> u64 {
        match *self {
            SaluOperand::Const(c) => c,
            SaluOperand::Field(f) => phv.get(f),
        }
    }
}

/// Field access as the SALU sees it — implemented by [`Phv`] (the scalar
/// executors) and by the vector executor's lane views, so one
/// [`RegisterFile::execute_on`] body serves both and their semantics
/// cannot drift.
pub trait SaluAccess {
    /// Reads a field.
    fn get(&self, f: FieldId) -> u64;
    /// Writes a field, masking to its declared width.
    fn set(&mut self, table: &FieldTable, f: FieldId, v: u64);
}

impl SaluAccess for Phv {
    #[inline]
    fn get(&self, f: FieldId) -> u64 {
        Phv::get(self, f)
    }

    #[inline]
    fn set(&mut self, table: &FieldTable, f: FieldId, v: u64) {
        Phv::set(self, table, f, v);
    }
}

/// Left-hand side of the SALU comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondExpr {
    /// The stored register value.
    Reg,
    /// An operand alone.
    Operand(SaluOperand),
    /// `operand − reg` (wrapping, masked to the register width) — the form
    /// the rate-control timer uses with a timestamp operand.
    OperandMinusReg(SaluOperand),
    /// `reg − operand` (wrapping, masked).
    RegMinusOperand(SaluOperand),
}

/// Comparison operators available to the SALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Cmp {
    pub(crate) fn test(&self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
        }
    }
}

/// The SALU predicate: `expr cmp rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaluCond {
    /// Left-hand expression.
    pub expr: CondExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand operand.
    pub rhs: SaluOperand,
}

/// Register update expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluUpdate {
    /// Leave the stored value unchanged.
    Keep,
    /// Store the operand.
    Set(SaluOperand),
    /// Add the operand (wrapping, masked to the register width).
    Add(SaluOperand),
    /// Subtract the operand (wrapping, masked).
    Sub(SaluOperand),
}

impl SaluUpdate {
    fn apply<A: SaluAccess + ?Sized>(&self, old: u64, phv: &A, mask: u64) -> u64 {
        match *self {
            SaluUpdate::Keep => old,
            SaluUpdate::Set(op) => op.eval(phv) & mask,
            SaluUpdate::Add(op) => old.wrapping_add(op.eval(phv)) & mask,
            SaluUpdate::Sub(op) => old.wrapping_sub(op.eval(phv)) & mask,
        }
    }
}

/// What the SALU exports to the PHV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluOutputSrc {
    /// The value before the update.
    OldValue,
    /// The value after the update.
    NewValue,
    /// 1 when the condition held, else 0.
    CondFlag,
}

/// Output configuration: write `src` into PHV field `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaluOutput {
    /// Destination PHV field.
    pub dst: FieldId,
    /// Which value to export.
    pub src: SaluOutputSrc,
}

/// A complete SALU program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaluProgram {
    /// Optional predicate; `None` behaves as always-true.
    pub condition: Option<SaluCond>,
    /// Update applied when the predicate holds (or unconditionally).
    pub on_true: SaluUpdate,
    /// Update applied when the predicate fails.
    pub on_false: SaluUpdate,
    /// Optional PHV export.
    pub output: Option<SaluOutput>,
}

impl SaluProgram {
    /// An unconditional read: keeps the value, exports the old value.
    pub fn read(dst: FieldId) -> Self {
        SaluProgram {
            condition: None,
            on_true: SaluUpdate::Keep,
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst, src: SaluOutputSrc::OldValue }),
        }
    }

    /// An unconditional write of an operand, with no export.
    pub fn write(value: SaluOperand) -> Self {
        SaluProgram {
            condition: None,
            on_true: SaluUpdate::Set(value),
            on_false: SaluUpdate::Set(value),
            output: None,
        }
    }

    /// `reg += 1`, exporting the pre-increment value — the paper's FIFO
    /// `update` operation and the editor's packet-id counter.
    pub fn fetch_add(dst: FieldId) -> Self {
        SaluProgram {
            condition: None,
            on_true: SaluUpdate::Add(SaluOperand::Const(1)),
            on_false: SaluUpdate::Add(SaluOperand::Const(1)),
            output: Some(SaluOutput { dst, src: SaluOutputSrc::OldValue }),
        }
    }
}

/// One register array: `depth` slots of `width` bits.
#[derive(Debug, Clone)]
pub struct RegisterArray {
    name: String,
    width: u32,
    values: Vec<u64>,
}

impl RegisterArray {
    /// Creates a zeroed array.
    pub fn new(name: &str, width: u32, depth: usize) -> Self {
        assert!((1..=64).contains(&width), "register width out of range: {width}");
        assert!(depth > 0, "register depth must be positive");
        RegisterArray { name: name.to_string(), width, values: vec![0; depth] }
    }

    /// Array name (for diagnostics and resource reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Slot width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of slots.
    pub fn depth(&self) -> usize {
        self.values.len()
    }

    /// Control-plane read of one slot (no SALU semantics — this is the PCIe
    /// path the switch CPU uses; see `ht-cpu` for its timing model).
    pub fn cp_read(&self, idx: usize) -> u64 {
        self.values[idx % self.values.len()]
    }

    /// Control-plane write of one slot.
    pub fn cp_write(&mut self, idx: usize, value: u64) {
        let mask = mask_for(self.width);
        let len = self.values.len();
        self.values[idx % len] = value & mask;
    }
}

/// One observed SALU overflow event: a `Set` whose operand exceeded the
/// lane (truncation) or an `Add`/`Sub` that wrapped the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapEvent {
    /// The register array the event happened in.
    pub reg: RegId,
    /// The slot that wrapped.
    pub slot: usize,
}

/// Cap on the retained [`WrapEvent`] log; the total counter keeps
/// counting past it.
pub const WRAP_LOG_CAP: usize = 64;

/// All register arrays of one pipeline, accessed by [`RegId`].
#[derive(Debug, Default)]
pub struct RegisterFile {
    arrays: Vec<RegisterArray>,
    trace_wraps: bool,
    wraps: u64,
    wrap_log: Vec<WrapEvent>,
}

impl RegisterFile {
    /// Creates an empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables (or disables) wrap tracing: while on, every SALU update
    /// that truncates or wraps its lane bumps [`RegisterFile::wraps`] and
    /// is appended to [`RegisterFile::wrap_log`] (capped at
    /// [`WRAP_LOG_CAP`] events).  Off by default — the hot path pays
    /// nothing for it.
    pub fn set_trace_wraps(&mut self, on: bool) {
        self.trace_wraps = on;
    }

    /// Total SALU wrap/truncation events observed while tracing.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// The retained wrap events, oldest first.
    pub fn wrap_log(&self) -> &[WrapEvent] {
        &self.wrap_log
    }

    /// Allocates an array, returning its id.
    pub fn alloc(&mut self, name: &str, width: u32, depth: usize) -> RegId {
        let id = RegId(u16::try_from(self.arrays.len()).expect("too many register arrays"));
        self.arrays.push(RegisterArray::new(name, width, depth));
        id
    }

    /// The array behind an id.
    pub fn array(&self, id: RegId) -> &RegisterArray {
        &self.arrays[id.0 as usize]
    }

    /// Mutable access for the control plane.
    pub fn array_mut(&mut self, id: RegId) -> &mut RegisterArray {
        &mut self.arrays[id.0 as usize]
    }

    /// Number of allocated arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether no arrays are allocated.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Iterates over all arrays (for resource accounting).
    pub fn iter(&self) -> impl Iterator<Item = &RegisterArray> {
        self.arrays.iter()
    }

    /// Executes one SALU read-modify-write on slot `idx` of array `id` —
    /// the packet's single access to that array.
    ///
    /// Returns the exported value (also written to the PHV when the program
    /// configures an output).  The index wraps modulo the array depth, like
    /// a hardware index truncated to the address width.
    pub fn execute(
        &mut self,
        id: RegId,
        idx: u64,
        program: &SaluProgram,
        phv: &mut Phv,
        table: &FieldTable,
    ) -> u64 {
        self.execute_on(id, idx, program, phv, table)
    }

    /// [`execute`](Self::execute) over any [`SaluAccess`] view — the
    /// vector executor runs SALUs on SoA lane views through this entry
    /// point, one lane at a time, so per-register access order is the
    /// lane (= packet) order.
    pub fn execute_on<A: SaluAccess + ?Sized>(
        &mut self,
        id: RegId,
        idx: u64,
        program: &SaluProgram,
        phv: &mut A,
        table: &FieldTable,
    ) -> u64 {
        let arr = &mut self.arrays[id.0 as usize];
        let mask = mask_for(arr.width);
        let slot = (idx as usize) % arr.values.len();
        let old = arr.values[slot];

        let cond = match &program.condition {
            None => true,
            Some(c) => {
                let lhs = match c.expr {
                    CondExpr::Reg => old,
                    CondExpr::Operand(op) => op.eval(phv) & mask,
                    CondExpr::OperandMinusReg(op) => (op.eval(phv).wrapping_sub(old)) & mask,
                    CondExpr::RegMinusOperand(op) => (old.wrapping_sub(op.eval(phv))) & mask,
                };
                c.cmp.test(lhs, c.rhs.eval(phv) & mask)
            }
        };

        let update = if cond { &program.on_true } else { &program.on_false };
        let new = update.apply(old, phv, mask);
        arr.values[slot] = new;

        if self.trace_wraps {
            // Exact overflow semantics of `SaluUpdate::apply`: `Set`
            // truncates when the raw operand exceeds the lane; `Add`
            // carries out of it; `Sub` borrows past zero (`old` is always
            // already lane-masked).
            let wrapped = match *update {
                SaluUpdate::Keep => false,
                SaluUpdate::Set(op) => op.eval(phv) > mask,
                SaluUpdate::Add(op) => {
                    u128::from(old) + u128::from(op.eval(phv)) > u128::from(mask)
                }
                SaluUpdate::Sub(op) => op.eval(phv) > old,
            };
            if wrapped {
                self.wraps += 1;
                if self.wrap_log.len() < WRAP_LOG_CAP {
                    self.wrap_log.push(WrapEvent { reg: id, slot });
                }
            }
        }

        match program.output {
            None => new,
            Some(out) => {
                let v = match out.src {
                    SaluOutputSrc::OldValue => old,
                    SaluOutputSrc::NewValue => new,
                    SaluOutputSrc::CondFlag => u64::from(cond),
                };
                phv.set(table, out.dst, v);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::fields;

    fn setup() -> (FieldTable, Phv, RegisterFile, RegId, FieldId) {
        let mut t = FieldTable::new();
        let scratch = t.intern("meta.scratch", 32);
        let phv = t.new_phv();
        let mut rf = RegisterFile::new();
        let r = rf.alloc("r", 32, 8);
        (t, phv, rf, r, scratch)
    }

    #[test]
    fn read_program_exports_without_modifying() {
        let (t, mut phv, mut rf, r, scratch) = setup();
        rf.array_mut(r).cp_write(3, 77);
        let v = rf.execute(r, 3, &SaluProgram::read(scratch), &mut phv, &t);
        assert_eq!(v, 77);
        assert_eq!(phv.get(scratch), 77);
        assert_eq!(rf.array(r).cp_read(3), 77);
    }

    #[test]
    fn fetch_add_returns_old_and_increments() {
        let (t, mut phv, mut rf, r, scratch) = setup();
        let p = SaluProgram::fetch_add(scratch);
        assert_eq!(rf.execute(r, 0, &p, &mut phv, &t), 0);
        assert_eq!(rf.execute(r, 0, &p, &mut phv, &t), 1);
        assert_eq!(rf.execute(r, 0, &p, &mut phv, &t), 2);
        assert_eq!(rf.array(r).cp_read(0), 3);
    }

    #[test]
    fn rate_timer_semantics() {
        // if (now − last ≥ interval) { last = now; fire = 1 } else { fire = 0 }
        let (t, mut phv, mut rf, r, fire) = setup();
        let now = fields::IG_TS;
        let prog = SaluProgram {
            condition: Some(SaluCond {
                expr: CondExpr::OperandMinusReg(SaluOperand::Field(now)),
                cmp: Cmp::Ge,
                rhs: SaluOperand::Const(100),
            }),
            on_true: SaluUpdate::Set(SaluOperand::Field(now)),
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst: fire, src: SaluOutputSrc::CondFlag }),
        };
        // t = 100: fires (100 − 0 ≥ 100), records 100.
        phv.set(&t, now, 100);
        rf.execute(r, 0, &prog, &mut phv, &t);
        assert_eq!(phv.get(fire), 1);
        // t = 150: does not fire.
        phv.set(&t, now, 150);
        rf.execute(r, 0, &prog, &mut phv, &t);
        assert_eq!(phv.get(fire), 0);
        assert_eq!(rf.array(r).cp_read(0), 100);
        // t = 200: fires again.
        phv.set(&t, now, 200);
        rf.execute(r, 0, &prog, &mut phv, &t);
        assert_eq!(phv.get(fire), 1);
        assert_eq!(rf.array(r).cp_read(0), 200);
    }

    #[test]
    fn guarded_rear_update_prevents_underflow_style_wrap() {
        // FIFO-rear-style: increment only while reg < operand.
        let (t, mut phv, mut rf, r, scratch) = setup();
        let prog = SaluProgram {
            condition: Some(SaluCond {
                expr: CondExpr::Reg,
                cmp: Cmp::Lt,
                rhs: SaluOperand::Const(2),
            }),
            on_true: SaluUpdate::Add(SaluOperand::Const(1)),
            on_false: SaluUpdate::Keep,
            output: Some(SaluOutput { dst: scratch, src: SaluOutputSrc::CondFlag }),
        };
        for expected in [1u64, 1, 0, 0] {
            rf.execute(r, 0, &prog, &mut phv, &t);
            assert_eq!(phv.get(scratch), expected);
        }
        assert_eq!(rf.array(r).cp_read(0), 2);
    }

    #[test]
    fn arithmetic_wraps_at_register_width() {
        let mut t = FieldTable::new();
        let scratch = t.intern("meta.scratch", 32);
        let mut phv = t.new_phv();
        let mut rf = RegisterFile::new();
        let r = rf.alloc("narrow", 8, 1);
        rf.array_mut(r).cp_write(0, 0xff);
        let p = SaluProgram::fetch_add(scratch);
        assert_eq!(rf.execute(r, 0, &p, &mut phv, &t), 0xff);
        assert_eq!(rf.array(r).cp_read(0), 0); // wrapped at 8 bits
    }

    #[test]
    fn index_wraps_modulo_depth() {
        let (t, mut phv, mut rf, r, scratch) = setup();
        rf.array_mut(r).cp_write(2, 5);
        let v = rf.execute(r, 10, &SaluProgram::read(scratch), &mut phv, &t); // 10 % 8 = 2
        assert_eq!(v, 5);
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn rejects_zero_width() {
        RegisterArray::new("bad", 0, 4);
    }
}
