//! A hierarchical timer wheel for the discrete-event queue.
//!
//! The simulation schedules almost every event a few hundred nanoseconds
//! into the future (recirculation RTTs, serialization delays, link
//! propagation), so a comparison-based priority queue pays `O(log n)` per
//! event for ordering information the timestamps' structure already gives
//! away.  The wheel buckets events by their arrival *tick* (2^12 ps ≈ 4 ns)
//! across `LEVELS` levels of `SLOTS` slots each — level `l` slot spans
//! `2^(12+6l)` ps — and keeps per-level occupancy bitmasks, so advancing to
//! the next event is a couple of `trailing_zeros` instructions.  Events
//! beyond the wheel horizon (2^48 ps ≈ 281 s) overflow into a fallback
//! binary heap and migrate in as the horizon advances.
//!
//! Ordering is `(at, key)` for a caller-chosen tie-break key `K: Ord` —
//! the world's schedule-independent [`EvKey`](crate::sim::EvKey) in
//! production, a plain insertion sequence (`u64`, the default) in tests:
//! events of the tick currently being served drain into a small "near"
//! buffer — a `Vec` kept sorted descending, so the minimum pops from the
//! back without heap sift machinery — and same-instant events still pop in
//! key order, keeping every run bit-for-bit deterministic.  A property test
//! (`crates/asic/tests/timerwheel_prop.rs`) checks the equivalence against
//! a reference heap under arbitrary push/pop interleavings.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Bitmask selecting a slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// log2 of the tick length in the caller's time unit (picoseconds here):
/// 2^12 ps = 4.096 ns, comfortably under the 6.4 ns minimal template
/// inter-arrival, so a tick rarely holds more than a handful of events.
const TICK_BITS: u32 = 12;

/// One queued entry: the priority key `(at, key)` plus the payload.
#[derive(Debug)]
struct Entry<T, K> {
    at: u64,
    key: K,
    item: T,
}

impl<T, K: Ord> PartialEq for Entry<T, K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<T, K: Ord> Eq for Entry<T, K> {}
impl<T, K: Ord> PartialOrd for Entry<T, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, K: Ord> Ord for Entry<T, K> {
    /// Reversed comparison so a max-`BinaryHeap` pops the *smallest*
    /// `(at, key)` first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, &other.key).cmp(&(self.at, &self.key))
    }
}

#[derive(Debug)]
struct Level<T, K> {
    /// Bitmask of non-empty slots.
    occupied: u64,
    slots: Vec<Vec<Entry<T, K>>>,
}

impl<T, K> Level<T, K> {
    fn new() -> Self {
        Level { occupied: 0, slots: (0..SLOTS).map(|_| Vec::new()).collect() }
    }
}

/// A hierarchical timer wheel ordered by `(at, key)`, with a heap fallback
/// for events beyond the wheel horizon.
#[derive(Debug)]
pub struct TimerWheel<T, K = u64> {
    levels: Vec<Level<T, K>>,
    /// Events of ticks `<= elapsed_tick`, kept sorted *descending* by
    /// `(at, key)` so the minimum pops from the back in O(1).
    near: Vec<Entry<T, K>>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Entry<T, K>>,
    /// Tick of the slot currently being served; the wheel cursor.
    elapsed_tick: u64,
    len: usize,
    peak: usize,
}

impl<T, K: Ord> Default for TimerWheel<T, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, K: Ord> TimerWheel<T, K> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            near: Vec::new(),
            overflow: BinaryHeap::new(),
            elapsed_tick: 0,
            len: 0,
            peak: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The largest number of events ever queued at once.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Queues `item` with priority `(at, key)`.  `key` must be unique
    /// across live entries of the same `at` (the world's event key).
    pub fn push(&mut self, at: u64, key: K, item: T) {
        self.len += 1;
        self.peak = self.peak.max(self.len);
        self.insert(Entry { at, key, item });
    }

    /// Removes and returns the minimum-`(at, key)` entry.
    pub fn pop(&mut self) -> Option<(u64, K, T)> {
        if !self.settle() {
            return None;
        }
        let e = self.near.pop().expect("settle guarantees a near event");
        self.len -= 1;
        Some((e.at, e.key, e.item))
    }

    /// The `at` of the next entry [`pop`](Self::pop) would return, without
    /// removing it.  (Advances internal cursors; ordering is unaffected.)
    pub fn peek_min_at(&mut self) -> Option<u64> {
        if self.settle() {
            self.near.last().map(|e| e.at)
        } else {
            None
        }
    }

    /// The full `(at, key, item)` of the next entry [`pop`](Self::pop)
    /// would return, without removing it.  (Advances internal cursors;
    /// ordering is unaffected.)
    pub fn peek(&mut self) -> Option<(u64, &K, &T)> {
        if self.settle() {
            self.near.last().map(|e| (e.at, &e.key, &e.item))
        } else {
            None
        }
    }

    fn tick_of(at: u64) -> u64 {
        at >> TICK_BITS
    }

    /// Inserts into the descending-sorted near buffer.  Near holds only the
    /// events of a single tick (a handful at most), so the linear shift is
    /// cheaper than heap sifts.
    fn push_near(near: &mut Vec<Entry<T, K>>, e: Entry<T, K>) {
        let key = (e.at, &e.key);
        let idx = near.partition_point(|x| (x.at, &x.key) > key);
        near.insert(idx, e);
    }

    /// Routes an entry to the near buffer, a wheel slot, or the overflow
    /// heap, based on its tick relative to the cursor.
    fn insert(&mut self, e: Entry<T, K>) {
        let tick = Self::tick_of(e.at);
        if tick <= self.elapsed_tick {
            Self::push_near(&mut self.near, e);
            return;
        }
        // The highest bit where the tick differs from the cursor picks the
        // level: events sharing all upper bits with the cursor go low.
        let masked = (tick ^ self.elapsed_tick) | SLOT_MASK;
        let sig = 63 - masked.leading_zeros();
        let level = (sig / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].slots[slot].push(e);
        self.levels[level].occupied |= 1 << slot;
    }

    /// The lowest occupied level's next slot: `(level, slot, start tick)`.
    ///
    /// Within a level, every occupied slot index is strictly greater than
    /// the cursor's slot index (a wrapped-around slot would differ from the
    /// cursor in a higher bit and live on a higher level), so the earliest
    /// slot is simply the lowest set occupancy bit, and the lowest occupied
    /// level always precedes every higher level.
    fn next_expiration(&self) -> Option<(usize, usize, u64)> {
        for (level, l) in self.levels.iter().enumerate() {
            if l.occupied != 0 {
                let slot = l.occupied.trailing_zeros() as u64;
                let shift = SLOT_BITS * level as u32;
                let span_mask = (1u64 << (shift + SLOT_BITS)) - 1;
                let tick = (self.elapsed_tick & !span_mask) | (slot << shift);
                return Some((level, slot as usize, tick));
            }
        }
        None
    }

    /// Advances cursors/cascades until the global minimum entry sits in the
    /// near heap.  Returns `false` when the wheel is empty.
    fn settle(&mut self) -> bool {
        loop {
            if !self.near.is_empty() {
                return true;
            }
            let exp = self.next_expiration();
            // Migrate overflow entries that now precede (or tie) the
            // wheel's next slot; they re-insert within the horizon.
            if let Some(o) = self.overflow.peek() {
                // (Empty on the hot path: the peek above compiles to a
                // length check, so the migration logic costs nothing.)
                let due = match exp {
                    Some((_, _, tick)) => Self::tick_of(o.at) <= tick,
                    None => true,
                };
                if due {
                    if exp.is_none() {
                        // Wheel empty: jump the cursor straight to the
                        // overflow minimum so it lands in `near`.
                        self.elapsed_tick = self.elapsed_tick.max(Self::tick_of(o.at));
                    }
                    // Migrate everything up to the bound tick (the next
                    // slot, or the new cursor when the wheel was empty);
                    // later overflow entries wait for the horizon.
                    let bound = match exp {
                        Some((_, _, tick)) => tick,
                        None => self.elapsed_tick,
                    };
                    while let Some(o) = self.overflow.peek() {
                        if Self::tick_of(o.at) > bound {
                            break;
                        }
                        let e = self.overflow.pop().expect("peeked");
                        self.insert(e);
                    }
                    continue;
                }
            }
            let Some((level, slot, tick)) = exp else {
                return false;
            };
            self.elapsed_tick = tick;
            self.levels[level].occupied &= !(1 << slot);
            // Drain the slot through the scratch buffer so the borrow on
            // the level ends before re-insertion.
            let mut drained = std::mem::take(&mut self.levels[level].slots[slot]);
            if level == 0 {
                // A level-0 slot holds exactly one tick — the new cursor
                // tick — so the whole slot IS the next near buffer.  Sort
                // it once (Entry's reversed Ord → descending `(at, key)`)
                // and swap buffers instead of re-routing entry by entry.
                drained.sort_unstable();
                if self.near.is_empty() {
                    std::mem::swap(&mut self.near, &mut drained);
                } else {
                    self.near.append(&mut drained);
                    self.near.sort_unstable();
                }
            } else {
                // Higher-level entries cascade strictly downward.
                for e in drained.drain(..) {
                    self.insert(e);
                }
            }
            // Hand the emptied buffer back to keep its capacity.
            self.levels[level].slots[slot] = drained;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_at_key_order() {
        let mut w = TimerWheel::new();
        w.push(5_000, 2u64, "b");
        w.push(5_000, 1, "a");
        w.push(100, 3, "first");
        w.push(10_000_000, 4, "late");
        assert_eq!(w.pop(), Some((100, 3, "first")));
        assert_eq!(w.pop(), Some((5_000, 1, "a")));
        assert_eq!(w.pop(), Some((5_000, 2, "b")));
        assert_eq!(w.pop(), Some((10_000_000, 4, "late")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        for (i, at) in [7u64, 70_000, 3, 9_999_999_999].into_iter().enumerate() {
            w.push(at, i as u64, at);
        }
        while let Some(at) = w.peek_min_at() {
            let (got, _, item) = w.pop().unwrap();
            assert_eq!(at, got);
            assert_eq!(item, got);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_beyond_horizon_still_orders() {
        let mut w = TimerWheel::new();
        let far = 1u64 << 55; // past the 2^48 ps wheel horizon
        w.push(far, 1u64, "far");
        w.push(far - 1, 2, "near-far");
        w.push(64, 3, "soon");
        assert_eq!(w.pop(), Some((64, 3, "soon")));
        assert_eq!(w.pop(), Some((far - 1, 2, "near-far")));
        assert_eq!(w.pop(), Some((far, 1, "far")));
    }

    #[test]
    fn interleaved_push_pop_after_advance() {
        let mut w = TimerWheel::new();
        w.push(1_000_000, 1u64, 1u32);
        assert_eq!(w.pop(), Some((1_000_000, 1, 1)));
        // Push "in the past" relative to the cursor: pops immediately.
        w.push(500, 2, 2);
        w.push(2_000_000, 3, 3);
        assert_eq!(w.pop(), Some((500, 2, 2)));
        assert_eq!(w.pop(), Some((2_000_000, 3, 3)));
    }

    #[test]
    fn peak_depth_tracks_maximum() {
        let mut w = TimerWheel::new();
        for i in 0..10 {
            w.push(i * 100, i, i);
        }
        for _ in 0..10 {
            w.pop();
        }
        w.push(1, 11, 11);
        assert_eq!(w.peak_len(), 10);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        // The production key is a struct; any `Ord` key must tie-break.
        let mut w: TimerWheel<&str, (u64, u32)> = TimerWheel::new();
        w.push(1_000, (5, 2), "later-src");
        w.push(1_000, (5, 1), "earlier-src");
        w.push(1_000, (4, 9), "earlier-birth");
        assert_eq!(w.pop(), Some((1_000, (4, 9), "earlier-birth")));
        assert_eq!(w.pop(), Some((1_000, (5, 1), "earlier-src")));
        assert_eq!(w.pop(), Some((1_000, (5, 2), "later-src")));
    }
}
