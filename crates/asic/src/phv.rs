//! The packet header vector (PHV) and field registry.
//!
//! The RMT parser decodes headers into a flat vector of field values that
//! the match-action pipeline operates on; the deparser writes the vector
//! back into bytes.  Fields are interned into a per-program [`FieldTable`]:
//! the standard Ethernet/IPv4/TCP/UDP fields and the intrinsic metadata are
//! pre-interned at fixed indices (module [`fields`]); programs may add their
//! own scratch metadata fields on top, mirroring P4 user metadata.
//!
//! Field values are stored as `u64` and masked to the field's declared bit
//! width on every write, so arithmetic wraps exactly like the hardware's
//! fixed-width ALUs.

use std::collections::HashMap;

/// Identifies a field within a program's [`FieldTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

/// Definition of one PHV field.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Dotted name, e.g. `ipv4.dst` or `meta.pkt_id`.
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u32,
}

/// Pre-interned standard fields.  The constants' indices must match the
/// order [`FieldTable::new`] inserts them in.
pub mod fields {
    use super::FieldId;

    /// Ethernet destination MAC (48 bits).
    pub const ETH_DST: FieldId = FieldId(0);
    /// Ethernet source MAC (48 bits).
    pub const ETH_SRC: FieldId = FieldId(1);
    /// EtherType (16 bits).
    pub const ETH_TYPE: FieldId = FieldId(2);
    /// IPv4 header valid bit.
    pub const IPV4_VALID: FieldId = FieldId(3);
    /// IPv4 total length (16 bits).
    pub const IPV4_TOTAL_LEN: FieldId = FieldId(4);
    /// IPv4 identification (16 bits).
    pub const IPV4_IDENT: FieldId = FieldId(5);
    /// IPv4 time-to-live (8 bits).
    pub const IPV4_TTL: FieldId = FieldId(6);
    /// IPv4 protocol (8 bits).
    pub const IPV4_PROTO: FieldId = FieldId(7);
    /// IPv4 source address (32 bits).
    pub const IPV4_SRC: FieldId = FieldId(8);
    /// IPv4 destination address (32 bits).
    pub const IPV4_DST: FieldId = FieldId(9);
    /// TCP header valid bit.
    pub const TCP_VALID: FieldId = FieldId(10);
    /// TCP source port (16 bits).
    pub const TCP_SPORT: FieldId = FieldId(11);
    /// TCP destination port (16 bits).
    pub const TCP_DPORT: FieldId = FieldId(12);
    /// TCP sequence number (32 bits).
    pub const TCP_SEQ: FieldId = FieldId(13);
    /// TCP acknowledgment number (32 bits).
    pub const TCP_ACK: FieldId = FieldId(14);
    /// TCP flags (8 bits).
    pub const TCP_FLAGS: FieldId = FieldId(15);
    /// TCP window (16 bits).
    pub const TCP_WINDOW: FieldId = FieldId(16);
    /// UDP header valid bit.
    pub const UDP_VALID: FieldId = FieldId(17);
    /// UDP source port (16 bits).
    pub const UDP_SPORT: FieldId = FieldId(18);
    /// UDP destination port (16 bits).
    pub const UDP_DPORT: FieldId = FieldId(19);

    // ---- intrinsic metadata ------------------------------------------------

    /// Frame length in bytes, including the virtual FCS (16 bits).
    pub const PKT_LEN: FieldId = FieldId(20);
    /// Ingress port number (16 bits).
    pub const IG_PORT: FieldId = FieldId(21);
    /// Ingress MAC timestamp, picoseconds (64 bits — the hardware's 48-bit
    /// nanosecond stamp scaled; see `timing`).
    pub const IG_TS: FieldId = FieldId(22);
    /// Egress (departure) timestamp, picoseconds (64 bits).
    pub const EG_TS: FieldId = FieldId(23);
    /// Unicast egress port selected by the ingress pipeline (16 bits).
    pub const EG_PORT: FieldId = FieldId(24);
    /// Multicast group selected by the ingress pipeline; 0 = none (16 bits).
    pub const MCAST_GRP: FieldId = FieldId(25);
    /// Replication id assigned by the multicast engine (16 bits).
    pub const RID: FieldId = FieldId(26);
    /// 1 when the packet should be recirculated after egress (1 bit).
    pub const RECIRC_FLAG: FieldId = FieldId(27);
    /// 1 when the packet is dropped (1 bit).
    pub const DROP_FLAG: FieldId = FieldId(28);
    /// Template id for template packets injected by the switch CPU; 0 for
    /// foreign packets (16 bits).
    pub const TEMPLATE_ID: FieldId = FieldId(29);

    /// Number of pre-interned fields.
    pub const STANDARD_COUNT: u16 = 30;
}

/// Per-program registry of PHV fields.
#[derive(Debug, Clone)]
pub struct FieldTable {
    defs: Vec<FieldDef>,
    by_name: HashMap<String, FieldId>,
}

impl Default for FieldTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FieldTable {
    /// Creates a table pre-populated with the standard fields of
    /// [`fields`], in the exact index order the constants assume.
    pub fn new() -> Self {
        let mut t = FieldTable { defs: Vec::new(), by_name: HashMap::new() };
        let std_fields: &[(&str, u32)] = &[
            ("eth.dst", 48),
            ("eth.src", 48),
            ("eth.type", 16),
            ("ipv4.valid", 1),
            ("ipv4.total_len", 16),
            ("ipv4.ident", 16),
            ("ipv4.ttl", 8),
            ("ipv4.proto", 8),
            ("ipv4.src", 32),
            ("ipv4.dst", 32),
            ("tcp.valid", 1),
            ("tcp.sport", 16),
            ("tcp.dport", 16),
            ("tcp.seq_no", 32),
            ("tcp.ack_no", 32),
            ("tcp.flags", 8),
            ("tcp.window", 16),
            ("udp.valid", 1),
            ("udp.sport", 16),
            ("udp.dport", 16),
            ("meta.pkt_len", 16),
            ("meta.ig_port", 16),
            ("meta.ig_ts", 64),
            ("meta.eg_ts", 64),
            ("meta.eg_port", 16),
            ("meta.mcast_grp", 16),
            ("meta.rid", 16),
            ("meta.recirc", 1),
            ("meta.drop", 1),
            ("meta.template_id", 16),
        ];
        for (name, width) in std_fields {
            t.intern(name, *width);
        }
        debug_assert_eq!(t.defs.len() as u16, fields::STANDARD_COUNT);
        t
    }

    /// Interns a field, returning its id.  Re-interning an existing name
    /// returns the existing id (the width must match).
    pub fn intern(&mut self, name: &str, width: u32) -> FieldId {
        assert!((1..=64).contains(&width), "field width out of range: {width}");
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.defs[id.0 as usize].width, width,
                "field {name} re-interned with a different width"
            );
            return id;
        }
        let id = FieldId(u16::try_from(self.defs.len()).expect("too many fields"));
        self.defs.push(FieldDef { name: name.to_string(), width });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks a field up by name.
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.by_name.get(name).copied()
    }

    /// The definition of a field.
    pub fn def(&self, id: FieldId) -> &FieldDef {
        &self.defs[id.0 as usize]
    }

    /// Bit width of a field.
    pub fn width(&self, id: FieldId) -> u32 {
        self.defs[id.0 as usize].width
    }

    /// The value mask of a field (`2^width − 1`).
    pub fn mask(&self, id: FieldId) -> u64 {
        mask_for(self.defs[id.0 as usize].width)
    }

    /// Number of interned fields.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the table is empty (never: standard fields are always there).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Allocates a fresh PHV for this table, all fields zero.  The slot
    /// buffer comes from the thread-local [`crate::arena`] pool and
    /// returns there on drop.
    pub fn new_phv(&self) -> Phv {
        Phv { values: PooledSlots(crate::arena::acquire(self.defs.len())) }
    }
}

/// The value mask for a bit width.
pub fn mask_for(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// The slot storage of a [`Phv`]: a plain `Vec<u64>` whose buffer is
/// drawn from and returned to the thread-local [`crate::arena`] pool, so
/// per-packet clone/drop cycles stop hitting the global allocator.
#[derive(Debug)]
struct PooledSlots(Vec<u64>);

impl Clone for PooledSlots {
    fn clone(&self) -> Self {
        PooledSlots(crate::arena::acquire_copy(&self.0))
    }
}

impl Drop for PooledSlots {
    fn drop(&mut self) {
        crate::arena::release(std::mem::take(&mut self.0));
    }
}

/// A packet header vector: one `u64` slot per interned field.
#[derive(Debug, Clone)]
pub struct Phv {
    values: PooledSlots,
}

impl PartialEq for Phv {
    fn eq(&self, other: &Self) -> bool {
        self.values.0 == other.values.0
    }
}
impl Eq for Phv {}

impl Phv {
    /// Reads a field.
    #[inline]
    pub fn get(&self, id: FieldId) -> u64 {
        self.values.0[id.0 as usize]
    }

    /// Writes a field, masking the value to `width` bits.  The width comes
    /// from the caller (usually via [`FieldTable::width`]) so the hot path
    /// avoids a second indirection.
    #[inline]
    pub fn set_masked(&mut self, id: FieldId, value: u64, width: u32) {
        self.values.0[id.0 as usize] = value & mask_for(width);
    }

    /// Writes a field using the table to mask to the declared width.
    #[inline]
    pub fn set(&mut self, table: &FieldTable, id: FieldId, value: u64) {
        self.set_masked(id, value, table.width(id));
    }

    /// Writes a field **without masking**.  The caller promises the value
    /// is already within the field's declared width — the compiled
    /// executor ([`crate::exec`]) bakes every mask into its ops at
    /// lowering time, so the decode loop stores raw words.
    #[inline]
    pub fn set_premasked(&mut self, id: FieldId, value: u64) {
        self.values.0[id.0 as usize] = value;
    }

    /// Writes several fields in one call.
    ///
    /// Semantically identical to calling [`set`](Self::set) per pair, but
    /// the hot per-packet paths (metadata reset on port ingress, multicast
    /// replica fix-up, MAC flush) issue one bounds-checked batch instead of
    /// eight separate calls, which the optimizer turns into straight-line
    /// stores.
    #[inline]
    pub fn set_batch(&mut self, table: &FieldTable, edits: &[(FieldId, u64)]) {
        for &(id, value) in edits {
            self.set_masked(id, value, table.width(id));
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.0.len()
    }

    /// Grows the PHV to at least `len` slots (new slots zero).  Used when a
    /// packet parsed by one device (with fewer user-metadata fields) enters
    /// a switch whose program interned more — metadata is per-program, so
    /// the extra slots simply start cleared.
    pub fn grow_to(&mut self, len: usize) {
        if self.values.0.len() < len {
            self.values.0.resize(len, 0);
        }
    }

    /// Whether the PHV has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_constants_match_interned_names() {
        let t = FieldTable::new();
        assert_eq!(t.lookup("ipv4.dst"), Some(fields::IPV4_DST));
        assert_eq!(t.lookup("tcp.flags"), Some(fields::TCP_FLAGS));
        assert_eq!(t.lookup("meta.template_id"), Some(fields::TEMPLATE_ID));
        assert_eq!(t.len(), fields::STANDARD_COUNT as usize);
        assert_eq!(t.width(fields::ETH_DST), 48);
        assert_eq!(t.width(fields::IPV4_TTL), 8);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern("meta.scratch", 32);
        let b = t.intern("meta.scratch", 32);
        assert_eq!(a, b);
        assert_eq!(t.len(), fields::STANDARD_COUNT as usize + 1);
    }

    #[test]
    #[should_panic(expected = "different width")]
    fn intern_width_conflict_panics() {
        let mut t = FieldTable::new();
        t.intern("meta.scratch", 32);
        t.intern("meta.scratch", 16);
    }

    #[test]
    fn phv_set_masks_to_width() {
        let t = FieldTable::new();
        let mut p = t.new_phv();
        p.set(&t, fields::IPV4_TTL, 0x1ff); // 8-bit field
        assert_eq!(p.get(fields::IPV4_TTL), 0xff);
        p.set(&t, fields::TCP_SPORT, 0x12345);
        assert_eq!(p.get(fields::TCP_SPORT), 0x2345);
        p.set(&t, fields::IG_TS, u64::MAX);
        assert_eq!(p.get(fields::IG_TS), u64::MAX);
    }

    #[test]
    fn mask_for_widths() {
        assert_eq!(mask_for(1), 1);
        assert_eq!(mask_for(16), 0xffff);
        assert_eq!(mask_for(48), 0xffff_ffff_ffff);
        assert_eq!(mask_for(64), u64::MAX);
    }

    #[test]
    fn fresh_phv_is_zeroed() {
        let t = FieldTable::new();
        let p = t.new_phv();
        assert_eq!(p.len(), t.len());
        assert!((0..p.len()).all(|i| p.get(FieldId(i as u16)) == 0));
    }
}
