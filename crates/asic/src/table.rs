//! Match-action tables.
//!
//! Four match kinds cover everything HyperTester compiles:
//!
//! * **Exact** — SRAM hash tables (exact key matching, forwarding, the
//!   false-positive resolution table of §5.2);
//! * **Ternary** — TCAM value/mask entries (the inverse-transform CDF range
//!   tables of §5.1 are lowered to ternary on Tofino);
//! * **Range** — priority-ordered range entries (a convenience the compiler
//!   expands to ternary for resource accounting);
//! * **Index** — direct-indexed action memory (the editor's value-list
//!   tables, indexed by packet id).
//!
//! A table can carry a *gateway*: the per-stage predicate unit that decides
//! whether the table applies (used to compile NTAPI `filter`).

use crate::action::ActionSet;
use crate::phv::{FieldId, Phv};
use std::collections::HashMap;

/// How a table matches its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Exact match on every key field.
    Exact,
    /// Value/mask match, highest priority wins.
    Ternary,
    /// Inclusive range per key field, highest priority wins.
    Range,
    /// Direct index by the (single) key field.
    Index,
}

/// A gateway predicate: `field cmp value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gateway {
    /// Field inspected.
    pub field: FieldId,
    /// Comparison.
    pub cmp: crate::register::Cmp,
    /// Constant right-hand side.
    pub value: u64,
}

impl Gateway {
    /// Evaluates the predicate against a PHV.
    pub fn eval(&self, phv: &Phv) -> bool {
        let lhs = phv.get(self.field);
        match self.cmp {
            crate::register::Cmp::Eq => lhs == self.value,
            crate::register::Cmp::Ne => lhs != self.value,
            crate::register::Cmp::Lt => lhs < self.value,
            crate::register::Cmp::Le => lhs <= self.value,
            crate::register::Cmp::Gt => lhs > self.value,
            crate::register::Cmp::Ge => lhs >= self.value,
        }
    }
}

/// Key of one table entry, shaped by the table's [`MatchKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchKey {
    /// One value per key field.
    Exact(Vec<u64>),
    /// One `(value, mask)` per key field.
    Ternary(Vec<(u64, u64)>),
    /// One inclusive `(lo, hi)` per key field.
    Range(Vec<(u64, u64)>),
    /// Direct index.
    Index(u64),
}

/// Errors from table configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The entry's key shape does not match the table's kind or key arity.
    KeyShape,
    /// The table is at capacity.
    Full,
    /// An `Index` entry is outside the table's size.
    IndexOutOfRange,
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::KeyShape => write!(f, "entry key does not match table kind/arity"),
            TableError::Full => write!(f, "table is full"),
            TableError::IndexOutOfRange => write!(f, "index entry outside table size"),
        }
    }
}

impl std::error::Error for TableError {}

#[derive(Debug, Clone)]
struct TernaryEntry {
    key: Vec<(u64, u64)>,
    priority: i32,
    action: ActionSet,
}

#[derive(Debug, Clone)]
struct RangeEntry {
    key: Vec<(u64, u64)>,
    priority: i32,
    action: ActionSet,
}

/// A match-action table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    kind: MatchKind,
    key_fields: Vec<FieldId>,
    capacity: usize,
    default_action: ActionSet,
    gateways: Vec<Gateway>,
    exact: HashMap<Vec<u64>, ActionSet>,
    ternary: Vec<TernaryEntry>,
    range: Vec<RangeEntry>,
    /// True while the range entries are single-key, equal-priority,
    /// non-overlapping and sorted by lower bound — the shape the compiler's
    /// inverse-CDF tables have, enabling binary-search lookup.
    range_sorted: bool,
    indexed: Vec<Option<ActionSet>>,
    /// Lookup counter, for tests and diagnostics.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

impl Table {
    /// Creates an empty table.
    ///
    /// `capacity` bounds the number of entries (SRAM/TCAM allocation); for
    /// `Index` tables it is the directly addressable size.
    pub fn new(
        name: &str,
        kind: MatchKind,
        key_fields: Vec<FieldId>,
        capacity: usize,
        default_action: ActionSet,
    ) -> Self {
        assert!(capacity > 0, "table capacity must be positive");
        if kind == MatchKind::Index {
            assert_eq!(key_fields.len(), 1, "index tables take exactly one key field");
        }
        let indexed = if kind == MatchKind::Index { vec![None; capacity] } else { Vec::new() };
        Table {
            name: name.to_string(),
            kind,
            key_fields,
            capacity,
            default_action,
            gateways: Vec::new(),
            exact: HashMap::new(),
            ternary: Vec::new(),
            range: Vec::new(),
            range_sorted: true,
            indexed,
            hits: 0,
            misses: 0,
        }
    }

    /// Attaches a gateway predicate; the table only applies when **all**
    /// attached predicates hold (each consumes one gateway unit).
    pub fn with_gateway(mut self, gw: Gateway) -> Self {
        self.gateways.push(gw);
        self
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Match kind.
    pub fn kind(&self) -> MatchKind {
        self.kind
    }

    /// Key fields.
    pub fn key_fields(&self) -> &[FieldId] {
        &self.key_fields
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The gateway predicates.
    pub fn gateways(&self) -> &[Gateway] {
        &self.gateways
    }

    /// Default action reference.
    pub fn default_action(&self) -> &ActionSet {
        &self.default_action
    }

    /// Whether range lookups take the sorted binary-search fast path
    /// (single-key, equal-priority, appended in ascending order).  The
    /// compiled executor mirrors the same split.
    pub(crate) fn range_fast_path(&self) -> bool {
        self.range_sorted
    }

    /// Number of installed entries.
    pub fn entry_count(&self) -> usize {
        match self.kind {
            MatchKind::Exact => self.exact.len(),
            MatchKind::Ternary => self.ternary.len(),
            MatchKind::Range => self.range.len(),
            MatchKind::Index => self.indexed.iter().filter(|e| e.is_some()).count(),
        }
    }

    /// Every action the table can execute: all installed entries plus the
    /// default action (last).  Static analysis walks this to find field
    /// reads/writes and SALU accesses without knowing the storage layout.
    pub fn actions(&self) -> impl Iterator<Item = &ActionSet> {
        let entries: Box<dyn Iterator<Item = &ActionSet>> = match self.kind {
            MatchKind::Exact => Box::new(self.exact.values()),
            MatchKind::Ternary => Box::new(self.ternary.iter().map(|e| &e.action)),
            MatchKind::Range => Box::new(self.range.iter().map(|e| &e.action)),
            MatchKind::Index => Box::new(self.indexed.iter().flatten()),
        };
        entries.chain(std::iter::once(&self.default_action))
    }

    /// Mutable variant of [`Table::actions`]: all installed entries plus
    /// the default action (last).  The fuzz oracle's differential checks
    /// use this to neutralize a single action in place (e.g. replace a
    /// provably-dead edit with `NoOp`) without reinstalling entries.
    pub fn actions_mut(&mut self) -> impl Iterator<Item = &mut ActionSet> {
        let entries: Box<dyn Iterator<Item = &mut ActionSet>> = match self.kind {
            MatchKind::Exact => Box::new(self.exact.values_mut()),
            MatchKind::Ternary => Box::new(self.ternary.iter_mut().map(|e| &mut e.action)),
            MatchKind::Range => Box::new(self.range.iter_mut().map(|e| &mut e.action)),
            MatchKind::Index => Box::new(self.indexed.iter_mut().flatten()),
        };
        entries.chain(std::iter::once(&mut self.default_action))
    }

    /// Every installed entry as `(key, priority, action)`, in a
    /// *deterministic* order regardless of insertion history: exact entries
    /// sorted by key, ternary/range entries in stored (priority) order,
    /// index entries by slot.  Exact and index priorities read as 0.
    ///
    /// Program fingerprinting and backend comparison walk this; the storage
    /// layout (hash map for exact) is not observable through it.
    pub fn entries(&self) -> Vec<(MatchKey, i32, &ActionSet)> {
        match self.kind {
            MatchKind::Exact => {
                let mut es: Vec<_> = self.exact.iter().collect();
                es.sort_by(|a, b| a.0.cmp(b.0));
                es.into_iter().map(|(k, a)| (MatchKey::Exact(k.clone()), 0, a)).collect()
            }
            MatchKind::Ternary => self
                .ternary
                .iter()
                .map(|e| (MatchKey::Ternary(e.key.clone()), e.priority, &e.action))
                .collect(),
            MatchKind::Range => self
                .range
                .iter()
                .map(|e| (MatchKey::Range(e.key.clone()), e.priority, &e.action))
                .collect(),
            MatchKind::Index => self
                .indexed
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.as_ref().map(|a| (MatchKey::Index(i as u64), 0, a)))
                .collect(),
        }
    }

    /// Largest VLIW op count across the default action and all entries —
    /// what the stage's instruction memory must provision.
    pub fn max_ops(&self) -> usize {
        self.actions().map(|a| a.ops.len()).max().unwrap_or(0)
    }

    /// Installs an entry.  `priority` orders ternary/range entries (higher
    /// wins); it is ignored for exact and index tables.
    pub fn insert(
        &mut self,
        key: MatchKey,
        action: ActionSet,
        priority: i32,
    ) -> Result<(), TableError> {
        if self.entry_count() >= self.capacity && self.kind != MatchKind::Index {
            return Err(TableError::Full);
        }
        match (self.kind, key) {
            (MatchKind::Exact, MatchKey::Exact(k)) => {
                if k.len() != self.key_fields.len() {
                    return Err(TableError::KeyShape);
                }
                self.exact.insert(k, action);
                Ok(())
            }
            (MatchKind::Ternary, MatchKey::Ternary(k)) => {
                if k.len() != self.key_fields.len() {
                    return Err(TableError::KeyShape);
                }
                self.ternary.push(TernaryEntry { key: k, priority, action });
                self.ternary.sort_by_key(|e| std::cmp::Reverse(e.priority));
                Ok(())
            }
            (MatchKind::Range, MatchKey::Range(k)) => {
                if k.len() != self.key_fields.len() {
                    return Err(TableError::KeyShape);
                }
                // Track whether the fast-path shape is preserved: one key
                // field, uniform priority, appended in ascending order.
                if self.key_fields.len() != 1
                    || priority != 0
                    || self.range.last().is_some_and(|prev| k[0].0 <= prev.key[0].1)
                {
                    self.range_sorted = false;
                }
                self.range.push(RangeEntry { key: k, priority, action });
                if !self.range_sorted {
                    self.range.sort_by_key(|e| std::cmp::Reverse(e.priority));
                }
                Ok(())
            }
            (MatchKind::Index, MatchKey::Index(i)) => {
                let slot = usize::try_from(i).map_err(|_| TableError::IndexOutOfRange)?;
                if slot >= self.capacity {
                    return Err(TableError::IndexOutOfRange);
                }
                self.indexed[slot] = Some(action);
                Ok(())
            }
            _ => Err(TableError::KeyShape),
        }
    }

    /// Looks up the action for a PHV.  Returns the default action on a miss
    /// and `None` when the gateway fails (table skipped entirely).
    pub fn lookup(&mut self, phv: &Phv) -> Option<&ActionSet> {
        if !self.gateways.iter().all(|gw| gw.eval(phv)) {
            return None;
        }
        // Up to 8 key fields on the stack; HyperTester's widest key is the
        // 5-tuple.
        let mut key_buf = [0u64; 8];
        let n = self.key_fields.len().min(8);
        for (slot, f) in key_buf.iter_mut().zip(&self.key_fields) {
            *slot = phv.get(*f);
        }
        let key = &key_buf[..n];

        let hit = match self.kind {
            MatchKind::Exact => self.exact.get(key),
            MatchKind::Ternary => self
                .ternary
                .iter()
                .find(|e| e.key.iter().zip(key).all(|(&(v, m), &k)| k & m == v & m))
                .map(|e| &e.action),
            MatchKind::Range if self.range_sorted => {
                // Sorted non-overlapping single-key ranges: binary search
                // for the last entry with lo ≤ key, then check hi.
                let k = key[0];
                let idx = self.range.partition_point(|e| e.key[0].0 <= k);
                idx.checked_sub(1)
                    .map(|i| &self.range[i])
                    .filter(|e| k <= e.key[0].1)
                    .map(|e| &e.action)
            }
            MatchKind::Range => self
                .range
                .iter()
                .find(|e| e.key.iter().zip(key).all(|(&(lo, hi), &k)| lo <= k && k <= hi))
                .map(|e| &e.action),
            MatchKind::Index => {
                self.indexed.get(key[0] as usize % self.capacity).and_then(|e| e.as_ref())
            }
        };
        match hit {
            Some(a) => {
                self.hits += 1;
                Some(a)
            }
            None => {
                self.misses += 1;
                Some(&self.default_action)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PrimitiveOp;
    use crate::phv::{fields, FieldTable};
    use crate::register::Cmp;

    fn mark(value: u64) -> ActionSet {
        ActionSet::new("mark", vec![PrimitiveOp::SetConst { dst: fields::TCP_WINDOW, value }])
    }

    fn phv_with(t: &FieldTable, f: FieldId, v: u64) -> Phv {
        let mut p = t.new_phv();
        p.set(t, f, v);
        p
    }

    #[test]
    fn exact_match_hits_and_misses() {
        let t = FieldTable::new();
        let mut tbl =
            Table::new("fwd", MatchKind::Exact, vec![fields::IPV4_DST], 16, ActionSet::nop());
        tbl.insert(MatchKey::Exact(vec![42]), mark(1), 0).unwrap();

        let hit = phv_with(&t, fields::IPV4_DST, 42);
        assert_eq!(tbl.lookup(&hit).unwrap().name, "mark");
        let miss = phv_with(&t, fields::IPV4_DST, 43);
        assert_eq!(tbl.lookup(&miss).unwrap().name, "NoAction");
        assert_eq!(tbl.hits, 1);
        assert_eq!(tbl.misses, 1);
    }

    #[test]
    fn ternary_priority_order() {
        let t = FieldTable::new();
        let mut tbl =
            Table::new("tern", MatchKind::Ternary, vec![fields::TCP_DPORT], 16, ActionSet::nop());
        // Low-priority catch-all and a high-priority specific entry.
        tbl.insert(MatchKey::Ternary(vec![(0, 0)]), mark(1), 1).unwrap();
        tbl.insert(MatchKey::Ternary(vec![(80, 0xffff)]), mark(2), 10).unwrap();

        let http = phv_with(&t, fields::TCP_DPORT, 80);
        let a = tbl.lookup(&http).unwrap();
        assert_eq!(a.ops, mark(2).ops);
        let other = phv_with(&t, fields::TCP_DPORT, 22);
        assert_eq!(tbl.lookup(&other).unwrap().ops, mark(1).ops);
    }

    #[test]
    fn range_match_inclusive_bounds() {
        let t = FieldTable::new();
        let mut tbl =
            Table::new("rng", MatchKind::Range, vec![fields::TCP_SPORT], 4, ActionSet::nop());
        tbl.insert(MatchKey::Range(vec![(100, 200)]), mark(1), 0).unwrap();
        for (v, hits) in [(99, false), (100, true), (200, true), (201, false)] {
            let p = phv_with(&t, fields::TCP_SPORT, v);
            let a = tbl.lookup(&p).unwrap();
            assert_eq!(a.name == "mark", hits, "value {v}");
        }
    }

    #[test]
    fn index_table_direct_addressing() {
        let t = FieldTable::new();
        let mut tbl = Table::new("idx", MatchKind::Index, vec![fields::RID], 4, ActionSet::nop());
        tbl.insert(MatchKey::Index(2), mark(9), 0).unwrap();
        let p = phv_with(&t, fields::RID, 2);
        assert_eq!(tbl.lookup(&p).unwrap().name, "mark");
        // Unfilled slot falls back to the default action.
        let p0 = phv_with(&t, fields::RID, 0);
        assert_eq!(tbl.lookup(&p0).unwrap().name, "NoAction");
        // Out-of-range insert is rejected.
        assert_eq!(
            tbl.insert(MatchKey::Index(4), mark(1), 0).unwrap_err(),
            TableError::IndexOutOfRange
        );
    }

    #[test]
    fn gateway_skips_table() {
        let t = FieldTable::new();
        let mut tbl =
            Table::new("gated", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
                .with_gateway(Gateway { field: fields::TCP_FLAGS, cmp: Cmp::Eq, value: 0x02 });
        let mut p = phv_with(&t, fields::TCP_FLAGS, 0x10); // ACK, not SYN
        assert!(tbl.lookup(&p).is_none());
        p.set(&t, fields::TCP_FLAGS, 0x02);
        assert!(tbl.lookup(&p).is_some());
    }

    #[test]
    fn capacity_enforced() {
        let mut tbl =
            Table::new("tiny", MatchKind::Exact, vec![fields::IPV4_DST], 1, ActionSet::nop());
        tbl.insert(MatchKey::Exact(vec![1]), mark(1), 0).unwrap();
        assert_eq!(tbl.insert(MatchKey::Exact(vec![2]), mark(2), 0).unwrap_err(), TableError::Full);
    }

    #[test]
    fn key_shape_mismatch_rejected() {
        let mut tbl = Table::new(
            "shape",
            MatchKind::Exact,
            vec![fields::IPV4_DST, fields::IPV4_SRC],
            4,
            ActionSet::nop(),
        );
        assert_eq!(
            tbl.insert(MatchKey::Exact(vec![1]), mark(1), 0).unwrap_err(),
            TableError::KeyShape
        );
        assert_eq!(
            tbl.insert(MatchKey::Ternary(vec![(1, 1), (2, 2)]), mark(1), 0).unwrap_err(),
            TableError::KeyShape
        );
    }

    #[test]
    fn max_ops_counts_widest_action() {
        let mut tbl =
            Table::new("ops", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop());
        let wide = ActionSet::new(
            "w",
            vec![
                PrimitiveOp::NoOp,
                PrimitiveOp::NoOp,
                PrimitiveOp::SetConst { dst: fields::TCP_WINDOW, value: 1 },
            ],
        );
        tbl.insert(MatchKey::Exact(vec![1]), wide, 0).unwrap();
        tbl.insert(MatchKey::Exact(vec![2]), mark(1), 0).unwrap();
        assert_eq!(tbl.max_ops(), 3);
    }
}

#[cfg(test)]
mod range_fast_path_tests {
    use super::*;
    use crate::action::{ActionSet, PrimitiveOp};
    use crate::phv::{fields, FieldTable};

    fn mark(v: u64) -> ActionSet {
        ActionSet::new("m", vec![PrimitiveOp::SetConst { dst: fields::TCP_WINDOW, value: v }])
    }

    /// Sorted single-key ranges (the CDF-table shape) take the
    /// binary-search path and agree with linear-scan semantics everywhere.
    #[test]
    fn sorted_ranges_binary_search_agrees_with_linear() {
        let ft = FieldTable::new();
        let mut fast =
            Table::new("fast", MatchKind::Range, vec![fields::TCP_SPORT], 64, ActionSet::nop());
        let mut slow =
            Table::new("slow", MatchKind::Range, vec![fields::TCP_SPORT], 64, ActionSet::nop());
        // fast: appended ascending (stays sorted); slow: forced off the
        // fast path via a non-zero priority.
        for (i, (lo, hi)) in [(10u64, 19u64), (20, 20), (25, 40), (50, 99)].iter().enumerate() {
            fast.insert(MatchKey::Range(vec![(*lo, *hi)]), mark(i as u64), 0).unwrap();
            slow.insert(MatchKey::Range(vec![(*lo, *hi)]), mark(i as u64), 1).unwrap();
        }
        assert!(fast.range_sorted);
        assert!(!slow.range_sorted);
        for probe in 0..120u64 {
            let mut phv = ft.new_phv();
            phv.set(&ft, fields::TCP_SPORT, probe);
            let a = fast.lookup(&phv).unwrap().ops.clone();
            let b = slow.lookup(&phv).unwrap().ops.clone();
            assert_eq!(a, b, "probe {probe}");
        }
    }

    /// Out-of-order insertion falls back to the linear path and still
    /// matches correctly.
    #[test]
    fn unsorted_insert_falls_back() {
        let ft = FieldTable::new();
        let mut t = Table::new("t", MatchKind::Range, vec![fields::TCP_SPORT], 8, ActionSet::nop());
        t.insert(MatchKey::Range(vec![(50, 99)]), mark(2), 0).unwrap();
        t.insert(MatchKey::Range(vec![(10, 19)]), mark(1), 0).unwrap(); // lo goes backwards
        assert!(!t.range_sorted);
        let mut phv = ft.new_phv();
        phv.set(&ft, fields::TCP_SPORT, 15);
        assert_eq!(t.lookup(&phv).unwrap().ops, mark(1).ops);
        phv.set(&ft, fields::TCP_SPORT, 60);
        assert_eq!(t.lookup(&phv).unwrap().ops, mark(2).ops);
    }
}
