//! The match-action pipeline: sequential stages of tables plus externs.
//!
//! RMT executes a packet through physical stages in order; within one stage,
//! tables run on disjoint resources.  The simulator preserves the *sequence*
//! semantics (stage 0's effects are visible to stage 1) and leaves physical
//! stage packing to the resource model.
//!
//! Complex stateful components — the paper's cuckoo query engine and the
//! KV/trigger FIFOs — are modeled as [`Extern`]s: callable units with access
//! to the PHV and the register file, whose per-packet behaviour matches what
//! their lowered tables would compute and whose declared
//! [`crate::resources::ResourceUsage`] accounts for that lowering (Table 7).

use crate::action::{execute, ActionSet, ExecCtx};
use crate::phv::{FieldId, Phv};
use crate::register::RegId;
use crate::resources::ResourceUsage;
use crate::table::Table;

/// A stateful pipeline component with table-equivalent semantics.
///
/// `Send` so the switch hosting the component can migrate onto a
/// partitioned-world engine thread (see [`crate::parallel`]).
pub trait Extern: std::fmt::Debug + Send {
    /// Component name, for diagnostics.
    fn name(&self) -> &str;

    /// Executes the component for one packet.
    fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>);

    /// Resources the lowered implementation would consume.
    fn resources(&self) -> ResourceUsage;

    /// PHV fields the component requires to be populated by earlier
    /// pipeline components (or the parser).  Purely internal scratch fields
    /// written and read within one execution are *not* listed.
    ///
    /// Declared for static analysis (`ht-lint`'s def-use pass); the default
    /// declares nothing.
    fn reads(&self) -> Vec<FieldId> {
        Vec::new()
    }

    /// PHV fields the component provides to later pipeline components.
    /// Internal scratch fields are not listed.
    fn writes(&self) -> Vec<FieldId> {
        Vec::new()
    }

    /// Register arrays the lowered implementation accesses.  Used by the
    /// SALU-discipline pass to detect arrays shared between an extern and
    /// ordinary table SALU ops.
    fn registers(&self) -> Vec<RegId> {
        Vec::new()
    }
}

/// One pipeline stage: its tables run in declaration order, then its
/// externs.
#[derive(Debug, Default)]
pub struct Stage {
    /// Match-action tables of the stage.
    pub tables: Vec<Table>,
    /// Stateful components of the stage.
    pub externs: Vec<Box<dyn Extern>>,
}

impl Stage {
    /// An empty stage.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An ingress or egress pipeline.
#[derive(Debug, Default)]
pub struct Pipeline {
    /// Stages, executed in order.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage holding a single table, returning `(stage, table)`
    /// indices for later lookup.
    pub fn push_table(&mut self, table: Table) -> (usize, usize) {
        let mut stage = Stage::new();
        stage.tables.push(table);
        self.stages.push(stage);
        (self.stages.len() - 1, 0)
    }

    /// Appends a stage holding a single extern, returning the stage index.
    pub fn push_extern(&mut self, ext: Box<dyn Extern>) -> usize {
        let mut stage = Stage::new();
        stage.externs.push(ext);
        self.stages.push(stage);
        self.stages.len() - 1
    }

    /// Mutable access to a table by `(stage, table)` index.
    pub fn table_mut(&mut self, loc: (usize, usize)) -> &mut Table {
        &mut self.stages[loc.0].tables[loc.1]
    }

    /// Executes the pipeline for one packet.
    pub fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
        for stage in &mut self.stages {
            for table in &mut stage.tables {
                // Clone the matched action out of the table so the borrow on
                // `table` ends before executing (actions may not touch
                // tables, only the PHV/registers/rng/digests).  Actions are
                // small (a handful of ops); the clone is cheap relative to
                // the lookup.
                let action: Option<ActionSet> = table.lookup(phv).cloned();
                if let Some(a) = action {
                    execute(&a, phv, ctx);
                }
            }
            for ext in &mut stage.externs {
                ext.execute(phv, ctx);
            }
        }
    }

    /// Total declared resource usage of all tables, externs and (separately
    /// accounted) register arrays live in `ResourceUsage` reports.
    pub fn table_resources(&self) -> ResourceUsage {
        let mut total = ResourceUsage::default();
        for stage in &self.stages {
            for t in &stage.tables {
                total += crate::resources::table_usage(t);
            }
            for e in &stage.externs {
                total += e.resources();
            }
        }
        total
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PrimitiveOp;
    use crate::digest::DigestRecord;
    use crate::phv::{fields, FieldTable};
    use crate::register::RegisterFile;
    use crate::table::{MatchKey, MatchKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug)]
    struct CountingExtern {
        count: u64,
    }

    impl Extern for CountingExtern {
        fn name(&self) -> &str {
            "counting"
        }

        fn execute(&mut self, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
            self.count += 1;
            phv.set(ctx.table, fields::TCP_WINDOW, self.count);
        }

        fn resources(&self) -> ResourceUsage {
            ResourceUsage::default()
        }
    }

    #[test]
    fn stages_execute_in_order_with_visible_effects() {
        let ft = FieldTable::new();
        let mut pipe = Pipeline::new();

        // Stage 0: set tcp.sport = 7 for every packet.
        let t0 = Table::new(
            "s0",
            MatchKind::Exact,
            vec![fields::IPV4_DST],
            4,
            ActionSet::new(
                "init",
                vec![PrimitiveOp::SetConst { dst: fields::TCP_SPORT, value: 7 }],
            ),
        );
        pipe.push_table(t0);

        // Stage 1: match on the value stage 0 just wrote.
        let mut t1 =
            Table::new("s1", MatchKind::Exact, vec![fields::TCP_SPORT], 4, ActionSet::nop());
        t1.insert(
            MatchKey::Exact(vec![7]),
            ActionSet::new(
                "hit",
                vec![PrimitiveOp::SetConst { dst: fields::TCP_DPORT, value: 99 }],
            ),
            0,
        )
        .unwrap();
        pipe.push_table(t1);

        let mut phv = ft.new_phv();
        let mut regs = RegisterFile::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut digests: Vec<DigestRecord> = Vec::new();
        let mut ctx =
            ExecCtx { table: &ft, regs: &mut regs, rng: &mut rng, digests: &mut digests, now: 0 };
        pipe.execute(&mut phv, &mut ctx);

        assert_eq!(phv.get(fields::TCP_SPORT), 7);
        assert_eq!(phv.get(fields::TCP_DPORT), 99, "stage 1 must see stage 0's write");
    }

    #[test]
    fn externs_run_after_tables_and_keep_state() {
        let ft = FieldTable::new();
        let mut pipe = Pipeline::new();
        pipe.push_extern(Box::new(CountingExtern { count: 0 }));

        let mut regs = RegisterFile::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut digests: Vec<DigestRecord> = Vec::new();
        for i in 1..=3u64 {
            let mut phv = ft.new_phv();
            let mut ctx = ExecCtx {
                table: &ft,
                regs: &mut regs,
                rng: &mut rng,
                digests: &mut digests,
                now: 0,
            };
            pipe.execute(&mut phv, &mut ctx);
            assert_eq!(phv.get(fields::TCP_WINDOW), i);
        }
    }

    #[test]
    fn empty_pipeline_is_a_no_op() {
        let ft = FieldTable::new();
        let mut pipe = Pipeline::new();
        assert!(pipe.is_empty());
        let mut phv = ft.new_phv();
        let before = phv.clone();
        let mut regs = RegisterFile::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut digests: Vec<DigestRecord> = Vec::new();
        let mut ctx =
            ExecCtx { table: &ft, regs: &mut regs, rng: &mut rng, digests: &mut digests, now: 0 };
        pipe.execute(&mut phv, &mut ctx);
        assert_eq!(phv, before);
    }
}
