//! A multiply–xor hasher (FxHash-style) for hot-path hash maps.
//!
//! The simulator's inner loops key maps by small integers and short
//! `u64` slices — table-entry keys, port numbers, device ids — where the
//! default SipHash's per-lookup setup cost is measurable and its DoS
//! resistance buys nothing (every key comes from the task spec or the
//! topology, not from untrusted input).  This hasher folds each word
//! with a rotate–xor–multiply round, the same scheme rustc uses
//! internally.

use std::hash::{BuildHasherDefault, Hasher};

/// The hasher state: one folded word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    /// Knuth's 2^64 golden-ratio constant, the multiplicative mixer.
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FxHashMap<u16, u32> = FxHashMap::default();
        for p in 0..256u16 {
            m.insert(p, u32::from(p) + 1);
        }
        assert_eq!(m.len(), 256);
        for p in 0..256u16 {
            assert_eq!(m[&p], u32::from(p) + 1);
        }
    }

    #[test]
    fn slice_and_word_paths_agree_with_themselves() {
        use std::hash::BuildHasher;
        let b = FxBuild::default();
        let h1 = b.hash_one([1u64, 2, 3].as_slice());
        let h2 = b.hash_one([1u64, 2, 3].as_slice());
        assert_eq!(h1, h2);
    }
}
