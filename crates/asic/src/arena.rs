//! Thread-local slab recycling for per-packet allocations.
//!
//! Every packet in flight owns a PHV — a `Vec<u64>` of field slots — and
//! the simulator clones one per template copy, per multicast replica, and
//! per recirculation hop.  With a global allocator that is one
//! malloc/free pair per packet on the hottest path of the whole simulator.
//! This module keeps a per-thread free list of retired slot buffers:
//! [`Phv`](crate::phv::Phv) buffers are drawn from the pool on
//! allocation/clone and returned on drop, so a steady-state simulation
//! world performs (almost) no allocator traffic per packet.
//!
//! Worlds are single-threaded (parallelism is across experiment worlds, one
//! per worker thread), so a plain `thread_local!` free list needs no
//! locking.  [`stats`] exposes hit/miss counters per thread so the
//! optimization is provable — the benchmark harness records them per
//! experiment in `BENCH.json`.  [`set_pooling`]`(false)` degrades to the
//! plain allocator, which the hot-path A/B benchmark uses to measure the
//! seed behavior.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};

/// Upper bound on pooled buffers per thread; beyond it, retired buffers
/// fall back to the allocator (a world in teardown releases thousands at
/// once and the next world rarely needs them all).
const POOL_CAP: usize = 8192;

/// Global switch: when `false`, acquire/release degrade to plain
/// allocation (the pre-arena behavior), for A/B measurements.
static POOLING: AtomicBool = AtomicBool::new(true);

/// Enables or disables buffer pooling process-wide.  Only meant for
/// controlled A/B benchmarks; flip it while worlds are live and buffers
/// simply stop being recycled (correctness is unaffected).
pub fn set_pooling(enabled: bool) {
    POOLING.store(enabled, Ordering::Relaxed);
}

/// Whether pooling is currently enabled.
pub fn pooling() -> bool {
    POOLING.load(Ordering::Relaxed)
}

/// Allocation counters of the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers created fresh from the allocator.
    pub allocs: u64,
    /// Buffers served from the thread-local free list.
    pub reuses: u64,
    /// Buffers returned to the free list on drop.
    pub returns: u64,
}

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static REUSES: Cell<u64> = const { Cell::new(0) };
    static RETURNS: Cell<u64> = const { Cell::new(0) };
}

/// A zeroed buffer of exactly `len` slots, recycled when possible.
pub(crate) fn acquire(len: usize) -> Vec<u64> {
    if pooling() {
        if let Some(mut v) = POOL.with(|p| p.borrow_mut().pop()) {
            REUSES.with(|c| c.set(c.get() + 1));
            v.clear();
            v.resize(len, 0);
            return v;
        }
    }
    ALLOCS.with(|c| c.set(c.get() + 1));
    vec![0; len]
}

/// A recycled buffer holding a copy of `src` (the clone path — skips the
/// zero fill [`acquire`] pays).
pub(crate) fn acquire_copy(src: &[u64]) -> Vec<u64> {
    if pooling() {
        if let Some(mut v) = POOL.with(|p| p.borrow_mut().pop()) {
            REUSES.with(|c| c.set(c.get() + 1));
            v.clear();
            v.extend_from_slice(src);
            return v;
        }
    }
    ALLOCS.with(|c| c.set(c.get() + 1));
    src.to_vec()
}

/// Retires a buffer into the calling thread's free list.
pub(crate) fn release(v: Vec<u64>) {
    if v.capacity() == 0 || !pooling() {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < POOL_CAP {
            RETURNS.with(|c| c.set(c.get() + 1));
            p.push(v);
        }
    });
}

/// Cumulative allocation counters of the calling thread.
pub fn stats() -> ArenaStats {
    ArenaStats {
        allocs: ALLOCS.with(Cell::get),
        reuses: REUSES.with(Cell::get),
        returns: RETURNS.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_and_zeroes() {
        let before = stats();
        let mut a = acquire(8);
        a[3] = 77;
        release(a);
        let b = acquire(8);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be zeroed");
        let after = stats();
        assert!(after.reuses > before.reuses || after.allocs > before.allocs);
    }

    #[test]
    fn resizes_across_lengths() {
        release(acquire(4));
        let v = acquire(9);
        assert_eq!(v.len(), 9);
        assert!(v.iter().all(|&x| x == 0));
    }
}
