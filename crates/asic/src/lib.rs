//! A discrete-event RMT (reconfigurable match-action table) switching-ASIC
//! simulator — the substrate replacing the Tofino hardware the HyperTester
//! paper runs on.
//!
//! The simulator provides exactly the capabilities the paper builds on
//! (§1): reconfigurable match-action tables, the `recirculate` primitive,
//! registers with stateful ALUs, data-plane timestamps, and multicasting —
//! plus the `modify_field_rng_uniform` primitive with its real-world
//! power-of-two parameter limitation (§6.1) and `generate_digest`.
//!
//! Module map:
//! * [`time`] — picosecond simulation time.
//! * [`timing`] — Tofino-calibrated latency/bandwidth constants.
//! * [`phv`] — field registry and packet header vectors.
//! * [`packet`] — the simulated packet ([`packet::SimPacket`]).
//! * [`parser`] — bytes ↔ PHV (checksum-correcting deparser).
//! * [`hash`] — CRC hash units.
//! * [`register`] — register arrays and SALU programs.
//! * [`action`] — primitive ops / compound actions.
//! * [`table`] — exact/ternary/range/index match tables with gateways.
//! * [`exec`] — the compiled (threaded-code) pipeline executor.
//! * [`pipeline`] — stages, pipelines, and the [`pipeline::Extern`] hook.
//! * [`tm`] — multicast group table.
//! * [`mac`] — port MACs with line-rate serialization.
//! * [`switch`] — the switch device.
//! * [`sim`] — event queue, world, links with fault injection.
//! * [`parallel`] — partitioned engines under conservative lookahead.
//! * [`timerwheel`] — hierarchical timer wheel backing the event queue.
//! * [`arena`] — thread-local buffer pooling for per-packet allocations.
//! * [`resources`] — the seven-class resource model of the paper's Table 7.
//! * [`digest`] — `generate_digest` records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod arena;
pub mod digest;
pub mod exec;
pub mod fingerprint;
pub mod fxhash;
pub mod hash;
pub mod mac;
pub mod packet;
pub mod parallel;
pub mod parser;
pub mod phv;
pub mod pipeline;
pub mod register;
pub mod resources;
pub mod sim;
pub mod switch;
pub mod table;
pub mod time;
pub mod timerwheel;
pub mod timing;
pub mod tm;

pub use exec::ExecMode;
pub use packet::SimPacket;
pub use phv::{fields, FieldId, FieldTable, Phv};
pub use sim::{
    Device, DeviceId, LinkSpec, Outbox, QueueKind, SimThreads, World, WorldBuilder,
    WorldConfigError,
};
pub use switch::Switch;
pub use time::SimTime;
pub use timerwheel::TimerWheel;
