//! The programmable switch: parser → ingress pipeline → traffic manager →
//! egress pipeline → deparser → MACs, plus the recirculation path.
//!
//! The simulator is *eager*: a packet's whole traversal is computed when it
//! enters the pipeline, and future effects (MAC departures, recirculation
//! re-entries) are scheduled as events.  Per-port FIFO queueing makes the
//! eager register updates order-equivalent to a lazy simulation, because
//! packets leave each queue in the order they entered it.
//!
//! Timing follows [`crate::timing`], calibrated to the paper's
//! microbenchmarks: a 64-byte template completes one accelerator loop in
//! 570 ns (Fig. 14a) and re-arrives no faster than every 6.4 ns; multicast
//! replicas pay ~389 ns in the replication engine (Fig. 15a).

use crate::action::ExecCtx;
use crate::digest::DigestRecord;
use crate::exec::{self, ExecMode};
use crate::fxhash::FxHashMap;
use crate::mac::MacPort;
use crate::packet::SimPacket;
use crate::parser;
use crate::phv::{fields, FieldTable, Phv};
use crate::pipeline::Pipeline;
use crate::register::RegisterFile;
use crate::sim::{Device, DeviceKind, Outbox};
use crate::time::SimTime;
use crate::timing;
use crate::tm::{McastMember, McastTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

/// Sentinel for "no unicast egress chosen" in `meta.eg_port`.
pub const PORT_UNSET: u64 = 0xffff;
/// Ingress-port number reported for recirculated packets.
pub const RECIRC_PORT: u16 = 0xfffe;
/// Ingress-port number for packets injected by the switch CPU over PCIe.
pub const CPU_PORT: u16 = 0xfffd;

/// Aggregate switch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Frames entering the ingress pipeline (including recirculations).
    pub rx_frames: u64,
    /// Frames serialized out of MACs (including loopback ports).
    pub tx_frames: u64,
    /// Packets dropped in or after ingress (explicit drops and packets with
    /// no egress destination).
    pub ingress_drops: u64,
    /// Packets dropped in egress.
    pub egress_drops: u64,
    /// Trips through the internal recirculation path.
    pub recirculations: u64,
    /// Replicas created by the multicast engine.
    pub mcast_replicas: u64,
}

/// One MAC transmission, recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRecord {
    /// Egress port.
    pub port: u16,
    /// Packet uid.
    pub uid: u64,
    /// Serialization start (the departure timestamp).
    pub at: SimTime,
    /// Frame length.
    pub len: u16,
    /// Originating template id (0 for foreign packets).
    pub template_id: u16,
}

/// Optional event traces for microbenchmarks.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Recirculation re-entry times: `(uid, arrival at ingress)`.
    pub recirc: Vec<(u64, SimTime)>,
    /// MAC transmissions.
    pub tx: Vec<TxRecord>,
    /// Multicast-engine transits per replica:
    /// `(uid, arrival at the TM, start of egress processing)` — the
    /// difference is the engine delay measured in Fig. 15.
    pub mcast: Vec<(u64, SimTime, SimTime)>,
}

/// What to trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceConfig {
    /// Record recirculation re-entries.
    pub recirc: bool,
    /// Record MAC transmissions.
    pub tx: bool,
    /// Record multicast-engine transits.
    pub mcast: bool,
}

/// The programmable switch device.
pub struct Switch {
    name: String,
    /// Field registry shared by both pipelines; intern user metadata here
    /// before building tables.
    pub fields: FieldTable,
    /// Ingress match-action pipeline.
    pub ingress: Pipeline,
    /// Egress match-action pipeline.
    pub egress: Pipeline,
    /// Register file (shared between ingress and egress, as stage-local
    /// memories are on RMT).
    pub regs: RegisterFile,
    /// Multicast group table.
    pub mcast: McastTable,
    /// Digest queue to the switch CPU.
    pub digests: Vec<DigestRecord>,
    /// Counters.
    pub counters: SwitchCounters,
    /// Trace configuration.
    pub trace: TraceConfig,
    /// Trace storage.
    pub log: TraceLog,
    /// Fx-hashed: the per-port MAC resolves once per transmitted packet.
    macs: FxHashMap<u16, MacPort>,
    recirc_next_free: SimTime,
    rng: StdRng,
    pending: Vec<Option<SimPacket>>,
    free_slots: Vec<usize>,
    uid_next: u64,
    exec_mode: ExecMode,
    compiled_ingress: Option<exec::CompiledPipeline>,
    compiled_egress: Option<exec::CompiledPipeline>,
    /// Vector-mode lane plan over the compiled ingress program; `None`
    /// when the program has a vector hazard (falls back to per-packet
    /// compiled execution).
    vector: Option<exec::VectorPlan>,
    /// Reusable SoA lane buffer for vector batches.
    lane_batch: exec::LaneBatch,
    /// Admitted-packet staging for batched dispatch.
    batch_scratch: Vec<(SimPacket, u16, SimTime)>,
    mcast_scratch: Vec<McastMember>,
}

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("name", &self.name)
            .field("ports", &self.macs.len())
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Switch {
    /// Creates a switch with no ports and empty pipelines.
    pub fn new(name: &str, seed: u64) -> Self {
        Switch {
            name: name.to_string(),
            fields: FieldTable::new(),
            ingress: Pipeline::new(),
            egress: Pipeline::new(),
            regs: RegisterFile::new(),
            mcast: McastTable::new(),
            digests: Vec::new(),
            counters: SwitchCounters::default(),
            trace: TraceConfig::default(),
            log: TraceLog::default(),
            macs: FxHashMap::default(),
            recirc_next_free: 0,
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
            free_slots: Vec::new(),
            uid_next: 1,
            exec_mode: ExecMode::Interp,
            compiled_ingress: None,
            compiled_egress: None,
            vector: None,
            lane_batch: exec::LaneBatch::new(),
            batch_scratch: Vec::new(),
            mcast_scratch: Vec::new(),
        }
    }

    /// Selects the pipeline executor.  [`ExecMode::Compiled`] lowers both
    /// pipelines into threaded-code programs ([`crate::exec`]) and runs
    /// packets through those; [`ExecMode::Interp`] discards the programs
    /// and falls back to per-stage interpretation.
    ///
    /// Contract: the compiled programs snapshot table entries, gateways and
    /// default actions at this call.  Installing or replacing entries after
    /// switching to `Compiled` desynchronizes the program from the live
    /// tables — finish populating the pipelines first (hit/miss counters
    /// keep updating either way; they are mirrored into the live tables).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
        match mode {
            ExecMode::Compiled => {
                self.compiled_ingress = Some(exec::compile(&self.ingress, &self.fields));
                self.compiled_egress = Some(exec::compile(&self.egress, &self.fields));
                self.vector = None;
            }
            ExecMode::Vector => {
                let ig = exec::compile(&self.ingress, &self.fields);
                let eg = exec::compile(&self.egress, &self.fields);
                // Programs with vector hazards (externs, RNG, digests,
                // aliased SALU registers) silently fall back to per-packet
                // compiled execution — semantics are identical either way.
                self.vector = exec::vector_plan(&ig, &eg, &self.fields).ok();
                self.compiled_ingress = Some(ig);
                self.compiled_egress = Some(eg);
            }
            ExecMode::Interp => {
                self.compiled_ingress = None;
                self.compiled_egress = None;
                self.vector = None;
            }
        }
    }

    /// Whether vector mode is active *and* the ingress program passed the
    /// vector-safety analysis (diagnostics/tests).
    pub fn vector_active(&self) -> bool {
        self.vector.is_some()
    }

    /// The currently selected pipeline executor.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Lowering statistics of the compiled ingress/egress programs, when
    /// compiled (`--profile` reporting).
    pub fn compile_stats(&self) -> Option<(exec::CompileStats, exec::CompileStats)> {
        Some((self.compiled_ingress.as_ref()?.stats(), self.compiled_egress.as_ref()?.stats()))
    }

    /// The switch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an external port at `speed_bps`.
    pub fn add_port(&mut self, port: u16, speed_bps: u64) {
        assert!(port < RECIRC_PORT, "port id collides with internal ports");
        self.macs.insert(port, MacPort::new(speed_bps));
    }

    /// Puts a port into loopback mode (§6.1: extends recirculation capacity
    /// at the price of external bandwidth).
    pub fn set_loopback(&mut self, port: u16, on: bool) {
        self.macs.get_mut(&port).expect("unknown port").loopback = on;
    }

    /// Read access to a port MAC (counters, wire cursor).
    pub fn mac(&self, port: u16) -> &MacPort {
        &self.macs[&port]
    }

    /// The configured external port numbers, in unspecified order.  Used by
    /// static analysis to validate multicast-member port references.
    pub fn ports(&self) -> impl Iterator<Item = u16> + '_ {
        self.macs.keys().copied()
    }

    /// Builds a [`SimPacket`] from wire bytes, parsed with this switch's
    /// field table and given a fresh uid.
    pub fn make_packet(&mut self, bytes: Vec<u8>) -> SimPacket {
        let phv = parser::parse(&self.fields, &bytes).expect("unparsable frame");
        SimPacket { phv, body: Some(std::sync::Arc::new(bytes)), uid: self.alloc_uid() }
    }

    /// Allocates a packet uid.
    pub fn alloc_uid(&mut self) -> u64 {
        let uid = self.uid_next;
        self.uid_next += 1;
        uid
    }

    /// How far into the future the recirculation path is booked — grows
    /// without bound when a task oversubscribes the accelerator.
    pub fn recirc_backlog(&self, now: SimTime) -> SimTime {
        self.recirc_next_free.saturating_sub(now)
    }

    fn jitter(&mut self, amplitude_ps: u64) -> i64 {
        if amplitude_ps == 0 {
            return 0;
        }
        self.rng.gen_range(-(amplitude_ps as i64)..=(amplitude_ps as i64))
    }

    /// Reclaims a stashed recirculating packet by wake token, recording
    /// the re-entry trace.
    fn unstash(&mut self, token: u64, now: SimTime) -> SimPacket {
        let slot = token as usize;
        let pkt = self.pending[slot].take().expect("spurious wake token");
        self.free_slots.push(slot);
        if self.trace.recirc {
            self.log.recirc.push((pkt.uid, now));
        }
        pkt
    }

    fn stash(&mut self, pkt: SimPacket) -> u64 {
        if let Some(slot) = self.free_slots.pop() {
            self.pending[slot] = Some(pkt);
            slot as u64
        } else {
            self.pending.push(Some(pkt));
            (self.pending.len() - 1) as u64
        }
    }

    fn reset_metadata(phv: &mut Phv, ft: &FieldTable, in_port: u16, now: SimTime) {
        // `meta.template_id` deliberately survives — carried in the
        // internal recirculation/PCIe header on real targets.
        phv.set_batch(
            ft,
            &[
                (fields::IG_PORT, u64::from(in_port)),
                (fields::IG_TS, now),
                (fields::EG_TS, 0),
                (fields::EG_PORT, PORT_UNSET),
                (fields::MCAST_GRP, 0),
                (fields::RID, 0),
                (fields::RECIRC_FLAG, 0),
                (fields::DROP_FLAG, 0),
            ],
        );
    }

    /// Parser-side admission: counts the frame, clears stale template ids
    /// on front-panel arrivals, and resets the per-traversal metadata.
    #[inline]
    fn ingress_prepare(&mut self, pkt: &mut SimPacket, in_port: u16, now: SimTime) {
        self.counters.rx_frames += 1;
        // `meta.template_id` rides an internal header on the recirculation
        // and PCIe paths only; a frame arriving on a front-panel port has no
        // such header, so any stale value from a previous switch traversal
        // is cleared.
        if in_port < RECIRC_PORT && in_port != CPU_PORT {
            pkt.phv.set(&self.fields, fields::TEMPLATE_ID, 0);
        }
        // Packets built by other devices carry PHVs sized to *their* field
        // tables; grow to this program's width (metadata starts cleared).
        pkt.phv.grow_to(self.fields.len());
        Self::reset_metadata(&mut pkt.phv, &self.fields, in_port, now);
    }

    /// One per-packet pass of the ingress pipeline (compiled or
    /// interpreted).
    #[inline]
    fn run_ingress(&mut self, pkt: &mut SimPacket, now: SimTime) {
        let mut ctx = ExecCtx {
            table: &self.fields,
            regs: &mut self.regs,
            rng: &mut self.rng,
            digests: &mut self.digests,
            now,
        };
        if let Some(prog) = &self.compiled_ingress {
            let n = exec::run(prog, &mut self.ingress, &mut pkt.phv, &mut ctx);
            crate::sim::metrics::record_ops(n);
        } else {
            self.ingress.execute(&mut pkt.phv, &mut ctx);
        }
    }

    /// Everything after ingress: drop check, traffic manager, multicast
    /// replication, recirculation and unicast egress.
    #[inline]
    fn post_ingress(&mut self, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
        if pkt.phv.get(fields::DROP_FLAG) != 0 {
            self.counters.ingress_drops += 1;
            return;
        }
        let t_tm = now + timing::PARSER_LATENCY + timing::PIPELINE_LATENCY;

        // Multicast replication.
        let grp = pkt.phv.get(fields::MCAST_GRP) as u16;
        if grp != 0 {
            let mut members = std::mem::take(&mut self.mcast_scratch);
            self.mcast.members_into(grp, &mut members);
            let len = pkt.len();
            for &m in &members {
                let mut rep = pkt.clone();
                rep.uid = self.alloc_uid();
                rep.phv.set_batch(
                    &self.fields,
                    &[
                        (fields::RID, u64::from(m.rid)),
                        (fields::MCAST_GRP, 0),
                        (fields::RECIRC_FLAG, 0),
                        (fields::EG_PORT, u64::from(m.port)),
                    ],
                );
                let j = self.jitter(timing::MCAST_JITTER_PS);
                let t_eg = (t_tm + timing::mcast_delay(len)).saturating_add_signed(j);
                self.counters.mcast_replicas += 1;
                if self.trace.mcast {
                    self.log.mcast.push((rep.uid, t_tm, t_eg));
                }
                self.run_egress(rep, m.port, t_eg, out);
            }
            self.mcast_scratch = members;
        }

        // Unicast / recirculation continuation of the original packet.
        if pkt.phv.get(fields::RECIRC_FLAG) != 0 {
            self.run_egress_to_recirc(pkt, t_tm + timing::TM_UNICAST_LATENCY, out);
        } else {
            let eg = pkt.phv.get(fields::EG_PORT);
            if eg == PORT_UNSET {
                // No destination and not recirculating: the TM discards it.
                self.counters.ingress_drops += 1;
            } else {
                self.run_egress(pkt, eg as u16, t_tm + timing::TM_UNICAST_LATENCY, out);
            }
        }
    }

    /// Runs a packet through ingress, the traffic manager and all egress
    /// paths.  Public so microbenchmarks can drive the switch without a
    /// full [`crate::sim::World`].
    pub fn process(&mut self, mut pkt: SimPacket, in_port: u16, now: SimTime, out: &mut Outbox) {
        self.ingress_prepare(&mut pkt, in_port, now);
        self.run_ingress(&mut pkt, now);
        self.post_ingress(pkt, now, out);
    }

    /// Egress pipeline + MAC transmission toward an external port.
    fn run_egress(&mut self, mut pkt: SimPacket, port: u16, t_start: SimTime, out: &mut Outbox) {
        {
            let mut ctx = ExecCtx {
                table: &self.fields,
                regs: &mut self.regs,
                rng: &mut self.rng,
                digests: &mut self.digests,
                now: t_start,
            };
            if let Some(prog) = &self.compiled_egress {
                let n = exec::run(prog, &mut self.egress, &mut pkt.phv, &mut ctx);
                crate::sim::metrics::record_ops(n);
            } else {
                self.egress.execute(&mut pkt.phv, &mut ctx);
            }
        }
        if pkt.phv.get(fields::DROP_FLAG) != 0 {
            self.counters.egress_drops += 1;
            return;
        }
        let len = pkt.len();
        let t_ready = t_start + timing::PIPELINE_LATENCY + timing::DEPARSER_LATENCY;
        let Some(mac) = self.macs.get_mut(&port) else {
            self.counters.egress_drops += 1;
            return;
        };
        let (ser_start, ser_end) = mac.transmit(len, t_ready);
        let loopback = mac.loopback;
        pkt.phv.set(&self.fields, fields::EG_TS, ser_start);
        self.counters.tx_frames += 1;
        if self.trace.tx {
            self.log.tx.push(TxRecord {
                port,
                uid: pkt.uid,
                at: ser_start,
                len: len as u16,
                template_id: pkt.template_id(),
            });
        }
        if loopback {
            // The frame leaves the MAC and re-enters the ingress parser,
            // with the same loop latency as the internal recirc path.
            let j = self.jitter(timing::RECIRC_JITTER_PS);
            let re_entry = (ser_start
                + timing::RECIRC_LOOP_FIXED
                + len as u64 * timing::RECIRC_LOOP_PER_BYTE_PS)
                .saturating_add_signed(j);
            self.counters.recirculations += 1;
            let token = self.stash(pkt);
            out.wake_at(token, re_entry);
        } else {
            out.emit(port, pkt, ser_end);
        }
    }

    /// Egress pipeline + the internal recirculation path back to ingress.
    fn run_egress_to_recirc(&mut self, mut pkt: SimPacket, t_start: SimTime, out: &mut Outbox) {
        {
            let mut ctx = ExecCtx {
                table: &self.fields,
                regs: &mut self.regs,
                rng: &mut self.rng,
                digests: &mut self.digests,
                now: t_start,
            };
            if let Some(prog) = &self.compiled_egress {
                let n = exec::run(prog, &mut self.egress, &mut pkt.phv, &mut ctx);
                crate::sim::metrics::record_ops(n);
            } else {
                self.egress.execute(&mut pkt.phv, &mut ctx);
            }
        }
        if pkt.phv.get(fields::DROP_FLAG) != 0 {
            self.counters.egress_drops += 1;
            return;
        }
        let len = pkt.len();
        let t_ready = t_start + timing::PIPELINE_LATENCY + timing::DEPARSER_LATENCY;
        let ser_start = t_ready.max(self.recirc_next_free);
        self.recirc_next_free = ser_start + timing::recirc_occupancy(len);
        let j = self.jitter(timing::RECIRC_JITTER_PS);
        let re_entry =
            (ser_start + timing::RECIRC_LOOP_FIXED + len as u64 * timing::RECIRC_LOOP_PER_BYTE_PS)
                .saturating_add_signed(j);
        self.counters.recirculations += 1;
        let token = self.stash(pkt);
        out.wake_at(token, re_entry);
    }
}

impl Device for Switch {
    fn name(&self) -> &str {
        &self.name
    }

    fn rx(&mut self, port: u16, pkt: SimPacket, now: SimTime, out: &mut Outbox) {
        self.process(pkt, port, now, out);
    }

    fn device_kind(&self) -> DeviceKind {
        DeviceKind::Switch
    }

    fn wake(&mut self, token: u64, now: SimTime, out: &mut Outbox) {
        let pkt = self.unstash(token, now);
        self.process(pkt, RECIRC_PORT, now, out);
    }

    fn rx_batch(&mut self, items: &mut Vec<crate::sim::BatchItem>, now: SimTime, out: &mut Outbox) {
        use crate::sim::BatchItem;
        let _ = now;
        if self.vector.is_none() || items.len() < 2 {
            for item in items.drain(..) {
                match item {
                    BatchItem::Deliver { port, pkt, at } => self.rx(port, pkt, at, out),
                    BatchItem::Wake { token, at } => self.wake(token, at, out),
                }
                out.checkpoint();
            }
            return;
        }
        // Phase A — admit every item through the parser in event order:
        // frame counting, template clearing, recirculation unstash and
        // per-item metadata reset all observe the serial order.
        let mut staged = std::mem::take(&mut self.batch_scratch);
        staged.clear();
        for item in items.drain(..) {
            let (mut pkt, port, at) = match item {
                BatchItem::Deliver { port, pkt, at } => (pkt, port, at),
                BatchItem::Wake { token, at } => (self.unstash(token, at), RECIRC_PORT, at),
            };
            self.ingress_prepare(&mut pkt, port, at);
            staged.push((pkt, port, at));
        }
        // Phase B — one op-at-a-time ingress pass over all lanes.  The
        // vector plan guarantees this is observationally identical to
        // per-packet execution: no RNG draws, no digests, and every
        // register behind a single SALU site visiting lanes in packet
        // order.
        let plan = self.vector.take().expect("vector plan checked above");
        let prog = self.compiled_ingress.take().expect("vector mode compiles ingress");
        let n = staged.len();
        self.lane_batch.begin(&plan, n);
        for (lane, (pkt, _, _)) in staged.iter().enumerate() {
            self.lane_batch.load(&plan, lane, &pkt.phv);
        }
        let retired = exec::run_vector(
            &prog,
            &plan,
            &mut self.ingress,
            &mut self.regs,
            &self.fields,
            &mut self.lane_batch,
        );
        crate::sim::metrics::record_ops(retired);
        crate::sim::metrics::record_vector_dispatch(n as u64);
        for (lane, (pkt, _, _)) in staged.iter_mut().enumerate() {
            self.lane_batch.store(&plan, lane, &mut pkt.phv);
        }
        self.compiled_ingress = Some(prog);
        self.vector = Some(plan);
        // Phase C — per-packet continuation in event order: drop
        // accounting, TM, multicast replication (uid and jitter draws),
        // recirculation and egress, with one checkpoint per item so the
        // flush assigns the same event keys as serial dispatch.
        for (pkt, _, at) in staged.drain(..) {
            self.post_ingress(pkt, at, out);
            out.checkpoint();
        }
        self.batch_scratch = staged;
    }

    fn lookahead(&self) -> SimTime {
        // Tightest exit path from an input event: unicast traversal
        // parser → ingress → TM → egress → deparser, after which the MAC
        // serializes (`ser_end` is strictly later still).  Every other
        // path is slower: recirculation and loopback add the loop
        // latency (119 168 ps ± 4 000 ps jitter) on top of this sum, and
        // multicast replicas leave the TM no earlier than
        // `PARSER + PIPELINE + MCAST_BASE_DELAY − jitter` before running
        // a full egress pass of their own.
        timing::PARSER_LATENCY
            + timing::PIPELINE_LATENCY
            + timing::TM_UNICAST_LATENCY
            + timing::PIPELINE_LATENCY
            + timing::DEPARSER_LATENCY
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSet, PrimitiveOp};
    use crate::sim::World;
    use crate::table::{MatchKind, Table};
    use ht_packet::wire::gbps;
    use ht_packet::{Ipv4Address, PacketBuilder};

    fn udp_frame(len: usize) -> Vec<u8> {
        PacketBuilder::new()
            .ipv4(Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
            .udp(1, 1)
            .frame_len(len)
            .build()
    }

    /// A switch whose ingress forwards everything to port `p`.
    fn forwarding_switch(p: u16) -> Switch {
        let mut sw = Switch::new("sw", 1);
        sw.add_port(p, gbps(100));
        let tbl = Table::new(
            "fwd",
            MatchKind::Exact,
            vec![fields::IG_PORT],
            4,
            ActionSet::new("to_port", vec![PrimitiveOp::SetEgressPort(p)]),
        );
        sw.ingress.push_table(tbl);
        sw
    }

    #[test]
    fn forwarded_packet_leaves_with_pipeline_latency() {
        let mut sw = forwarding_switch(0);
        sw.trace.tx = true;
        let pkt = sw.make_packet(udp_frame(64));
        let mut out = Outbox::default();
        sw.process(pkt, 5, 1_000_000, &mut out);
        assert_eq!(out.emits.len(), 1);
        let (port, _, at) = &out.emits[0];
        assert_eq!(*port, 0);
        // parser + ingress + TM + egress + deparser + serialization.
        let expected = 1_000_000
            + timing::PARSER_LATENCY
            + timing::PIPELINE_LATENCY
            + timing::TM_UNICAST_LATENCY
            + timing::PIPELINE_LATENCY
            + timing::DEPARSER_LATENCY
            + ht_packet::wire::wire_time_ps(64, gbps(100));
        assert_eq!(*at, expected);
        assert_eq!(sw.counters.tx_frames, 1);
        assert_eq!(sw.log.tx.len(), 1);
    }

    #[test]
    fn packet_without_destination_is_dropped() {
        let mut sw = Switch::new("sw", 1);
        sw.add_port(0, gbps(100));
        let pkt = sw.make_packet(udp_frame(64));
        let mut out = Outbox::default();
        sw.process(pkt, 0, 0, &mut out);
        assert!(out.emits.is_empty());
        assert_eq!(sw.counters.ingress_drops, 1);
    }

    #[test]
    fn explicit_drop_in_ingress() {
        let mut sw = Switch::new("sw", 1);
        sw.add_port(0, gbps(100));
        let tbl = Table::new(
            "drop_all",
            MatchKind::Exact,
            vec![fields::IG_PORT],
            4,
            ActionSet::new("drop", vec![PrimitiveOp::Drop]),
        );
        sw.ingress.push_table(tbl);
        let pkt = sw.make_packet(udp_frame(64));
        let mut out = Outbox::default();
        sw.process(pkt, 0, 0, &mut out);
        assert_eq!(sw.counters.ingress_drops, 1);
        assert!(out.emits.is_empty());
    }

    #[test]
    fn mcast_replicates_to_all_members_with_rids() {
        let mut sw = Switch::new("sw", 1);
        for p in 0..3 {
            sw.add_port(p, gbps(100));
        }
        sw.mcast.set_group(
            7,
            (0..3).map(|p| crate::tm::McastMember { port: p, rid: p + 10 }).collect(),
        );
        let tbl = Table::new(
            "mc",
            MatchKind::Exact,
            vec![fields::IG_PORT],
            4,
            ActionSet::new("to_grp", vec![PrimitiveOp::SetMcastGroup(7)]),
        );
        sw.ingress.push_table(tbl);
        sw.trace.tx = true;

        let pkt = sw.make_packet(udp_frame(64));
        let mut out = Outbox::default();
        sw.process(pkt, 0, 0, &mut out);
        assert_eq!(out.emits.len(), 3);
        assert_eq!(sw.counters.mcast_replicas, 3);
        let mut ports: Vec<u16> = out.emits.iter().map(|e| e.0).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![0, 1, 2]);
        // Replica departure includes the mcast-engine delay.
        let min_at = out.emits.iter().map(|e| e.2).min().unwrap();
        assert!(min_at >= timing::mcast_delay(64));
    }

    #[test]
    fn recirculated_template_loops_with_calibrated_rtt() {
        let mut sw = Switch::new("sw", 42);
        sw.add_port(0, gbps(100));
        let tbl = Table::new(
            "recirc_all",
            MatchKind::Exact,
            vec![fields::IG_PORT],
            4,
            ActionSet::new("recirc", vec![PrimitiveOp::Recirculate]),
        );
        sw.ingress.push_table(tbl);
        sw.trace.recirc = true;

        let mut w = World::builder().seed(1).build().unwrap();
        let pkt = sw.make_packet(udp_frame(64));
        let sw_id = w.add_device(Box::new(sw));
        w.schedule_rx(sw_id, CPU_PORT, pkt, 0);
        // Run 100 µs ≈ 175 loops.
        w.run_until(crate::time::us(100));

        let sw = w.device::<Switch>(sw_id);
        let times: Vec<SimTime> = sw.log.recirc.iter().map(|&(_, t)| t).collect();
        assert!(times.len() > 100, "only {} loops", times.len());
        let rtts: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64 / 1000.0).collect();
        let mean = rtts.iter().sum::<f64>() / rtts.len() as f64;
        assert!((mean - 570.0).abs() < 2.0, "mean RTT {mean} ns");
    }

    #[test]
    fn compiled_and_interpreted_switch_traversals_are_identical() {
        use crate::table::MatchKey;
        // Mixes multicast replication (jittered, draws from the shared
        // RNG), RngUniform (also draws), recirculation and plain unicast,
        // so any executor divergence in op semantics or RNG draw order
        // shows up in the compared state.
        let run = |mode: ExecMode| {
            let mut sw = Switch::new("sw", 7);
            for p in 0..3 {
                sw.add_port(p, gbps(100));
            }
            sw.mcast.set_group(
                5,
                (0..3).map(|p| crate::tm::McastMember { port: p, rid: p + 1 }).collect(),
            );
            let mut route = Table::new(
                "route",
                MatchKind::Exact,
                vec![fields::IG_PORT],
                8,
                ActionSet::new("mc", vec![PrimitiveOp::SetMcastGroup(5)]),
            );
            route
                .insert(
                    MatchKey::Exact(vec![u64::from(CPU_PORT)]),
                    ActionSet::new(
                        "jitter_fwd",
                        vec![
                            PrimitiveOp::RngUniform { dst: fields::IPV4_IDENT, bits: 8, offset: 0 },
                            PrimitiveOp::SetEgressPort(1),
                        ],
                    ),
                    0,
                )
                .unwrap();
            sw.ingress.push_table(route);
            sw.trace.tx = true;
            sw.set_exec_mode(mode);
            assert_eq!(sw.exec_mode(), mode);
            let mut out = Outbox::default();
            for i in 0..8u64 {
                let pkt = sw.make_packet(udp_frame(64 + i as usize * 10));
                let port = if i % 2 == 0 { CPU_PORT } else { 2 };
                sw.process(pkt, port, 1_000 * i, &mut out);
            }
            let emitted: Vec<(u16, u64, Phv, SimTime)> =
                out.emits.iter().map(|e| (e.0, e.1.uid, e.1.phv.clone(), e.2)).collect();
            (sw.counters, sw.log.tx.clone(), emitted)
        };
        assert_eq!(run(ExecMode::Interp), run(ExecMode::Compiled));
    }

    #[test]
    fn loopback_port_returns_packets_to_ingress() {
        let mut sw = Switch::new("sw", 1);
        sw.add_port(0, gbps(100));
        sw.set_loopback(0, true);
        let tbl = Table::new(
            "fwd",
            MatchKind::Exact,
            vec![fields::IG_PORT],
            4,
            ActionSet::new("to0", vec![PrimitiveOp::SetEgressPort(0)]),
        );
        sw.ingress.push_table(tbl);

        let mut w = World::builder().seed(1).build().unwrap();
        let pkt = sw.make_packet(udp_frame(64));
        let sw_id = w.add_device(Box::new(sw));
        w.schedule_rx(sw_id, CPU_PORT, pkt, 0);
        w.run_until(crate::time::us(10));
        let sw = w.device::<Switch>(sw_id);
        assert!(sw.counters.recirculations > 10);
        assert_eq!(w.stats.dangling_emits, 0, "loopback frames must not leave the switch");
    }
}
