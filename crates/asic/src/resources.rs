//! Data-plane resource model.
//!
//! Table 7 of the paper reports, for each compiled HyperTester component,
//! the usage of seven Tofino resource classes normalized by the usage of
//! `switch.p4` (the reference L2/L3 switch program).  The reproduction
//! models the same seven classes with block sizes taken from the published
//! RMT/Tofino literature, computes usage from compiled tables/registers, and
//! normalizes against a calibrated `switch.p4` profile.

use crate::register::RegisterArray;
use crate::table::{MatchKind, Table};

/// Bits per SRAM block word (Tofino: 128-bit wide SRAM blocks of 1K words).
pub const SRAM_BLOCK_BITS: u64 = 128 * 1024;
/// Bits per TCAM block (44-bit wide, 512 entries).
pub const TCAM_BLOCK_BITS: u64 = 44 * 512;

/// Usage across the seven resource classes of Table 7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceUsage {
    /// Match crossbar input bits.
    pub crossbar_bits: u64,
    /// SRAM blocks (match + action + register storage).
    pub sram_blocks: u64,
    /// TCAM blocks.
    pub tcam_blocks: u64,
    /// VLIW action instruction slots.
    pub vliw_slots: u64,
    /// Hash-distribution bits.
    pub hash_bits: u64,
    /// Stateful ALUs.
    pub salus: u64,
    /// Gateway (predicate) units.
    pub gateways: u64,
}

impl std::ops::AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: Self) {
        self.crossbar_bits += rhs.crossbar_bits;
        self.sram_blocks += rhs.sram_blocks;
        self.tcam_blocks += rhs.tcam_blocks;
        self.vliw_slots += rhs.vliw_slots;
        self.hash_bits += rhs.hash_bits;
        self.salus += rhs.salus;
        self.gateways += rhs.gateways;
    }
}

impl std::ops::Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl ResourceUsage {
    /// Normalizes against a baseline profile, yielding per-class fractions
    /// (1.0 = the baseline's whole usage, as in Table 7's percentages).
    pub fn normalized_by(&self, base: &ResourceUsage) -> NormalizedUsage {
        fn ratio(a: u64, b: u64) -> f64 {
            if b == 0 {
                0.0
            } else {
                a as f64 / b as f64
            }
        }
        NormalizedUsage {
            crossbar: ratio(self.crossbar_bits, base.crossbar_bits),
            sram: ratio(self.sram_blocks, base.sram_blocks),
            tcam: ratio(self.tcam_blocks, base.tcam_blocks),
            vliw: ratio(self.vliw_slots, base.vliw_slots),
            hash_bits: ratio(self.hash_bits, base.hash_bits),
            salu: ratio(self.salus, base.salus),
            gateway: ratio(self.gateways, base.gateways),
        }
    }
}

/// Per-class usage fractions relative to a baseline (Table 7 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NormalizedUsage {
    /// Match crossbar fraction.
    pub crossbar: f64,
    /// SRAM fraction.
    pub sram: f64,
    /// TCAM fraction.
    pub tcam: f64,
    /// VLIW fraction.
    pub vliw: f64,
    /// Hash-bit fraction.
    pub hash_bits: f64,
    /// SALU fraction.
    pub salu: f64,
    /// Gateway fraction.
    pub gateway: f64,
}

/// Resource profile of `switch.p4`, the normalization baseline of Table 7.
///
/// Calibrated from the published figures: `switch.p4` is a large L2/L3
/// program that fills a significant share of most resource classes but —
/// being "designed for stateless packet forwarding" (§7.4) — uses only a
/// handful of SALUs, which is why the query components' normalized SALU
/// percentages look large.
pub fn switch_p4_baseline() -> ResourceUsage {
    ResourceUsage {
        crossbar_bits: 41_000,
        sram_blocks: 565,
        tcam_blocks: 186,
        vliw_slots: 212,
        hash_bits: 32_400,
        salus: 24,
        gateways: 70,
    }
}

/// Computes the resource usage of one match-action table.
pub fn table_usage(t: &Table) -> ResourceUsage {
    // Key width in bits: sum of the declared key-field widths is not
    // available here (the table stores only ids), so callers that need
    // exact widths pass through `table_usage_with_widths`.  The id-only
    // variant assumes 32-bit fields, adequate for relative comparisons.
    let key_bits: u64 = t.key_fields().len() as u64 * 32;
    table_usage_inner(t, key_bits)
}

/// Computes the resource usage of a table given the exact total key width.
pub fn table_usage_with_widths(t: &Table, key_bits: u64) -> ResourceUsage {
    table_usage_inner(t, key_bits)
}

fn table_usage_inner(t: &Table, key_bits: u64) -> ResourceUsage {
    let capacity = t.capacity() as u64;
    // Action memory: ~64 bits of immediate/action data per entry.
    let action_bits = capacity * 64;
    let mut u = ResourceUsage {
        crossbar_bits: key_bits,
        vliw_slots: t.max_ops() as u64,
        gateways: t.gateways().len() as u64,
        ..Default::default()
    };
    match t.kind() {
        MatchKind::Exact => {
            // Match SRAM: key + overhead per entry, plus action data.
            let entry_bits = key_bits + 16;
            u.sram_blocks = (capacity * entry_bits + action_bits).div_ceil(SRAM_BLOCK_BITS);
            // Hash-distribution bits: the hash-way index width (≈ log2 of
            // capacity per way × number of ways), floored at the key width
            // for tiny tables.
            let index_bits = 64 - (capacity.max(2) - 1).leading_zeros() as u64;
            u.hash_bits = index_bits * 4; // 4 hash ways
        }
        MatchKind::Ternary | MatchKind::Range => {
            // Range entries are expanded to ternary on hardware.
            let entry_bits = 2 * key_bits; // value + mask
            u.tcam_blocks = (capacity * entry_bits).div_ceil(TCAM_BLOCK_BITS).max(1);
            u.sram_blocks = action_bits.div_ceil(SRAM_BLOCK_BITS);
        }
        MatchKind::Index => {
            u.sram_blocks = action_bits.div_ceil(SRAM_BLOCK_BITS);
        }
    }
    u
}

/// Computes the resource usage of one register array (storage + its SALU).
pub fn register_usage(r: &RegisterArray) -> ResourceUsage {
    ResourceUsage {
        sram_blocks: (r.depth() as u64 * u64::from(r.width())).div_ceil(SRAM_BLOCK_BITS).max(1),
        salus: 1,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionSet;
    use crate::phv::fields;
    use crate::register::Cmp;
    use crate::table::Gateway;

    #[test]
    fn exact_table_consumes_sram_and_hash_bits() {
        let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4096, ActionSet::nop());
        let u = table_usage(&t);
        assert!(u.sram_blocks >= 2, "sram {}", u.sram_blocks);
        assert!(u.hash_bits > 0);
        assert_eq!(u.tcam_blocks, 0);
        assert_eq!(u.crossbar_bits, 32);
    }

    #[test]
    fn ternary_table_consumes_tcam() {
        let t = Table::new("t", MatchKind::Ternary, vec![fields::TCP_DPORT], 512, ActionSet::nop());
        let u = table_usage(&t);
        assert!(u.tcam_blocks >= 1);
        assert_eq!(u.hash_bits, 0);
    }

    #[test]
    fn gateway_counts_as_gateway_unit() {
        let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
            .with_gateway(Gateway { field: fields::TCP_FLAGS, cmp: Cmp::Eq, value: 2 });
        assert_eq!(table_usage(&t).gateways, 1);
    }

    #[test]
    fn register_usage_scales_with_depth() {
        let small = RegisterArray::new("s", 32, 1024);
        let big = RegisterArray::new("b", 32, 65536);
        assert!(register_usage(&big).sram_blocks > register_usage(&small).sram_blocks);
        assert_eq!(register_usage(&small).salus, 1);
    }

    #[test]
    fn normalization_is_fractional() {
        let base = switch_p4_baseline();
        let n = base.normalized_by(&base);
        assert!((n.sram - 1.0).abs() < 1e-12);
        assert!((n.salu - 1.0).abs() < 1e-12);
        let half = ResourceUsage { sram_blocks: base.sram_blocks / 5, ..Default::default() };
        assert!((half.normalized_by(&base).sram - 0.2).abs() < 0.01);
    }

    #[test]
    fn usage_addition_accumulates() {
        let a = ResourceUsage { sram_blocks: 2, salus: 1, ..Default::default() };
        let b = ResourceUsage { sram_blocks: 3, gateways: 1, ..Default::default() };
        let c = a + b;
        assert_eq!(c.sram_blocks, 5);
        assert_eq!(c.salus, 1);
        assert_eq!(c.gateways, 1);
    }
}
