//! Data-plane resource model.
//!
//! Table 7 of the paper reports, for each compiled HyperTester component,
//! the usage of seven Tofino resource classes normalized by the usage of
//! `switch.p4` (the reference L2/L3 switch program).  The reproduction
//! models the same seven classes with block sizes taken from the published
//! RMT/Tofino literature, computes usage from compiled tables/registers, and
//! normalizes against a calibrated `switch.p4` profile.

use crate::register::RegisterArray;
use crate::table::{MatchKind, Table};

/// Bits per SRAM block word (Tofino: 128-bit wide SRAM blocks of 1K words).
pub const SRAM_BLOCK_BITS: u64 = 128 * 1024;
/// Bits per TCAM block (44-bit wide, 512 entries).
pub const TCAM_BLOCK_BITS: u64 = 44 * 512;

/// Usage across the seven resource classes of Table 7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceUsage {
    /// Match crossbar input bits.
    pub crossbar_bits: u64,
    /// SRAM blocks (match + action + register storage).
    pub sram_blocks: u64,
    /// TCAM blocks.
    pub tcam_blocks: u64,
    /// VLIW action instruction slots.
    pub vliw_slots: u64,
    /// Hash-distribution bits.
    pub hash_bits: u64,
    /// Stateful ALUs.
    pub salus: u64,
    /// Gateway (predicate) units.
    pub gateways: u64,
}

impl std::ops::AddAssign for ResourceUsage {
    /// Saturating accumulation: usage totals are compared against hardware
    /// capacities, so a sum pinned at `u64::MAX` still reports "over budget"
    /// where a wrapped sum would silently report a tiny (passing) value.
    fn add_assign(&mut self, rhs: Self) {
        self.crossbar_bits = self.crossbar_bits.saturating_add(rhs.crossbar_bits);
        self.sram_blocks = self.sram_blocks.saturating_add(rhs.sram_blocks);
        self.tcam_blocks = self.tcam_blocks.saturating_add(rhs.tcam_blocks);
        self.vliw_slots = self.vliw_slots.saturating_add(rhs.vliw_slots);
        self.hash_bits = self.hash_bits.saturating_add(rhs.hash_bits);
        self.salus = self.salus.saturating_add(rhs.salus);
        self.gateways = self.gateways.saturating_add(rhs.gateways);
    }
}

impl std::ops::Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl ResourceUsage {
    /// Per-class `self > cap` comparison, returning the names of the classes
    /// whose usage exceeds the capacity.  Empty = fits.
    pub fn exceeds(&self, cap: &ResourceUsage) -> Vec<&'static str> {
        let mut over = Vec::new();
        if self.crossbar_bits > cap.crossbar_bits {
            over.push("crossbar_bits");
        }
        if self.sram_blocks > cap.sram_blocks {
            over.push("sram_blocks");
        }
        if self.tcam_blocks > cap.tcam_blocks {
            over.push("tcam_blocks");
        }
        if self.vliw_slots > cap.vliw_slots {
            over.push("vliw_slots");
        }
        if self.hash_bits > cap.hash_bits {
            over.push("hash_bits");
        }
        if self.salus > cap.salus {
            over.push("salus");
        }
        if self.gateways > cap.gateways {
            over.push("gateways");
        }
        over
    }

    /// The value of one class by its `exceeds` name (diagnostics).
    pub fn class(&self, name: &str) -> u64 {
        match name {
            "crossbar_bits" => self.crossbar_bits,
            "sram_blocks" => self.sram_blocks,
            "tcam_blocks" => self.tcam_blocks,
            "vliw_slots" => self.vliw_slots,
            "hash_bits" => self.hash_bits,
            "salus" => self.salus,
            "gateways" => self.gateways,
            _ => 0,
        }
    }

    /// Normalizes against a baseline profile, yielding per-class fractions
    /// (1.0 = the baseline's whole usage, as in Table 7's percentages).
    pub fn normalized_by(&self, base: &ResourceUsage) -> NormalizedUsage {
        fn ratio(a: u64, b: u64) -> f64 {
            if b == 0 {
                0.0
            } else {
                a as f64 / b as f64
            }
        }
        NormalizedUsage {
            crossbar: ratio(self.crossbar_bits, base.crossbar_bits),
            sram: ratio(self.sram_blocks, base.sram_blocks),
            tcam: ratio(self.tcam_blocks, base.tcam_blocks),
            vliw: ratio(self.vliw_slots, base.vliw_slots),
            hash_bits: ratio(self.hash_bits, base.hash_bits),
            salu: ratio(self.salus, base.salus),
            gateway: ratio(self.gateways, base.gateways),
        }
    }
}

/// Per-class usage fractions relative to a baseline (Table 7 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NormalizedUsage {
    /// Match crossbar fraction.
    pub crossbar: f64,
    /// SRAM fraction.
    pub sram: f64,
    /// TCAM fraction.
    pub tcam: f64,
    /// VLIW fraction.
    pub vliw: f64,
    /// Hash-bit fraction.
    pub hash_bits: f64,
    /// SALU fraction.
    pub salu: f64,
    /// Gateway fraction.
    pub gateway: f64,
}

/// Resource profile of `switch.p4`, the normalization baseline of Table 7.
///
/// Calibrated from the published figures: `switch.p4` is a large L2/L3
/// program that fills a significant share of most resource classes but —
/// being "designed for stateless packet forwarding" (§7.4) — uses only a
/// handful of SALUs, which is why the query components' normalized SALU
/// percentages look large.
pub fn switch_p4_baseline() -> ResourceUsage {
    ResourceUsage {
        crossbar_bits: 41_000,
        sram_blocks: 565,
        tcam_blocks: 186,
        vliw_slots: 212,
        hash_bits: 32_400,
        salus: 24,
        gateways: 70,
    }
}

/// Per-stage capacity of the Tofino-like target: what one physical
/// match-action stage provides.  The per-pipeline totals behind
/// [`switch_p4_baseline`] correspond to roughly twelve such stages; the
/// per-stage granularity is what the static fitter checks, because a table
/// that fits the whole-pipeline budget can still be unplaceable when its
/// stage's crossbar or SALU count is exhausted.
pub fn stage_capacity() -> ResourceUsage {
    ResourceUsage {
        // Exact-match (1024) plus ternary (544) crossbar input bits.
        crossbar_bits: 1568,
        // 80 SRAM blocks per stage (match + action + register storage).
        sram_blocks: 80,
        // 24 TCAM blocks per stage.
        tcam_blocks: 24,
        // One VLIW instruction word: 32 parallel primitive slots.
        vliw_slots: 32,
        // Hash-distribution bits available to a stage's hash ways.
        hash_bits: 2700,
        // Four stateful ALUs per stage.
        salus: 4,
        // Sixteen gateway (predicate) units per stage.
        gateways: 16,
    }
}

/// Computes the resource usage of one match-action table.
pub fn table_usage(t: &Table) -> ResourceUsage {
    // Key width in bits: sum of the declared key-field widths is not
    // available here (the table stores only ids), so callers that need
    // exact widths pass through `table_usage_with_widths`.  The id-only
    // variant assumes 32-bit fields, adequate for relative comparisons.
    let key_bits: u64 = t.key_fields().len() as u64 * 32;
    table_usage_inner(t, key_bits)
}

/// Computes the resource usage of a table given the exact total key width.
pub fn table_usage_with_widths(t: &Table, key_bits: u64) -> ResourceUsage {
    table_usage_inner(t, key_bits)
}

fn table_usage_inner(t: &Table, key_bits: u64) -> ResourceUsage {
    let capacity = t.capacity() as u64;
    // Action memory: ~64 bits of immediate/action data per entry.
    let action_bits = capacity * 64;
    let mut u = ResourceUsage {
        crossbar_bits: key_bits,
        vliw_slots: t.max_ops() as u64,
        gateways: t.gateways().len() as u64,
        ..Default::default()
    };
    match t.kind() {
        MatchKind::Exact => {
            // Match SRAM: key + overhead per entry, plus action data.
            let entry_bits = key_bits + 16;
            u.sram_blocks = (capacity * entry_bits + action_bits).div_ceil(SRAM_BLOCK_BITS);
            // Hash-distribution bits: the hash-way index width (≈ log2 of
            // capacity per way × number of ways), floored at the key width
            // for tiny tables.
            let index_bits = 64 - (capacity.max(2) - 1).leading_zeros() as u64;
            u.hash_bits = index_bits * 4; // 4 hash ways
        }
        MatchKind::Ternary | MatchKind::Range => {
            // Range entries are expanded to ternary on hardware.
            let entry_bits = 2 * key_bits; // value + mask
            u.tcam_blocks = (capacity * entry_bits).div_ceil(TCAM_BLOCK_BITS).max(1);
            u.sram_blocks = action_bits.div_ceil(SRAM_BLOCK_BITS);
        }
        MatchKind::Index => {
            u.sram_blocks = action_bits.div_ceil(SRAM_BLOCK_BITS);
        }
    }
    u
}

/// Computes the resource usage of one register array (storage + its SALU).
pub fn register_usage(r: &RegisterArray) -> ResourceUsage {
    ResourceUsage {
        sram_blocks: (r.depth() as u64 * u64::from(r.width())).div_ceil(SRAM_BLOCK_BITS).max(1),
        salus: 1,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionSet;
    use crate::phv::fields;
    use crate::register::Cmp;
    use crate::table::Gateway;

    #[test]
    fn exact_table_consumes_sram_and_hash_bits() {
        let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4096, ActionSet::nop());
        let u = table_usage(&t);
        assert!(u.sram_blocks >= 2, "sram {}", u.sram_blocks);
        assert!(u.hash_bits > 0);
        assert_eq!(u.tcam_blocks, 0);
        assert_eq!(u.crossbar_bits, 32);
    }

    #[test]
    fn ternary_table_consumes_tcam() {
        let t = Table::new("t", MatchKind::Ternary, vec![fields::TCP_DPORT], 512, ActionSet::nop());
        let u = table_usage(&t);
        assert!(u.tcam_blocks >= 1);
        assert_eq!(u.hash_bits, 0);
    }

    #[test]
    fn gateway_counts_as_gateway_unit() {
        let t = Table::new("t", MatchKind::Exact, vec![fields::IPV4_DST], 4, ActionSet::nop())
            .with_gateway(Gateway { field: fields::TCP_FLAGS, cmp: Cmp::Eq, value: 2 });
        assert_eq!(table_usage(&t).gateways, 1);
    }

    #[test]
    fn register_usage_scales_with_depth() {
        let small = RegisterArray::new("s", 32, 1024);
        let big = RegisterArray::new("b", 32, 65536);
        assert!(register_usage(&big).sram_blocks > register_usage(&small).sram_blocks);
        assert_eq!(register_usage(&small).salus, 1);
    }

    #[test]
    fn normalization_is_fractional() {
        let base = switch_p4_baseline();
        let n = base.normalized_by(&base);
        assert!((n.sram - 1.0).abs() < 1e-12);
        assert!((n.salu - 1.0).abs() < 1e-12);
        let half = ResourceUsage { sram_blocks: base.sram_blocks / 5, ..Default::default() };
        assert!((half.normalized_by(&base).sram - 0.2).abs() < 0.01);
    }

    #[test]
    fn usage_addition_accumulates() {
        let a = ResourceUsage { sram_blocks: 2, salus: 1, ..Default::default() };
        let b = ResourceUsage { sram_blocks: 3, gateways: 1, ..Default::default() };
        let c = a + b;
        assert_eq!(c.sram_blocks, 5);
        assert_eq!(c.salus, 1);
        assert_eq!(c.gateways, 1);
    }

    #[test]
    fn usage_addition_saturates_instead_of_wrapping() {
        let near_max = ResourceUsage {
            crossbar_bits: u64::MAX - 1,
            sram_blocks: u64::MAX,
            tcam_blocks: u64::MAX - 7,
            vliw_slots: u64::MAX,
            hash_bits: u64::MAX - 1,
            salus: u64::MAX,
            gateways: u64::MAX - 2,
        };
        let bump = ResourceUsage {
            crossbar_bits: 10,
            sram_blocks: 1,
            tcam_blocks: 100,
            vliw_slots: u64::MAX,
            hash_bits: 2,
            salus: 3,
            gateways: 2,
        };
        let sum = near_max + bump;
        // Every class pins at MAX; a wrapping add would cycle to tiny
        // values and make an oversubscribed program look nearly empty.
        assert_eq!(sum.crossbar_bits, u64::MAX);
        assert_eq!(sum.sram_blocks, u64::MAX);
        assert_eq!(sum.tcam_blocks, u64::MAX);
        assert_eq!(sum.vliw_slots, u64::MAX);
        assert_eq!(sum.hash_bits, u64::MAX);
        assert_eq!(sum.salus, u64::MAX);
        assert_eq!(sum.gateways, u64::MAX);
        // A saturated total still reads as over any finite capacity.
        assert_eq!(sum.exceeds(&switch_p4_baseline()).len(), 7);
    }

    #[test]
    fn add_assign_saturates_per_class_independently() {
        let mut u = ResourceUsage { salus: u64::MAX, sram_blocks: 1, ..Default::default() };
        u += ResourceUsage { salus: 1, sram_blocks: 1, ..Default::default() };
        assert_eq!(u.salus, u64::MAX, "saturated class stays pinned");
        assert_eq!(u.sram_blocks, 2, "unsaturated classes still accumulate");
    }

    #[test]
    fn exceeds_names_overflowing_classes() {
        let cap = stage_capacity();
        let fits = ResourceUsage { sram_blocks: cap.sram_blocks, ..Default::default() };
        assert!(fits.exceeds(&cap).is_empty(), "at-capacity usage fits");
        let over = ResourceUsage {
            sram_blocks: cap.sram_blocks + 1,
            salus: cap.salus + 1,
            ..Default::default()
        };
        assert_eq!(over.exceeds(&cap), vec!["sram_blocks", "salus"]);
        assert_eq!(over.class("sram_blocks"), cap.sram_blocks + 1);
        assert_eq!(over.class("unknown"), 0);
    }
}
