//! Compound actions: the VLIW instruction set of a match-action stage.
//!
//! A table hit (or the default action) executes a sequence of
//! [`PrimitiveOp`]s against the PHV.  The set mirrors the P4-14 primitive
//! actions HyperTester relies on (§1 lists them: reconfigurable
//! match-action tables, `recirculate`, registers, time stamping and
//! multicasting) plus the target-limited `modify_field_rng_uniform`
//! (§6.1: the bound must be a power of two, compensated with an offset —
//! reproduced verbatim by [`PrimitiveOp::RngUniform`]).

use crate::digest::{DigestId, DigestRecord};
use crate::hash::{hash_words, HashAlgo};
use crate::phv::{fields, FieldId, FieldTable, Phv};
use crate::register::{RegId, RegisterFile, SaluProgram};
use crate::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// Where a register or hash index comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexSource {
    /// A fixed slot.
    Const(u64),
    /// The value of a PHV field.
    Field(FieldId),
    /// A hash over PHV fields, masked to `mask_bits`.
    Hash {
        /// Hash algorithm to use.
        algo: HashAlgo,
        /// Fields forming the hash key.
        fields: Vec<FieldId>,
        /// Number of low bits kept.
        mask_bits: u32,
    },
}

impl IndexSource {
    /// Evaluates the index for the current PHV.
    pub fn eval(&self, phv: &Phv) -> u64 {
        match self {
            IndexSource::Const(c) => *c,
            IndexSource::Field(f) => phv.get(*f),
            IndexSource::Hash { algo, fields, mask_bits } => {
                let words: Vec<u64> = fields.iter().map(|f| phv.get(*f)).collect();
                hash_words(*algo, &words) & crate::phv::mask_for(*mask_bits)
            }
        }
    }
}

/// One VLIW slot of a compound action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimitiveOp {
    /// `dst = value`.
    SetConst {
        /// Destination field.
        dst: FieldId,
        /// Immediate value (masked to the field width).
        value: u64,
    },
    /// `dst = src`.
    CopyField {
        /// Destination field.
        dst: FieldId,
        /// Source field.
        src: FieldId,
    },
    /// `dst = dst + value` (wrapping at the field width).
    AddConst {
        /// Destination field.
        dst: FieldId,
        /// Immediate addend.
        value: u64,
    },
    /// `dst = dst + src` (wrapping at the field width).
    AddField {
        /// Destination field.
        dst: FieldId,
        /// Source field.
        src: FieldId,
    },
    /// `dst = dst − src` (wrapping at the field width).
    SubField {
        /// Destination field.
        dst: FieldId,
        /// Source field.
        src: FieldId,
    },
    /// `dst = dst & value`.
    AndConst {
        /// Destination field.
        dst: FieldId,
        /// Mask.
        value: u64,
    },
    /// `dst = dst | value`.
    OrConst {
        /// Destination field.
        dst: FieldId,
        /// Bits to set.
        value: u64,
    },
    /// `dst = dst >> bits`.
    ShiftRight {
        /// Destination field.
        dst: FieldId,
        /// Shift amount.
        bits: u32,
    },
    /// `dst = hash(fields) & (2^mask_bits − 1)`.
    Hash {
        /// Destination field.
        dst: FieldId,
        /// Hash algorithm.
        algo: HashAlgo,
        /// Fields forming the key.
        fields: Vec<FieldId>,
        /// Number of low bits kept.
        mask_bits: u32,
    },
    /// `dst = uniform[0, 2^bits) + offset` — `modify_field_rng_uniform`
    /// with the power-of-two parameter limitation of real targets (§6.1).
    RngUniform {
        /// Destination field.
        dst: FieldId,
        /// Range is `2^bits` values.
        bits: u32,
        /// Offset added after drawing.
        offset: u64,
    },
    /// One SALU read-modify-write against a register array.
    Salu {
        /// Target register array.
        reg: RegId,
        /// Slot selection.
        index: IndexSource,
        /// The SALU program to run.
        program: SaluProgram,
    },
    /// Select the unicast egress port.
    SetEgressPort(
        /// Port number.
        u16,
    ),
    /// Select a multicast group (0 disables).
    SetMcastGroup(
        /// Group id.
        u16,
    ),
    /// Mark the packet for recirculation after egress.
    Recirculate,
    /// Drop the packet.
    Drop,
    /// Emit a digest with the given fields to the switch CPU.
    Digest {
        /// Digest stream id.
        id: DigestId,
        /// Fields to include.
        fields: Vec<FieldId>,
    },
    /// Do nothing (explicit no-op keeps VLIW accounting honest).
    NoOp,
}

/// A named sequence of primitive ops — what a table entry or default action
/// executes on a hit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActionSet {
    /// Action name, for diagnostics and generated-P4 reporting.
    pub name: String,
    /// The VLIW slots.
    pub ops: Vec<PrimitiveOp>,
}

impl ActionSet {
    /// Creates a named action from ops.
    pub fn new(name: &str, ops: Vec<PrimitiveOp>) -> Self {
        ActionSet { name: name.to_string(), ops }
    }

    /// The canonical no-op action.
    pub fn nop() -> Self {
        ActionSet { name: "NoAction".into(), ops: Vec::new() }
    }
}

/// Mutable execution context threaded through a pipeline pass.
pub struct ExecCtx<'a> {
    /// Field registry of the program.
    pub table: &'a FieldTable,
    /// Register state of this pipeline.
    pub regs: &'a mut RegisterFile,
    /// Seeded RNG backing `RngUniform` (hardware LFSR stand-in).
    pub rng: &'a mut StdRng,
    /// Digest queue to the switch CPU.
    pub digests: &'a mut Vec<DigestRecord>,
    /// Current pipeline time.
    pub now: SimTime,
}

/// Executes every op of `action` against `phv`.
pub fn execute(action: &ActionSet, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
    for op in &action.ops {
        execute_op(op, phv, ctx);
    }
}

fn execute_op(op: &PrimitiveOp, phv: &mut Phv, ctx: &mut ExecCtx<'_>) {
    let t = ctx.table;
    match op {
        PrimitiveOp::SetConst { dst, value } => phv.set(t, *dst, *value),
        PrimitiveOp::CopyField { dst, src } => phv.set(t, *dst, phv.get(*src)),
        PrimitiveOp::AddConst { dst, value } => {
            phv.set(t, *dst, phv.get(*dst).wrapping_add(*value))
        }
        PrimitiveOp::AddField { dst, src } => {
            phv.set(t, *dst, phv.get(*dst).wrapping_add(phv.get(*src)))
        }
        PrimitiveOp::SubField { dst, src } => {
            phv.set(t, *dst, phv.get(*dst).wrapping_sub(phv.get(*src)))
        }
        PrimitiveOp::AndConst { dst, value } => phv.set(t, *dst, phv.get(*dst) & *value),
        PrimitiveOp::OrConst { dst, value } => phv.set(t, *dst, phv.get(*dst) | *value),
        PrimitiveOp::ShiftRight { dst, bits } => {
            let v = if *bits >= 64 { 0 } else { phv.get(*dst) >> bits };
            phv.set(t, *dst, v)
        }
        PrimitiveOp::Hash { dst, algo, fields, mask_bits } => {
            let words: Vec<u64> = fields.iter().map(|f| phv.get(*f)).collect();
            phv.set(t, *dst, hash_words(*algo, &words) & crate::phv::mask_for(*mask_bits));
        }
        PrimitiveOp::RngUniform { dst, bits, offset } => {
            let range = 1u64 << (*bits).min(63);
            let v = ctx.rng.gen_range(0..range).wrapping_add(*offset);
            phv.set(t, *dst, v);
        }
        PrimitiveOp::Salu { reg, index, program } => {
            let idx = index.eval(phv);
            ctx.regs.execute(*reg, idx, program, phv, t);
        }
        PrimitiveOp::SetEgressPort(p) => phv.set(t, fields::EG_PORT, u64::from(*p)),
        PrimitiveOp::SetMcastGroup(g) => phv.set(t, fields::MCAST_GRP, u64::from(*g)),
        PrimitiveOp::Recirculate => phv.set(t, fields::RECIRC_FLAG, 1),
        PrimitiveOp::Drop => phv.set(t, fields::DROP_FLAG, 1),
        PrimitiveOp::Digest { id, fields } => {
            let values: Vec<u64> = fields.iter().map(|f| phv.get(*f)).collect();
            ctx.digests.push(DigestRecord { id: *id, values, at: ctx.now });
        }
        PrimitiveOp::NoOp => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx_parts() -> (FieldTable, RegisterFile, StdRng, Vec<DigestRecord>) {
        (FieldTable::new(), RegisterFile::new(), StdRng::seed_from_u64(7), Vec::new())
    }

    fn run(
        action: &ActionSet,
        phv: &mut Phv,
        t: &FieldTable,
        rf: &mut RegisterFile,
        rng: &mut StdRng,
        dg: &mut Vec<DigestRecord>,
    ) {
        let mut ctx = ExecCtx { table: t, regs: rf, rng, digests: dg, now: 42 };
        execute(action, phv, &mut ctx);
    }

    #[test]
    fn arithmetic_ops_mask_to_field_width() {
        let (t, mut rf, mut rng, mut dg) = ctx_parts();
        let mut phv = t.new_phv();
        phv.set(&t, fields::TCP_SPORT, 0xffff);
        let a = ActionSet::new(
            "wrap",
            vec![PrimitiveOp::AddConst { dst: fields::TCP_SPORT, value: 1 }],
        );
        run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
        assert_eq!(phv.get(fields::TCP_SPORT), 0); // wrapped at 16 bits
    }

    #[test]
    fn copy_add_sub_between_fields() {
        let (t, mut rf, mut rng, mut dg) = ctx_parts();
        let mut phv = t.new_phv();
        phv.set(&t, fields::TCP_SEQ, 100);
        phv.set(&t, fields::TCP_ACK, 30);
        let a = ActionSet::new(
            "mix",
            vec![
                PrimitiveOp::CopyField { dst: fields::TCP_WINDOW, src: fields::TCP_ACK },
                PrimitiveOp::AddField { dst: fields::TCP_SEQ, src: fields::TCP_ACK },
                PrimitiveOp::SubField { dst: fields::TCP_ACK, src: fields::TCP_WINDOW },
            ],
        );
        run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
        assert_eq!(phv.get(fields::TCP_WINDOW), 30);
        assert_eq!(phv.get(fields::TCP_SEQ), 130);
        assert_eq!(phv.get(fields::TCP_ACK), 0);
    }

    #[test]
    fn rng_uniform_respects_power_of_two_bound_and_offset() {
        let (t, mut rf, mut rng, mut dg) = ctx_parts();
        let mut phv = t.new_phv();
        let a = ActionSet::new(
            "rng",
            vec![PrimitiveOp::RngUniform { dst: fields::TCP_DPORT, bits: 4, offset: 1000 }],
        );
        for _ in 0..200 {
            run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
            let v = phv.get(fields::TCP_DPORT);
            assert!((1000..1016).contains(&v), "value {v} outside [1000, 1016)");
        }
    }

    #[test]
    fn metadata_ops_set_intrinsic_fields() {
        let (t, mut rf, mut rng, mut dg) = ctx_parts();
        let mut phv = t.new_phv();
        let a = ActionSet::new(
            "meta",
            vec![
                PrimitiveOp::SetEgressPort(7),
                PrimitiveOp::SetMcastGroup(3),
                PrimitiveOp::Recirculate,
            ],
        );
        run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
        assert_eq!(phv.get(fields::EG_PORT), 7);
        assert_eq!(phv.get(fields::MCAST_GRP), 3);
        assert_eq!(phv.get(fields::RECIRC_FLAG), 1);
        assert_eq!(phv.get(fields::DROP_FLAG), 0);
    }

    #[test]
    fn digest_captures_selected_fields_and_time() {
        let (t, mut rf, mut rng, mut dg) = ctx_parts();
        let mut phv = t.new_phv();
        phv.set(&t, fields::IPV4_SRC, 0x0a000001);
        phv.set(&t, fields::TCP_SPORT, 99);
        let a = ActionSet::new(
            "dig",
            vec![PrimitiveOp::Digest {
                id: DigestId(2),
                fields: vec![fields::IPV4_SRC, fields::TCP_SPORT],
            }],
        );
        run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
        assert_eq!(dg.len(), 1);
        assert_eq!(dg[0].id, DigestId(2));
        assert_eq!(dg[0].values, vec![0x0a000001, 99]);
        assert_eq!(dg[0].at, 42);
    }

    #[test]
    fn hash_op_is_deterministic_and_masked() {
        let (t, mut rf, mut rng, mut dg) = ctx_parts();
        let mut phv = t.new_phv();
        phv.set(&t, fields::IPV4_SRC, 1234);
        let a = ActionSet::new(
            "h",
            vec![PrimitiveOp::Hash {
                dst: fields::TCP_SPORT,
                algo: HashAlgo::Crc32,
                fields: vec![fields::IPV4_SRC],
                mask_bits: 8,
            }],
        );
        run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
        let v1 = phv.get(fields::TCP_SPORT);
        assert!(v1 < 256);
        run(&a, &mut phv, &t, &mut rf, &mut rng, &mut dg);
        assert_eq!(phv.get(fields::TCP_SPORT), v1);
    }

    #[test]
    fn index_source_hash_eval_masks() {
        let t = FieldTable::new();
        let mut phv = t.new_phv();
        phv.set(&t, fields::IPV4_DST, 42);
        let idx = IndexSource::Hash {
            algo: HashAlgo::Crc32c,
            fields: vec![fields::IPV4_DST],
            mask_bits: 10,
        };
        assert!(idx.eval(&phv) < 1024);
        assert_eq!(IndexSource::Const(5).eval(&phv), 5);
        assert_eq!(IndexSource::Field(fields::IPV4_DST).eval(&phv), 42);
    }
}
