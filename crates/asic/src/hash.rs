//! Hash units.
//!
//! Tofino's match units and stateful components compute CRC-family hashes
//! over selected PHV fields.  The reproduction provides CRC-32 (two
//! polynomial variants, so cuckoo hashing gets two independent functions)
//! and CRC-16, computed over the big-endian bytes of the field values.
//!
//! The CRC-32 variants fold eight bytes per step (slice-by-8): the
//! false-positive precompute of Fig. 17 hashes tens of millions of `u64`
//! key words, so each word is one table-driven fold instead of eight
//! byte-serial rounds.  The output is bit-identical to the byte-at-a-time
//! computation (the unit tests pin both against known vectors and against
//! a byte-serial reference).

/// The hash algorithms the pipeline can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlgo {
    /// CRC-32 (IEEE 802.3 polynomial, reflected).
    Crc32,
    /// CRC-32C (Castagnoli polynomial, reflected) — the customary "second
    /// hash" for cuckoo/dual-hash schemes on Tofino.
    Crc32c,
    /// CRC-16 (IBM polynomial, reflected) — used for 16-bit digests.
    Crc16,
    /// Identity over the low 64 bits of the key — handy in tests.
    Identity,
}

/// Computes `algo` over a key given as a sequence of `u64` words (each
/// contributed as 8 big-endian bytes).
pub fn hash_words(algo: HashAlgo, words: &[u64]) -> u64 {
    match algo {
        HashAlgo::Crc32 => {
            let mut c = Crc32Fold::ieee();
            for w in words {
                c.fold8(w.to_be_bytes());
            }
            u64::from(c.finish())
        }
        HashAlgo::Crc32c => {
            let mut c = Crc32Fold::castagnoli();
            for w in words {
                c.fold8(w.to_be_bytes());
            }
            u64::from(c.finish())
        }
        HashAlgo::Crc16 => {
            let mut c = Crc16::new();
            for w in words {
                c.update(&w.to_be_bytes());
            }
            u64::from(c.finish())
        }
        HashAlgo::Identity => words.last().copied().unwrap_or(0),
    }
}

/// Builds the 256-entry lookup table for a reflected CRC-32 polynomial at
/// compile time.
const fn crc32_table(poly: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ poly } else { c >> 1 };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Extends the byte-serial table to the eight slice-by-8 tables:
/// `tables[k]` advances a byte through `k` additional zero bytes, so one
/// lookup per input byte folds eight bytes at a time.
const fn crc32_tables8(poly: u32) -> [[u32; 256]; 8] {
    let t0 = crc32_table(poly);
    let mut t = [[0u32; 256]; 8];
    t[0] = t0;
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t0[(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC32_IEEE8: [[u32; 256]; 8] = crc32_tables8(0xedb8_8320);
static CRC32_CASTAGNOLI8: [[u32; 256]; 8] = crc32_tables8(0x82f6_3b78);

/// An incremental reflected CRC-32 that folds eight bytes per table step.
///
/// The fused key-hash path (`HashConfig::triple`) drives this directly —
/// one [`fold8`](Self::fold8) per `u64` key word — while
/// [`update`](Self::update) handles arbitrary byte slices (8-byte chunks,
/// then a byte-serial tail).
#[derive(Debug, Clone)]
pub struct Crc32Fold {
    tables: &'static [[u32; 256]; 8],
    state: u32,
}

impl Crc32Fold {
    /// A fresh CRC-32 (IEEE 802.3) computation.
    pub fn ieee() -> Self {
        Crc32Fold { tables: &CRC32_IEEE8, state: 0xffff_ffff }
    }

    /// A fresh CRC-32C (Castagnoli) computation.
    pub fn castagnoli() -> Self {
        Crc32Fold { tables: &CRC32_CASTAGNOLI8, state: 0xffff_ffff }
    }

    /// Folds exactly eight bytes into the state with eight table lookups.
    #[inline]
    pub fn fold8(&mut self, b: [u8; 8]) {
        let t = self.tables;
        let x = self.state ^ u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        self.state = t[7][(x & 0xff) as usize]
            ^ t[6][((x >> 8) & 0xff) as usize]
            ^ t[5][((x >> 16) & 0xff) as usize]
            ^ t[4][(x >> 24) as usize]
            ^ t[3][b[4] as usize]
            ^ t[2][b[5] as usize]
            ^ t[1][b[6] as usize]
            ^ t[0][b[7] as usize];
    }

    /// Folds an arbitrary byte slice (8-byte chunks, byte-serial tail).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold8(c.try_into().expect("8-byte chunk"));
        }
        for &b in chunks.remainder() {
            let idx = (self.state ^ u32::from(b)) & 0xff;
            self.state = (self.state >> 8) ^ self.tables[0][idx as usize];
        }
    }

    /// The finished (inverted) CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// Four independent CRC-32 streams folded in lockstep.
///
/// Each [`fold8`](Self::fold8) advances all four states with interleaved
/// table lookups, so the loads of one stream hide the latency of the
/// others (the scalar fold is a serial dependency chain; four chains keep
/// the load ports busy).  Bit-identical to four separate [`Crc32Fold`]s.
/// The vector executor hashes four PHV lanes at a time through this; the
/// false-positive precompute uses the wider [`Crc32FoldX8`].
#[derive(Debug, Clone)]
pub struct Crc32FoldX4 {
    tables: &'static [[u32; 256]; 8],
    state: [u32; 4],
}

impl Crc32FoldX4 {
    /// Four fresh CRC-32 (IEEE 802.3) computations.
    pub fn ieee() -> Self {
        Crc32FoldX4 { tables: &CRC32_IEEE8, state: [0xffff_ffff; 4] }
    }

    /// Four fresh CRC-32C (Castagnoli) computations.
    pub fn castagnoli() -> Self {
        Crc32FoldX4 { tables: &CRC32_CASTAGNOLI8, state: [0xffff_ffff; 4] }
    }

    /// Folds eight bytes into each of the four states.
    #[inline]
    pub fn fold8(&mut self, b: [[u8; 8]; 4]) {
        let t = self.tables;
        for lane in 0..4 {
            let b = b[lane];
            let x = self.state[lane] ^ u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            self.state[lane] = t[7][(x & 0xff) as usize]
                ^ t[6][((x >> 8) & 0xff) as usize]
                ^ t[5][((x >> 16) & 0xff) as usize]
                ^ t[4][(x >> 24) as usize]
                ^ t[3][b[4] as usize]
                ^ t[2][b[5] as usize]
                ^ t[1][b[6] as usize]
                ^ t[0][b[7] as usize];
        }
    }

    /// The four finished (inverted) CRC values.
    pub fn finish(&self) -> [u32; 4] {
        [!self.state[0], !self.state[1], !self.state[2], !self.state[3]]
    }
}

/// CRC-32 (IEEE) of four equal-length `u64` keys in one interleaved pass.
///
/// # Panics
/// If the four slices have differing lengths.
pub fn crc32_words_x4(keys: [&[u64]; 4]) -> [u32; 4] {
    let w = keys[0].len();
    assert!(keys.iter().all(|k| k.len() == w), "x4 keys must share a width");
    let mut c = Crc32FoldX4::ieee();
    for (i, w0) in keys[0].iter().enumerate() {
        c.fold8([
            w0.to_be_bytes(),
            keys[1][i].to_be_bytes(),
            keys[2][i].to_be_bytes(),
            keys[3][i].to_be_bytes(),
        ]);
    }
    c.finish()
}

/// Eight independent CRC-32 streams folded in lockstep.
///
/// The widened sibling of [`Crc32FoldX4`]: eight serial dependency chains
/// give the out-of-order core even more independent loads to overlap.  On
/// the false-positive precompute's key volumes (tens of millions of
/// `u64` words) the x8 fold measurably beats x4 — the chains are short
/// (one XOR plus eight table loads per word) so four of them still leave
/// load-port slack.  Bit-identical to eight separate [`Crc32Fold`]s.
#[derive(Debug, Clone)]
pub struct Crc32FoldX8 {
    tables: &'static [[u32; 256]; 8],
    state: [u32; 8],
}

impl Crc32FoldX8 {
    /// Eight fresh CRC-32 (IEEE 802.3) computations.
    pub fn ieee() -> Self {
        Crc32FoldX8 { tables: &CRC32_IEEE8, state: [0xffff_ffff; 8] }
    }

    /// Eight fresh CRC-32C (Castagnoli) computations.
    pub fn castagnoli() -> Self {
        Crc32FoldX8 { tables: &CRC32_CASTAGNOLI8, state: [0xffff_ffff; 8] }
    }

    /// Folds eight bytes into each of the eight states.
    #[inline]
    pub fn fold8(&mut self, b: [[u8; 8]; 8]) {
        let t = self.tables;
        for lane in 0..8 {
            let b = b[lane];
            let x = self.state[lane] ^ u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            self.state[lane] = t[7][(x & 0xff) as usize]
                ^ t[6][((x >> 8) & 0xff) as usize]
                ^ t[5][((x >> 16) & 0xff) as usize]
                ^ t[4][(x >> 24) as usize]
                ^ t[3][b[4] as usize]
                ^ t[2][b[5] as usize]
                ^ t[1][b[6] as usize]
                ^ t[0][b[7] as usize];
        }
    }

    /// The eight finished (inverted) CRC values.
    pub fn finish(&self) -> [u32; 8] {
        self.state.map(|s| !s)
    }
}

/// CRC-32 (IEEE) of eight equal-length `u64` keys in one interleaved pass.
///
/// # Panics
/// If the eight slices have differing lengths.
pub fn crc32_words_x8(keys: [&[u64]; 8]) -> [u32; 8] {
    let w = keys[0].len();
    assert!(keys.iter().all(|k| k.len() == w), "x8 keys must share a width");
    let mut c = Crc32FoldX8::ieee();
    for (i, w0) in keys[0].iter().enumerate() {
        c.fold8([
            w0.to_be_bytes(),
            keys[1][i].to_be_bytes(),
            keys[2][i].to_be_bytes(),
            keys[3][i].to_be_bytes(),
            keys[4][i].to_be_bytes(),
            keys[5][i].to_be_bytes(),
            keys[6][i].to_be_bytes(),
            keys[7][i].to_be_bytes(),
        ]);
    }
    c.finish()
}

struct Crc16 {
    state: u16,
}

impl Crc16 {
    fn new() -> Self {
        Crc16 { state: 0 }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u16::from(b);
            for _ in 0..8 {
                let lsb = self.state & 1;
                self.state >>= 1;
                if lsb != 0 {
                    self.state ^= 0xa001; // reflected 0x8005
                }
            }
        }
    }

    fn finish(&self) -> u16 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Byte-serial reference (the pre-slice-by-8 implementation).
    fn crc32_byte_serial(poly: u32, bytes: &[u8]) -> u32 {
        let table = crc32_table(poly);
        let mut state = 0xffff_ffffu32;
        for &b in bytes {
            let idx = (state ^ u32::from(b)) & 0xff;
            state = (state >> 8) ^ table[idx as usize];
        }
        !state
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xcbf43926 — one 8-byte fold plus a
        // byte-serial tail, so both paths of `update` are exercised.
        let mut c = Crc32Fold::ieee();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xcbf4_3926);
    }

    #[test]
    fn crc32c_known_vector() {
        let mut c = Crc32Fold::castagnoli();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xe306_9283);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/ARC("123456789") = 0xbb3d.
        let mut c = Crc16::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xbb3d);
    }

    #[test]
    fn algorithms_disagree() {
        let words = [0xdead_beef_u64, 42];
        let h1 = hash_words(HashAlgo::Crc32, &words);
        let h2 = hash_words(HashAlgo::Crc32c, &words);
        let h3 = hash_words(HashAlgo::Crc16, &words);
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
        assert!(h3 <= u64::from(u16::MAX));
    }

    #[test]
    fn identity_returns_last_word() {
        assert_eq!(hash_words(HashAlgo::Identity, &[1, 2, 3]), 3);
        assert_eq!(hash_words(HashAlgo::Identity, &[]), 0);
    }

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        let a = hash_words(HashAlgo::Crc32, &[1, 2]);
        let b = hash_words(HashAlgo::Crc32, &[1, 2]);
        let c = hash_words(HashAlgo::Crc32, &[2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        /// Slice-by-8 equals the byte-serial reference for every input
        /// length (covering the chunk path, the tail path, and both
        /// polynomials).
        #[test]
        fn slice_by_8_matches_byte_serial(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            for poly in [0xedb8_8320u32, 0x82f6_3b78] {
                let mut c = if poly == 0xedb8_8320 {
                    Crc32Fold::ieee()
                } else {
                    Crc32Fold::castagnoli()
                };
                c.update(&bytes);
                prop_assert_eq!(c.finish(), crc32_byte_serial(poly, &bytes));
            }
        }

        /// The four-lane interleaved fold is bit-identical to four scalar
        /// computations, for both polynomials and any stream content.
        #[test]
        fn x4_matches_four_scalar_folds(
            keys in prop::collection::vec(prop::collection::vec(any::<u64>(), 3), 4)
        ) {
            let refs: [&[u64]; 4] = [&keys[0], &keys[1], &keys[2], &keys[3]];
            let batch = crc32_words_x4(refs);
            for lane in 0..4 {
                prop_assert_eq!(
                    u64::from(batch[lane]),
                    hash_words(HashAlgo::Crc32, refs[lane]),
                    "lane {} diverged", lane
                );
            }

            let mut c4 = Crc32FoldX4::castagnoli();
            for (((a, b), c), d) in keys[0].iter().zip(&keys[1]).zip(&keys[2]).zip(&keys[3]) {
                c4.fold8([
                    a.to_be_bytes(),
                    b.to_be_bytes(),
                    c.to_be_bytes(),
                    d.to_be_bytes(),
                ]);
            }
            let batch_c = c4.finish();
            for lane in 0..4 {
                prop_assert_eq!(
                    u64::from(batch_c[lane]),
                    hash_words(HashAlgo::Crc32c, refs[lane]),
                    "castagnoli lane {} diverged", lane
                );
            }
        }

        /// The eight-lane interleaved fold is bit-identical to eight
        /// scalar computations, for both polynomials and any stream
        /// content.
        #[test]
        fn x8_matches_eight_scalar_folds(
            keys in prop::collection::vec(prop::collection::vec(any::<u64>(), 3), 8)
        ) {
            let refs: [&[u64]; 8] = std::array::from_fn(|i| keys[i].as_slice());
            let batch = crc32_words_x8(refs);
            for lane in 0..8 {
                prop_assert_eq!(
                    u64::from(batch[lane]),
                    hash_words(HashAlgo::Crc32, refs[lane]),
                    "lane {} diverged", lane
                );
            }

            let mut c8 = Crc32FoldX8::castagnoli();
            for i in 0..keys[0].len() {
                c8.fold8(std::array::from_fn(|lane| keys[lane][i].to_be_bytes()));
            }
            let batch_c = c8.finish();
            for lane in 0..8 {
                prop_assert_eq!(
                    u64::from(batch_c[lane]),
                    hash_words(HashAlgo::Crc32c, refs[lane]),
                    "castagnoli lane {} diverged", lane
                );
            }
        }

        /// `hash_words` (one fold per word) equals the byte-serial
        /// reference over the concatenated big-endian bytes.
        #[test]
        fn hash_words_matches_byte_serial(words in prop::collection::vec(any::<u64>(), 0..8)) {
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
            prop_assert_eq!(
                hash_words(HashAlgo::Crc32, &words),
                u64::from(crc32_byte_serial(0xedb8_8320, &bytes))
            );
            prop_assert_eq!(
                hash_words(HashAlgo::Crc32c, &words),
                u64::from(crc32_byte_serial(0x82f6_3b78, &bytes))
            );
        }
    }
}
