//! Hash units.
//!
//! Tofino's match units and stateful components compute CRC-family hashes
//! over selected PHV fields.  The reproduction provides CRC-32 (two
//! polynomial variants, so cuckoo hashing gets two independent functions)
//! and CRC-16, computed bit-serially over the big-endian bytes of the field
//! values — slow-ish but obviously correct, and the simulator only hashes
//! once per packet per unit.

/// The hash algorithms the pipeline can instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlgo {
    /// CRC-32 (IEEE 802.3 polynomial, reflected).
    Crc32,
    /// CRC-32C (Castagnoli polynomial, reflected) — the customary "second
    /// hash" for cuckoo/dual-hash schemes on Tofino.
    Crc32c,
    /// CRC-16 (IBM polynomial, reflected) — used for 16-bit digests.
    Crc16,
    /// Identity over the low 64 bits of the key — handy in tests.
    Identity,
}

/// Computes `algo` over a key given as a sequence of `u64` words (each
/// contributed as 8 big-endian bytes).
pub fn hash_words(algo: HashAlgo, words: &[u64]) -> u64 {
    match algo {
        HashAlgo::Crc32 => {
            let mut c = Crc32::new(0xedb8_8320);
            for w in words {
                c.update(&w.to_be_bytes());
            }
            u64::from(c.finish())
        }
        HashAlgo::Crc32c => {
            let mut c = Crc32::new(0x82f6_3b78);
            for w in words {
                c.update(&w.to_be_bytes());
            }
            u64::from(c.finish())
        }
        HashAlgo::Crc16 => {
            let mut c = Crc16::new();
            for w in words {
                c.update(&w.to_be_bytes());
            }
            u64::from(c.finish())
        }
        HashAlgo::Identity => words.last().copied().unwrap_or(0),
    }
}

/// Builds the 256-entry lookup table for a reflected CRC-32 polynomial at
/// compile time, so hashing runs one table lookup per byte (the precompute
/// of Fig. 17 hashes millions of keys).
const fn crc32_table(poly: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ poly } else { c >> 1 };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_IEEE: [u32; 256] = crc32_table(0xedb8_8320);
static CRC32_CASTAGNOLI: [u32; 256] = crc32_table(0x82f6_3b78);

struct Crc32 {
    table: &'static [u32; 256],
    state: u32,
}

impl Crc32 {
    fn new(poly: u32) -> Self {
        let table = match poly {
            0xedb8_8320 => &CRC32_IEEE,
            0x82f6_3b78 => &CRC32_CASTAGNOLI,
            _ => unreachable!("unsupported CRC-32 polynomial"),
        };
        Crc32 { table, state: 0xffff_ffff }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xff;
            self.state = (self.state >> 8) ^ self.table[idx as usize];
        }
    }

    fn finish(&self) -> u32 {
        !self.state
    }
}

struct Crc16 {
    state: u16,
}

impl Crc16 {
    fn new() -> Self {
        Crc16 { state: 0 }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u16::from(b);
            for _ in 0..8 {
                let lsb = self.state & 1;
                self.state >>= 1;
                if lsb != 0 {
                    self.state ^= 0xa001; // reflected 0x8005
                }
            }
        }
    }

    fn finish(&self) -> u16 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xcbf43926; feed as padded words to check
        // the byte pipeline, then verify via a direct byte-wise computation.
        let mut c = Crc32::new(0xedb8_8320);
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xcbf4_3926);
    }

    #[test]
    fn crc32c_known_vector() {
        let mut c = Crc32::new(0x82f6_3b78);
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xe306_9283);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/ARC("123456789") = 0xbb3d.
        let mut c = Crc16::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xbb3d);
    }

    #[test]
    fn algorithms_disagree() {
        let words = [0xdead_beef_u64, 42];
        let h1 = hash_words(HashAlgo::Crc32, &words);
        let h2 = hash_words(HashAlgo::Crc32c, &words);
        let h3 = hash_words(HashAlgo::Crc16, &words);
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
        assert!(h3 <= u64::from(u16::MAX));
    }

    #[test]
    fn identity_returns_last_word() {
        assert_eq!(hash_words(HashAlgo::Identity, &[1, 2, 3]), 3);
        assert_eq!(hash_words(HashAlgo::Identity, &[]), 0);
    }

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        let a = hash_words(HashAlgo::Crc32, &[1, 2]);
        let b = hash_words(HashAlgo::Crc32, &[1, 2]);
        let c = hash_words(HashAlgo::Crc32, &[2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
